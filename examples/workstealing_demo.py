"""The paper's running example: testing a work-stealing queue.

Section 2.1 of the paper evaluates ICB on Leijen's implementation of
the Cilk work-stealing queue: "The implementor gave us a test harness
along with three variations of his implementation, each containing
what he considered to be a subtle bug.  ...  Our model checker based
on iterative context-bounding found each of those bugs within a
context-switch bound of two."

This demo checks all three seeded variants, reports each bug with its
minimal-preemption witness, then reproduces the Figure 1 measurement
on the correct version: the fraction of the reachable state space
covered by executions with at most c preemptions.

Run:  python examples/workstealing_demo.py
"""

from repro import ChessChecker, SearchLimits
from repro.experiments.coverage import coverage_by_bound
from repro.experiments.reporting import render_table
from repro.programs.workstealqueue import VARIANTS, work_steal_queue


def check_variants():
    print("=== the three seeded bugs (Table 2: bounds 1, 2, 2) ===")
    rows = []
    for variant in VARIANTS:
        checker = ChessChecker(work_steal_queue(variant=variant))
        bug = checker.find_bug(max_bound=3)
        assert bug is not None, f"{variant} should contain a bug"
        rows.append([variant, bug.preemptions, str(bug.kind), bug.message[:48]])
    print(render_table(["variant", "min preemptions", "kind", "witness"], rows))
    print()
    worst = max(row[1] for row in rows)
    print(f"All three bugs exposed within a context-switch bound of {worst},")
    print("matching the paper's result.")
    print()


def coverage_study():
    print("=== Figure 1: state coverage per preemption bound (correct queue) ===")
    checker = ChessChecker(
        work_steal_queue(script=("push", "push", "pop", "pop"), steals=1)
    )
    curve, result = coverage_by_bound(
        checker.space, limits=SearchLimits(max_seconds=120)
    )
    status = "exhaustive" if result.completed else f"budgeted ({result.stop_reason})"
    rows = [
        [bound, states, f"{fraction * 100:5.1f}%"]
        for bound, states, fraction in curve
    ]
    print(render_table(["context bound", "states covered", "% of space"], rows))
    print(f"search: {status}; {result.executions} executions, "
          f"{result.distinct_states} distinct states")
    covered_90 = next(b for b, _, f in curve if f >= 0.9)
    print(f"90% of the state space is covered by bound {covered_90}, far below")
    print(f"the maximum preemption count ({result.context.max_preemptions}) "
          "seen in any execution.")


def main():
    check_variants()
    coverage_study()


if __name__ == "__main__":
    main()
