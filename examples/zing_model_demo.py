"""Explicit-state model checking with the ZING framework.

The paper implements ICB in two checkers; ZING verifies *models* with
explicit states, state caching and heap-symmetry reduction.  This demo
models a tiny leader-election-ish protocol, seeds an atomicity bug,
checks it with ICB over explicit states, and shows the heap-symmetry
reduction collapsing states that differ only in object identities.

Run:  python examples/zing_model_demo.py
"""

from repro.zing import (
    Ref,
    ZingChecker,
    ZingModel,
    ZingStateSpace,
    acquire,
    atomic,
    canonicalize,
    release,
)


class Registry(ZingModel):
    """Threads register fresh session objects in a shared registry and
    elect the first registrant as owner.  The buggy variant checks
    emptiness and installs the owner in separate critical sections."""

    thread_labels = ("a", "b")

    def __init__(self, buggy: bool) -> None:
        self.buggy = buggy
        self.name = "registry-buggy" if buggy else "registry"

    def initial_globals(self):
        return {"lock": None, "owner": None, "sessions": [], "next_id": 0}

    def program(self, index):
        def register(ctx):
            session = Ref(ctx.g["next_id"])
            ctx.g["next_id"] += 1
            ctx.g["sessions"] = ctx.g["sessions"] + [session]
            ctx.l["mine"] = session

        def observe(ctx):
            ctx.l["was_empty"] = ctx.g["owner"] is None

        def install(ctx):
            if ctx.l["was_empty"]:
                ctx.require(
                    ctx.g["owner"] is None,
                    "two owners installed for one registry",
                )
                ctx.g["owner"] = ctx.l["mine"]

        if self.buggy:
            # check-then-act across two critical sections
            return [
                acquire("lock"), atomic(register), atomic(observe), release("lock"),
                acquire("lock"), atomic(install), release("lock"),
            ]
        return [
            acquire("lock"),
            atomic(register), atomic(observe), atomic(install),
            release("lock"),
        ]


def check_models():
    print("=== correct model ===")
    result = ZingChecker(Registry(buggy=False)).check()
    print(result.summary())
    print()

    print("=== seeded check-then-act bug ===")
    bug = ZingChecker(Registry(buggy=True)).find_bug()
    assert bug is not None
    print(bug.describe())
    print()


def symmetry_demo():
    print("=== heap-symmetry reduction ===")
    with_reduction = ZingChecker(Registry(buggy=False)).check()
    # The same states differ only in session Ref identities depending
    # on which thread allocated first; canonicalization merges them.
    a = {"sessions": [Ref(0), Ref(1)], "owner": Ref(0)}
    b = {"sessions": [Ref(7), Ref(3)], "owner": Ref(7)}
    assert canonicalize(a) == canonicalize(b)
    print("two states differing only in object identities canonicalize")
    print(f"identically; full search visits {with_reduction.distinct_states} "
          "distinct states after reduction.")
    print()

    print("=== classic ZING search: DFS + cache + delta-packed stack ===")
    stats = ZingChecker(Registry(buggy=False)).dfs_with_delta_stack()
    ratio = stats["stack_compression_ratio"]
    print(f"visited {stats['visited_states']} states; the delta-compressed "
          f"DFS stack stored only {ratio * 100:.0f}% of the entries a "
          "full-state stack would.")


def main():
    check_models()
    symmetry_demo()


if __name__ == "__main__":
    main()
