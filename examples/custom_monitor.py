"""Writing property monitors for your own programs.

Beyond assertions in thread code, properties can be stated as
*monitors* observing every explored execution: global invariants
checked at each scheduling point and postconditions checked at
terminal states (sound for the sync-only reduction by Theorem 2 of the
paper).  Monitors report through the engine, so a violated property
carries the same minimal-preemption witness as any built-in bug.

This demo checks a tiny reader-writer cache for two properties:

* invariant: never a writer and a reader inside simultaneously;
* postcondition: the cache ends consistent with the write log.

Run:  python examples/custom_monitor.py
"""

from repro import (
    ChessChecker,
    ExecutionConfig,
    FinalStateMonitor,
    InvariantMonitor,
    Program,
    monitor_factory,
)


def make_cache_program(use_rwlock: bool):
    """Readers and writers on a cached value; optionally unprotected."""

    def setup(w):
        rw = w.rwlock("rw")
        cache = w.var("cache", 0)
        log = w.var("log", ())
        readers_in = w.atomic("readers_in", 0)
        writer_in = w.atomic("writer_in", 0)

        def reader():
            if use_rwlock:
                yield rw.acquire_read()
            yield readers_in.add(1)
            yield cache.read()
            yield readers_in.add(-1)
            if use_rwlock:
                yield rw.release()

        def writer(value):
            if use_rwlock:
                yield rw.acquire_write()
            yield writer_in.add(1)
            yield cache.write(value)
            entries = yield log.read()
            yield log.write(entries + (value,))
            yield writer_in.add(-1)
            if use_rwlock:
                yield rw.release()

        return [
            ("r1", reader, ()),
            ("r2", reader, ()),
            ("w1", writer, (10,)),
            ("w2", writer, (20,)),
        ]

    name = "rw-cache" if use_rwlock else "rw-cache-unprotected"
    return Program(name, setup)


def exclusion_invariant(execution):
    """No writer while any reader is inside (and at most one writer)."""
    readers = execution.world.find("readers_in").value
    writers = execution.world.find("writer_in").value
    return writers <= 1 and not (writers and readers)


def cache_postcondition(execution):
    """The final cache value is the last logged write."""
    log = execution.world.find("log").value
    cache = execution.world.find("cache").value
    return bool(log) and cache == log[-1]


CONFIG = ExecutionConfig(
    monitors=(
        monitor_factory(InvariantMonitor, "reader/writer exclusion", exclusion_invariant),
        monitor_factory(FinalStateMonitor, "cache matches write log", cache_postcondition),
    ),
)


def main():
    print("=== protected cache: both properties certified ===")
    protected = ChessChecker(make_cache_program(use_rwlock=True), CONFIG)
    result = protected.check(max_bound=2)
    print(result.summary())
    print()

    print("=== unprotected cache: the monitors find the violation ===")
    unprotected = ChessChecker(make_cache_program(use_rwlock=False), CONFIG)
    bug = unprotected.find_bug(max_bound=2)
    assert bug is not None
    print(bug.describe())
    print()
    print("The report's preemption count is minimal, courtesy of ICB's")
    print("bound ordering -- the simplest schedule violating the property.")


if __name__ == "__main__":
    main()
