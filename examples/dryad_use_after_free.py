"""Reproducing the paper's Figure 3: the Dryad use-after-free.

"When deallocating a shared heap object, a concurrent program has to
ensure that no existing thread in the system has a live reference to
that object. ... Figure 3 describes an error that requires only one
preempting context switch, but 6 nonpreempting context switches. ...
In contrast, a depth-first search is flooded with an unbounded number
of preemptions, and is thus unable to expose the error within
reasonable time limits."

This demo finds the bug with ICB at bound 1, prints the annotated
witness (one ``*`` step -- the single preemption right before
``EnterCriticalSection`` -- among many free context switches), and
shows that DFS does not find it within the same execution budget.

Run:  python examples/dryad_use_after_free.py
"""

from repro import ChessChecker, DepthFirstSearch, SearchLimits
from repro.programs.dryad import dryad_channels

PROGRAM = dryad_channels(variant="use-after-free", workers=2, data_items=1)


def find_with_icb():
    print("=== ICB, bound 1 ===")
    checker = ChessChecker(PROGRAM)
    bug = checker.find_bug(max_bound=1)
    assert bug is not None
    print(bug.describe())
    print()

    execution = checker.replay(bug)
    preempting = sum(1 for r in execution.step_records if r.preempting)
    switches = sum(1 for a, b in zip(bug.schedule, bug.schedule[1:]) if a != b)
    print(f"context switches in the witness: {switches} "
          f"({preempting} preempting, {switches - preempting} nonpreempting)")
    print()
    print("trace (the single preempting step is marked *):")
    print(execution.describe_trace())
    print()
    return checker, bug


def contrast_with_dfs(checker, icb_bug):
    print("=== unbounded DFS with the same execution budget ===")
    # Give DFS the number of executions ICB needed, and then some.
    icb_result = checker.check(
        max_bound=1, limits=SearchLimits(stop_on_first_bug=True)
    )
    budget = max(icb_result.executions * 4, 200)
    dfs = DepthFirstSearch().run(
        checker.space(),
        limits=SearchLimits(max_executions=budget, stop_on_first_bug=True),
    )
    print(f"ICB found the bug after {icb_result.executions} executions, and")
    print("certified on the way that no preemption-free schedule exposes it.")
    if dfs.found_bug:
        print(f"DFS also found a bug (after {dfs.executions} executions, "
              f"witness with {dfs.first_bug.preemptions} preemption(s)) -- "
              "but with no minimality certificate: on the original "
              "five-thread Dryad the paper reports DFS running for hours "
              "without exposing this bug, and DFS witnesses in general "
              "carry whatever preemptions its lexicographic order happens "
              "to produce.")
    else:
        print(f"DFS explored {dfs.executions} executions (budget {budget}) "
              "without exposing the bug: its lexicographic order wanders "
              "into schedules with many redundant preemptions.")
    print()
    print("Uniform random scheduling finds the bug too -- with witnesses")
    print("carrying an order of magnitude more preemptions (run")
    print("`pytest benchmarks/bench_fig3_dryad_bug.py` for the comparison).")


def main():
    checker, bug = find_with_icb()
    contrast_with_dfs(checker, bug)


if __name__ == "__main__":
    main()
