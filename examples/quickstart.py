"""Quickstart: find a concurrency bug with iterative context bounding.

A bank account with a racy deposit: two threads read the balance,
add to it, and write it back, synchronizing on an atomic variable but
forgetting that read-modify-write is not atomic.  Stress testing
rarely catches this; ICB finds it immediately and proves the witness
needs exactly one preemption.

Run:  python examples/quickstart.py
"""

from repro import ChessChecker, Program, check, join, spawn


def setup(w):
    """Build the shared state and threads (fresh for every execution)."""
    balance = w.atomic("balance", 0)

    def deposit(amount):
        current = yield balance.read()
        # A preemption *here* makes the other deposit's write invisible.
        yield balance.write(current + amount)

    def main():
        first = yield spawn(deposit, 100, name="alice")
        second = yield spawn(deposit, 50, name="bob")
        yield join(first)
        yield join(second)
        total = yield balance.read()
        check(total == 150, f"deposits lost: balance is {total}, expected 150")

    return {"main": main}


def fixed_setup(w):
    """The fix: make the read-modify-write atomic."""
    balance = w.atomic("balance", 0)

    def deposit(amount):
        yield balance.add(amount)

    def main():
        first = yield spawn(deposit, 100, name="alice")
        second = yield spawn(deposit, 50, name="bob")
        yield join(first)
        yield join(second)
        total = yield balance.read()
        check(total == 150, f"deposits lost: balance is {total}, expected 150")

    return {"main": main}


def main():
    checker = ChessChecker(Program("bank-account", setup))

    print("=== searching (iterative context bounding) ===")
    bug = checker.find_bug()
    assert bug is not None
    print(bug.describe())
    print()
    print("The witness is preemption-minimal: ICB explored every")
    print("execution with fewer preemptions first, so no simpler")
    print("schedule exposes this bug.")
    print()

    print("=== annotated witness trace ===")
    print(checker.explain(bug))
    print()

    print("=== checking the fixed version ===")
    fixed = ChessChecker(Program("bank-account-fixed", fixed_setup))
    result = fixed.check(max_bound=3)
    print(result.summary())


if __name__ == "__main__":
    main()
