"""A bounded queue with the classic lost-wakeup condition-variable bug.

The consumer guards its wait with ``if`` instead of ``while``::

    with lock:
        if not items:          # BUG: must be `while not items`
            not_empty.wait()
        item = items[0]        # may index an empty queue

With one producer and two consumers, a woken consumer can lose its
item to the *other* consumer, which slipped in between the producer's
two puts and consumed without ever waiting (Mesa semantics: a notify
is a hint, not a handoff).  The woken consumer then pops an empty
queue.  One preemption suffices: preempt the producer between its two
puts.  The paper's argument that small preemption bounds expose real
bugs (Section 5) is exactly this shape.

The code is ordinary imperative Python using the ``repro.invivo``
adapter API directly; shared data lives in :class:`repro.invivo.Shared`
so the checker can see it.
"""

from repro import invivo
from repro.invivo import InvivoProgram

#: The seeded bug and the minimal preemption bound that exposes it,
#: pinned by tests/invivo and the CI job.
EXPECTED = {"kind": "uncaught-exception", "bound": 1}


def _build(while_loop: bool):
    def setup():
        lock = invivo.Lock("queue.lock")
        not_empty = invivo.Condition(lock, name="queue.not_empty")
        items = invivo.Shared((), name="queue.items")

        def producer():
            for value in ("a", "b"):
                with lock:
                    items.set(items.get() + (value,))
                    not_empty.notify()

        def consumer():
            with lock:
                if while_loop:
                    while not items.get():
                        not_empty.wait()
                else:
                    if not items.get():  # BUG: a woken waiter must re-check
                        not_empty.wait()
                queue = items.get()
                item = queue[0]  # IndexError when the wakeup was lost
                items.set(queue[1:])
                return item

        return {"producer": producer, "consumer-1": consumer, "consumer-2": consumer}

    name = "invivo-bounded-queue" + ("-fixed" if while_loop else "")
    expected = () if while_loop else ("lost wakeup: if-guarded condition wait",)
    return InvivoProgram(name, setup, expected_bugs=expected)


def make_program() -> InvivoProgram:
    """The seeded-bug variant (``if``-guarded wait)."""
    return _build(while_loop=False)


def make_fixed() -> InvivoProgram:
    """The corrected variant (``while``-guarded wait); certifiable."""
    return _build(while_loop=True)
