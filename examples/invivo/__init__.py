"""In-vivo example programs: real ``threading``-style code with seeded bugs.

Each module exposes ``make_program()`` (the seeded-bug variant, for
``repro check --module examples.invivo.<name>:make_program``) and
``make_fixed()`` (the corrected variant, which the checker certifies),
plus an ``EXPECTED`` dict pinning the seeded bug's kind and minimal
preemption bound — asserted by ``tests/invivo`` and the CI job.
"""

#: module:factory specs of every seeded-bug example, for CI and tests.
ALL_SPECS = (
    "examples.invivo.bounded_queue:make_program",
    "examples.invivo.lazy_singleton:make_program",
    "examples.invivo.barrier_misuse:make_program",
)
