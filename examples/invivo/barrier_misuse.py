"""A hand-rolled reusable barrier that strands late waiters.

Three workers rendezvous on a counter plus a manual-reset event; the
last arriver signals, and whichever worker gets through first "resets
the barrier for reuse" by clearing the event::

    if arrived.add(1) == PARTIES:
        release.set()
    else:
        release.wait()
    if reset_claim.cas(0, 1):
        release.clear()            # BUG: other waiters may still be parked

Clearing a manual-reset event while other threads are still parked on
it strands them forever -- the signal is a *level*, not a latch.  No
preemption is even needed: in the natural run-to-blocking schedule the
last arriver signals, sails on, wins the reset race and clears before
either parked worker has run, deadlocking both (found at bound 0 --
the paper's nonpreemptive baseline already catches it).

Written against the ``repro.invivo`` adapter API: :class:`~repro.invivo.Event`
for the gate, :class:`~repro.invivo.Atomic` for the interlocked counter
and the reset claim.
"""

from repro import invivo
from repro.invivo import InvivoProgram

#: The seeded bug and the minimal preemption bound that exposes it.
EXPECTED = {"kind": "deadlock", "bound": 0}

PARTIES = 3


def _build(premature_reset: bool) -> InvivoProgram:
    def setup():
        arrived = invivo.Atomic(0, name="barrier.arrived")
        release = invivo.Event("barrier.release")
        reset_claim = invivo.Atomic(0, name="barrier.reset_claim")

        def worker():
            if arrived.add(1) == PARTIES:
                release.set()
            else:
                release.wait()
            if premature_reset:
                # BUG: the first thread through resets "for reuse"
                # while others may still be parked on the event.
                if reset_claim.cas(0, 1):
                    release.clear()

        return {f"worker-{i}": worker for i in range(1, PARTIES + 1)}

    name = "invivo-barrier-misuse" + ("" if premature_reset else "-fixed")
    expected = ("premature event reset strands waiters",) if premature_reset else ()
    return InvivoProgram(name, setup, expected_bugs=expected)


def make_program() -> InvivoProgram:
    """The seeded-bug variant (premature reset)."""
    return _build(premature_reset=True)


def make_fixed() -> InvivoProgram:
    """The corrected variant (one-shot barrier, no reset)."""
    return _build(premature_reset=False)
