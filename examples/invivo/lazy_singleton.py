"""Broken double-checked locking over unmodified ``threading`` code.

``Registry`` is written against the real ``threading`` module -- no
repro imports anywhere in the class -- and checked as-is through
:class:`repro.invivo.monkeypatch`, which substitutes the adapter
classes for ``threading.*`` inside this module.  The defect is the
missing re-check after acquiring the lock::

    if self._instance is None:      # unsynchronized fast path
        with self._lock:
            self._instance = ...    # BUG: no second `is None` check

Two threads can both see ``None`` before either takes the lock; the
second then constructs a second instance.  One preemption exposes it:
preempt the first thread after its fast-path check, right at its
pending lock acquire.

The instance fields are *plain attributes*: invisible to the
checker's race detection and state fingerprints (see the hidden-state
caveat in ``docs/invivo.md``).  The static lint sees them, though:
``repro lint --module examples.invivo.lazy_singleton:make_program``
reports ``hidden-state`` findings for ``Registry._instance`` and
``Registry._creations`` in *both* variants (the fixed one is correct
only because it re-checks under the lock, which race detection cannot
observe); ``ci/lint-baseline-invivo.txt`` records them as known.  The
bug still surfaces dynamically because the program asserts its own
invariant -- the assertion runs on real Python state -- which is
exactly how unmodified code under in-vivo checking reports
corruption.
"""

import threading

from repro.invivo import InvivoProgram, monkeypatch

#: The seeded bug and the minimal preemption bound that exposes it.
EXPECTED = {"kind": "assertion", "bound": 1}


class Registry:
    """A lazily-created singleton with broken double-checked locking."""

    def __init__(self, safe: bool = False) -> None:
        self._lock = threading.Lock()
        self._instance = None
        self._creations = 0
        self._safe = safe

    def get_instance(self):
        if self._instance is None:
            with self._lock:
                if self._safe and self._instance is not None:
                    return self._instance
                # BUG (when not safe): another thread may have created
                # the instance while we waited for the lock.
                self._creations += 1
                self._instance = object()
        return self._instance


def _build(safe: bool) -> InvivoProgram:
    def setup():
        registry = Registry(safe=safe)

        def client():
            registry.get_instance()
            assert registry._creations == 1, "singleton constructed twice"

        return {"client-1": client, "client-2": client}

    name = "invivo-lazy-singleton" + ("-fixed" if safe else "")
    expected = () if safe else ("double-checked locking without re-check",)
    return InvivoProgram(
        name, setup, expected_bugs=expected, patch=monkeypatch(__name__)
    )


def make_program() -> InvivoProgram:
    """The seeded-bug variant (no re-check under the lock)."""
    return _build(safe=False)


def make_fixed() -> InvivoProgram:
    """The corrected variant (proper double-checked locking)."""
    return _build(safe=True)
