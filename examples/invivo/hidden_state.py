"""A lost update hidden in a plain attribute the checker cannot see.

``Stats.total`` is an ordinary Python attribute, not a
:class:`repro.invivo.Shared` cell: its reads and writes are invisible
to the scheduler, so race detection and state fingerprints are blind
to them.  Each buggy worker snapshots ``stats.total`` *before* taking
the lock and writes ``snapshot + 1`` inside it -- a lost update that
one preemption exposes (preempt a worker between its unsynchronized
read and its locked write, let the other worker run its whole
increment, then resume).  The checker thread then observes a total of
1 instead of 2 and fails its assertion.

The in-vivo static analyzer flags exactly this shape before any
execution: ``repro lint --module examples.invivo.hidden_state:make_program``
reports a ``hidden-state`` finding for ``Stats.total`` because two
checked threads write a plain attribute without a ``Shared``/``Atomic``
wrapper.  The fixed variant keeps the counter in ``Shared`` and lints
clean, and the checker certifies it clean.

Each worker also owns a private ``Atomic`` scratch slot that no other
thread ever touches.  Atomic operations are scheduling points even
under the default sync-only policy, so ICB normally defers a
preemption at each one; the analysis proves the slots thread-local and
``check(analysis=True)`` skips those deferrals -- this program is the
in-vivo witness that the sound reduction prunes real transitions
(``extras["analysis_pruned"] > 0``) while reporting the identical bug.
"""

from repro import invivo
from repro.invivo import InvivoProgram

#: The seeded bug and the minimal preemption bound that exposes it,
#: pinned by tests/invivo and the CI job.
EXPECTED = {"kind": "assertion", "bound": 1}


class Stats:
    """Plain object whose ``total`` attribute is invisible shared state."""

    def __init__(self) -> None:
        self.total = 0


def _build(shared_counter: bool) -> InvivoProgram:
    def setup():
        lock = invivo.Lock("stats.lock")
        done = invivo.Semaphore(0, name="stats.done")
        stats = Stats()
        total = invivo.Shared(0, name="stats.total")

        def make_worker(mine: invivo.Atomic):
            def worker():
                mine.add(1)  # private scratch, provably thread-local
                if shared_counter:
                    with lock:
                        total.set(total.get() + 1)
                else:
                    snapshot = stats.total  # BUG: read outside the lock
                    with lock:
                        stats.total = snapshot + 1  # lost update
                mine.add(1)
                done.release()

            return worker

        def checker():
            done.acquire()
            done.acquire()
            count = total.get() if shared_counter else stats.total
            assert count == 2, "lost update: a worker increment vanished"

        return {
            "worker-1": make_worker(invivo.Atomic(0, name="stats.scratch-1")),
            "worker-2": make_worker(invivo.Atomic(0, name="stats.scratch-2")),
            "checker": checker,
        }

    name = "invivo-hidden-state" + ("-fixed" if shared_counter else "")
    expected = (
        () if shared_counter else ("lost update: a worker increment vanished",)
    )
    return InvivoProgram(name, setup, expected_bugs=expected)


def make_program() -> InvivoProgram:
    """The seeded-bug variant (plain-attribute counter)."""
    return _build(shared_counter=False)


def make_fixed() -> InvivoProgram:
    """The corrected variant (``Shared`` counter); certifiable."""
    return _build(shared_counter=True)
