"""Reproducing and triaging bugs with persistent witness traces.

The arc of a real concurrency bug: a checking run finds it, the
witness is saved as a ``*.trace.json`` artifact, a colleague replays
it deterministically in another process, the minimizer shrinks it to
the simplest explanation, and the trace joins a regression corpus
that classifies every way the recording can go stale — reproduced,
vanished (fixed!), changed, or mismatched against a refactored
program.

Run:  python examples/trace_triage.py
"""

import tempfile
from pathlib import Path

from repro import (
    ChessChecker,
    Program,
    TraceCorpus,
    TraceRecord,
    check,
    join,
    minimize_trace,
    replay_trace,
    spawn,
)


def account(variant="buggy"):
    """A racy bank account, in three states of repair.

    * ``buggy``  -- read-modify-write deposits with no protection;
    * ``fixed``  -- deposits made atomic (the bug is gone);
    * ``locked`` -- deposits wrapped in a mutex: also correct, but the
      *synchronization structure* changed, so old witnesses no longer
      even replay -- the third triage outcome.
    """

    def setup(w):
        balance = w.atomic("balance", 0)
        guard = w.mutex("guard")

        def deposit(amount):
            if variant == "fixed":
                yield balance.read()  # the stale read survives the patch...
                yield balance.add(amount)  # ...but the lost update does not
                return
            if variant == "locked":
                yield guard.acquire()
            current = yield balance.read()
            yield balance.write(current + amount)
            if variant == "locked":
                yield guard.release()

        def main():
            first = yield spawn(deposit, 100, name="alice")
            second = yield spawn(deposit, 50, name="bob")
            yield join(first)
            yield join(second)
            total = yield balance.read()
            check(total == 150, f"deposits lost: balance is {total}")

        return {"main": main}

    return Program("bank-account", setup)


def banner(title):
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    banner("1. Find the bug and save its witness")
    program = account("buggy")
    checker = ChessChecker(program)
    bug = checker.find_bug(max_bound=2)
    trace = TraceRecord.from_bug(program, checker.config, bug)
    path = trace.save(workdir)
    print(f"saved: {path.name}")
    print(trace.summary())

    banner("2. Reload and replay deterministically")
    loaded = TraceRecord.load(path)
    report = replay_trace(loaded, account("buggy"))
    print(report.explain())

    banner("3. Minimize to the simplest explanation")
    result = minimize_trace(loaded, account("buggy"))
    print(result.summary())
    result.trace.save(workdir)

    banner("4. Triage: the bug was fixed")
    print(replay_trace(loaded, account("fixed")).describe())

    banner("5. Triage: the synchronization structure changed")
    print(replay_trace(loaded, account("locked")).describe())

    banner("6. The corpus as a regression gate")
    corpus = TraceCorpus(workdir)
    report = corpus.run(resolve=lambda trace: account("buggy"))
    print(report.summary())
    print()
    print(f"corpus ok: {report.ok}  (CI: `python -m repro corpus run {workdir}`)")


if __name__ == "__main__":
    main()
