"""Runnable example scripts and checkable example program families.

Plain scripts (``quickstart.py`` etc.) are run directly; the
``invivo`` subpackage holds importable ``module:factory`` programs for
``repro check --module``.
"""
