"""Shared fixtures and helpers for the test suite.

Most tests build tiny programs inline; the helpers here remove the
boilerplate of running them under specific configurations.
"""

from __future__ import annotations

import pytest

from repro import (
    ChessChecker,
    Execution,
    ExecutionConfig,
    Program,
    RaceDetection,
    SchedulingPolicy,
)


def make_program(name, setup):
    """Tiny alias making inline test programs read naturally."""
    return Program(name, setup)


def run_round_robin(program, config=None):
    """Drive a program to completion without preemptions."""
    return Execution(program, config).run_round_robin()


def first_bug(program, max_bound=3, config=None):
    """The minimal-preemption bug of a program, or None."""
    return ChessChecker(program, config).find_bug(max_bound=max_bound)


@pytest.fixture
def every_access_config():
    """Engine config with a scheduling point after every access."""
    return ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)


@pytest.fixture
def no_race_config():
    """Engine config with race detection disabled."""
    return ExecutionConfig(race_detection=RaceDetection.NONE)


@pytest.fixture
def strict_race_config():
    """Engine config with the strict Appendix-A race definition."""
    return ExecutionConfig(strict_races=True)
