"""The ZING modeling framework and explicit-state checker."""

from __future__ import annotations

import pytest

from repro import BugKind, DepthFirstSearch, IterativeContextBounding, RandomWalk
from repro.errors import ProgramDefinitionError
from repro.zing import (
    ZingChecker,
    ZingModel,
    ZingStateSpace,
    acquire,
    atomic,
    guarded,
    release,
)


class Counter(ZingModel):
    """Two threads incrementing a shared counter."""

    name = "counter"
    thread_labels = ("a", "b")

    def __init__(self, locked: bool = True, expect: int = 2) -> None:
        self.locked = locked
        self.expect = expect

    def initial_globals(self):
        return {"lock": None, "n": 0, "done": 0}

    def program(self, index):
        def load(ctx):
            ctx.l["tmp"] = ctx.g["n"]

        def store(ctx):
            ctx.g["n"] = ctx.l["tmp"] + 1
            ctx.g["done"] += 1
            if ctx.g["done"] == 2:
                ctx.require(ctx.g["n"] == self.expect, "lost update")

        body = [atomic(load), atomic(store)]
        if self.locked:
            return [acquire("lock")] + body + [release("lock")]
        return body


class TestModelBasics:
    def test_compile_validates_threads(self):
        class Empty(ZingModel):
            name = "empty"
            thread_labels = ()

            def initial_globals(self):
                return {}

            def program(self, index):
                return []

        with pytest.raises(ProgramDefinitionError):
            Empty().compile()

    def test_duplicate_labels_rejected(self):
        class Dup(ZingModel):
            name = "dup"
            thread_labels = ("t",)

            def initial_globals(self):
                return {}

            def program(self, index):
                return [atomic(lambda ctx: None, label="x"),
                        atomic(lambda ctx: None, label="x")]

        with pytest.raises(ProgramDefinitionError):
            Dup().compile()

    def test_goto_jumps(self):
        class Skipper(ZingModel):
            name = "skipper"
            thread_labels = ("t",)

            def initial_globals(self):
                return {"hits": 0, "skipped": 0}

            def program(self, index):
                def jump(ctx):
                    ctx.goto("end")

                def never(ctx):
                    ctx.g["skipped"] += 1

                def end(ctx):
                    ctx.g["hits"] += 1

                return [atomic(jump), atomic(never), atomic(end, label="end")]

        space = ZingStateSpace(Skipper())
        state = space.initial_state()
        while not space.is_terminal(state):
            state = space.execute(state, space.enabled(state)[0])
        assert state.globals_raw == {"hits": 1, "skipped": 0}

    def test_goto_unknown_label_rejected(self):
        class Bad(ZingModel):
            name = "bad"
            thread_labels = ("t",)

            def initial_globals(self):
                return {}

            def program(self, index):
                return [atomic(lambda ctx: ctx.goto("nowhere"))]

        space = ZingStateSpace(Bad())
        state = space.initial_state()
        with pytest.raises(ProgramDefinitionError):
            space.execute(state, space.enabled(state)[0])

    def test_finish_terminates_thread(self):
        class Quitter(ZingModel):
            name = "quitter"
            thread_labels = ("t",)

            def initial_globals(self):
                return {"after": 0}

            def program(self, index):
                def quit_now(ctx):
                    ctx.finish()

                def never(ctx):
                    ctx.g["after"] += 1

                return [atomic(quit_now), atomic(never)]

        space = ZingStateSpace(Quitter())
        state = space.initial_state()
        state = space.execute(state, space.enabled(state)[0])
        assert space.is_terminal(state)
        assert state.globals_raw["after"] == 0


class TestCheckerSemantics:
    def test_locked_counter_clean(self):
        result = ZingChecker(Counter(locked=True)).check()
        assert result.completed and not result.found_bug

    def test_unlocked_counter_lost_update_at_one_preemption(self):
        bug = ZingChecker(Counter(locked=False)).find_bug()
        assert bug is not None
        assert bug.kind is BugKind.ASSERTION
        assert bug.preemptions == 1

    def test_deadlock_detected(self):
        class Stuck(ZingModel):
            name = "stuck"
            thread_labels = ("t",)

            def initial_globals(self):
                return {"never": False}

            def program(self, index):
                return [guarded(lambda ctx: ctx.g["never"], lambda ctx: None)]

        bug = ZingChecker(Stuck()).find_bug()
        assert bug is not None and bug.kind is BugKind.DEADLOCK

    def test_uncaught_exception_is_bug(self):
        class Crasher(ZingModel):
            name = "crash"
            thread_labels = ("t",)

            def initial_globals(self):
                return {}

            def program(self, index):
                return [atomic(lambda ctx: 1 // 0)]

        bug = ZingChecker(Crasher()).find_bug()
        assert bug.kind is BugKind.UNCAUGHT_EXCEPTION

    def test_strategies_interchangeable(self):
        model = Counter(locked=True)
        icb = IterativeContextBounding().run(ZingStateSpace(model))
        dfs = DepthFirstSearch().run(ZingStateSpace(model))
        rnd = RandomWalk(executions=50, seed=0).run(ZingStateSpace(model))
        assert set(rnd.context.states) <= set(dfs.context.states)
        assert set(icb.context.states) == set(dfs.context.states)

    def test_preemption_accounting_matches_native_engine(self):
        space = ZingStateSpace(Counter(locked=False))
        a, b = space.tids
        state = space.initial_state()
        state = space.execute(state, a)
        assert space.preemptions(state) == 0
        state = space.execute(state, b)  # a still enabled: preemption
        assert space.preemptions(state) == 1
        state = space.execute(state, b)
        assert space.preemptions(state) == 1

    def test_schedule_replayable(self):
        space = ZingStateSpace(Counter(locked=False))
        bug = ZingChecker(Counter(locked=False)).find_bug()
        state = space.initial_state()
        for tid in bug.schedule:
            state = space.execute(state, tid)
        assert any(b.kind is BugKind.ASSERTION for b in space.bugs(state))


class TestClassicDFS:
    def test_dfs_with_delta_stack_visits_all_states(self):
        stats = ZingChecker(Counter(locked=True)).dfs_with_delta_stack()
        baseline = DepthFirstSearch(state_caching=True).run(
            ZingStateSpace(Counter(locked=True))
        )
        # Both cache on canonical states; the classic loop counts the
        # root too, and work-item caching differs slightly from state
        # caching, so allow a small discrepancy in either direction.
        assert abs(stats["visited_states"] - len(baseline.context.states)) <= 1

    def test_delta_stack_compresses(self):
        stats = ZingChecker(Counter(locked=True)).dfs_with_delta_stack()
        assert 0 < stats["stack_compression_ratio"] < 1.0

    def test_finds_bugs(self):
        stats = ZingChecker(Counter(locked=False)).dfs_with_delta_stack()
        assert any(b.kind is BugKind.ASSERTION for b in stats["bugs"])
