"""Transaction-manager model internals: tick gating, mark/flush."""

from __future__ import annotations

import pytest

from repro.programs.transaction_manager import TransactionManager, transaction_manager
from repro.zing import ZingStateSpace


def drive(space, state, tid, steps):
    for _ in range(steps):
        state = space.execute(state, tid)
    return state


class TestTimerGating:
    def test_timer_blocked_before_tick1(self):
        space = ZingStateSpace(transaction_manager())
        state = space.initial_state()
        ops, timer = space.tids
        assert space.enabled(state) == (ops,)

    def test_timer_wakes_after_tick1(self):
        space = ZingStateSpace(transaction_manager())
        state = space.initial_state()
        ops, timer = space.tids
        # create: acquire, create, release, tick1.
        state = drive(space, state, ops, 4)
        assert timer in space.enabled(state)

    def test_flush_pass_blocked_until_tick2(self):
        space = ZingStateSpace(transaction_manager())
        state = space.initial_state()
        ops, timer = space.tids
        state = drive(space, state, ops, 4)  # through tick1
        state = drive(space, state, timer, 4)  # wait-tick1 + mark pass
        # Timer now waits for tick2, which the ops thread has not
        # produced yet.
        assert timer not in space.enabled(state)


class TestMarkAndFlush:
    def test_late_mark_never_flushes(self):
        """A transaction marked in the same period as the flush check
        is not flushed (mark_tick < ticks fails): the two-period lazy
        timeout that pins stale-commit at two preemptions."""
        space = ZingStateSpace(transaction_manager("stale-delete"))
        state = space.initial_state()
        ops, timer = space.tids
        # ops: create (4 instrs), lookup section (3 instrs), tick2.
        state = drive(space, state, ops, 8)
        # Timer runs late: mark happens at ticks == 2.
        state = drive(space, state, timer, 8)
        # The transaction must still be present: flush skipped it.
        assert state.globals_raw["table"]["s0"] is not None
        # And the ops thread can finish its delete without an assert.
        while not space.is_terminal(state):
            state = space.execute(state, space.enabled(state)[0])
        assert not space.bugs(state)

    def test_committed_transactions_never_marked(self):
        space = ZingStateSpace(transaction_manager())
        state = space.initial_state()
        ops, timer = space.tids
        # Run ops through create + commit + tick2 (4 + 5 + 1 instrs).
        state = drive(space, state, ops, 10)
        assert state.globals_raw["table"]["s0"]["state"] == "committed"
        # Timer passes: mark + flush, neither touches a committed txn.
        while timer in space.enabled(state):
            state = space.execute(state, timer)
        txn = state.globals_raw["table"]["s0"]
        assert txn is not None and txn["expired"] is False


class TestVariantStructure:
    def test_variant_names(self):
        assert transaction_manager().name == "txnmgr"
        assert transaction_manager("stale-commit").name == "txnmgr-stale-commit"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            transaction_manager("nonsense")

    def test_two_threads_as_in_paper(self):
        assert TransactionManager().thread_labels == ("ops", "timer")

    def test_txn_ids_are_refs(self):
        from repro.zing.symmetry import Ref

        space = ZingStateSpace(transaction_manager())
        state = space.initial_state()
        ops, _ = space.tids
        state = drive(space, state, ops, 2)  # acquire + create
        assert isinstance(state.globals_raw["table"]["s0"]["id"], Ref)
