"""Heap-symmetry canonicalization and delta-compressed stacks."""

from __future__ import annotations

import pytest

from repro.errors import ProgramDefinitionError
from repro.zing.delta import DeltaStack, flatten
from repro.zing.symmetry import Ref, canonicalize


class TestCanonicalize:
    def test_plain_values_unchanged(self):
        assert canonicalize(5) == 5
        assert canonicalize("x") == "x"
        assert canonicalize(None) is None

    def test_dicts_key_sorted(self):
        a = canonicalize({"b": 1, "a": 2})
        b = canonicalize({"a": 2, "b": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_sequences_frozen(self):
        assert canonicalize([1, 2]) == canonicalize((1, 2))

    def test_sets_order_independent(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_ref_renaming_erases_identity(self):
        # Same structure, different concrete ids: identical canon form.
        a = canonicalize({"x": Ref(10), "y": Ref(20), "z": Ref(10)})
        b = canonicalize({"x": Ref(7), "y": Ref(3), "z": Ref(7)})
        assert a == b

    def test_ref_aliasing_preserved(self):
        aliased = canonicalize({"x": Ref(1), "y": Ref(1)})
        distinct = canonicalize({"x": Ref(1), "y": Ref(2)})
        assert aliased != distinct

    def test_ref_keys_rejected(self):
        with pytest.raises(ProgramDefinitionError):
            canonicalize({Ref(1): "x"})

    def test_unfreezable_rejected(self):
        with pytest.raises(ProgramDefinitionError):
            canonicalize(object())

    def test_nested_structures(self):
        state = {"table": [{"id": Ref(5), "vals": {1, 2}}], "n": 3}
        same = {"table": [{"id": Ref(9), "vals": {2, 1}}], "n": 3}
        assert canonicalize(state) == canonicalize(same)


class TestFlatten:
    def test_leaves_keyed_by_path(self):
        flat = flatten({"a": {"b": 1}, "c": [2, 3]})
        assert flat[("a", "b")] == 1
        assert flat[("c", 0)] == 2
        assert flat[("c", 1)] == 3
        assert flat[("c", "<len>")] == 2

    def test_empty_dict_marked(self):
        flat = flatten({"a": {}})
        assert flat[("a", "<empty-dict>")] is True


class TestDeltaStack:
    def states(self):
        return [
            flatten({"x": 0, "y": 0, "pc": [0, 0]}),
            flatten({"x": 1, "y": 0, "pc": [1, 0]}),
            flatten({"x": 1, "y": 2, "pc": [1, 1]}),
            flatten({"x": 1, "y": 2, "pc": [2, 1]}),
        ]

    def test_push_pop_roundtrip(self):
        stack = DeltaStack()
        states = self.states()
        for state in states:
            stack.push(state)
        for state in reversed(states):
            assert stack.pop() == state
        assert len(stack) == 0

    def test_peek_returns_top_without_popping(self):
        stack = DeltaStack()
        states = self.states()
        for state in states:
            stack.push(state)
        assert stack.peek() == states[-1]
        assert len(stack) == len(states)

    def test_reconstruct_any_index(self):
        stack = DeltaStack()
        states = self.states()
        for state in states:
            stack.push(state)
        for i, state in enumerate(states):
            assert stack.reconstruct(i) == state

    def test_key_removal_and_reappearance(self):
        stack = DeltaStack()
        a = {("k",): 1, ("gone",): 9}
        b = {("k",): 1}
        c = {("k",): 2, ("gone",): 7}
        for state in (a, b, c):
            stack.push(dict(state))
        assert stack.pop() == c
        assert stack.pop() == b
        assert stack.pop() == a

    def test_compression_beats_naive_on_small_diffs(self):
        stack = DeltaStack()
        base = {("var", i): 0 for i in range(50)}
        stack.push(dict(base))
        for step in range(20):
            base[("var", step % 50)] = step
            stack.push(dict(base))
        assert stack.compression_ratio < 0.2

    def test_empty_stack_errors(self):
        stack = DeltaStack()
        with pytest.raises(IndexError):
            stack.pop()
        with pytest.raises(IndexError):
            stack.peek()
        with pytest.raises(IndexError):
            stack.reconstruct(0)
