"""Vector clock algebra."""

from __future__ import annotations

from repro.core.thread import ThreadId
from repro.races.vectorclock import VectorClock

T0 = ThreadId((0,), "t0")
T1 = ThreadId((1,), "t1")
T2 = ThreadId((2,), "t2")


class TestBasics:
    def test_empty_clock_is_zero_everywhere(self):
        vc = VectorClock.empty()
        assert vc.get(T0) == 0 and vc.get(T1) == 0
        assert len(vc) == 0

    def test_tick_increments_one_component(self):
        vc = VectorClock.empty().tick(T0).tick(T0).tick(T1)
        assert vc.get(T0) == 2
        assert vc.get(T1) == 1
        assert vc.get(T2) == 0

    def test_tick_does_not_mutate(self):
        base = VectorClock.empty().tick(T0)
        base.tick(T0)
        assert base.get(T0) == 1

    def test_empty_singleton_reused(self):
        assert VectorClock.empty() is VectorClock.empty()


class TestJoin:
    def test_join_takes_componentwise_max(self):
        a = VectorClock({T0: 3, T1: 1})
        b = VectorClock({T1: 5, T2: 2})
        j = a.join(b)
        assert (j.get(T0), j.get(T1), j.get(T2)) == (3, 5, 2)

    def test_join_with_empty_is_identity(self):
        a = VectorClock({T0: 3})
        assert a.join(VectorClock.empty()) == a
        assert VectorClock.empty().join(a) == a

    def test_join_is_commutative_and_idempotent(self):
        a = VectorClock({T0: 3, T1: 1})
        b = VectorClock({T1: 5})
        assert a.join(b) == b.join(a)
        assert a.join(a) == a


class TestOrdering:
    def test_covers_epoch(self):
        vc = VectorClock({T0: 3})
        assert vc.covers(T0, 3)
        assert vc.covers(T0, 2)
        assert not vc.covers(T0, 4)
        assert vc.covers(T1, 0)

    def test_leq_partial_order(self):
        small = VectorClock({T0: 1})
        big = VectorClock({T0: 2, T1: 1})
        incomparable = VectorClock({T2: 1})
        assert small.leq(big)
        assert not big.leq(small)
        assert not small.leq(incomparable)
        assert not incomparable.leq(small)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({T0: 1, T1: 0}) == VectorClock({T0: 1})
        assert hash(VectorClock({T0: 1, T1: 0})) == hash(VectorClock({T0: 1}))
