"""Goldilocks and Eraser detectors, and detector agreement."""

from __future__ import annotations

from repro import (
    BugKind,
    Execution,
    ExecutionConfig,
    Program,
    RaceDetection,
)
from repro.core.effects import EffectKind
from repro.core.thread import ThreadId
from repro.core.variables import AtomicVar, SharedVar
from repro.core.world import World
from repro.races.eraser import EraserDetector
from repro.races.goldilocks import GoldilocksDetector

T0 = ThreadId((0,), "t0")
T1 = ThreadId((1,), "t1")


def make_world():
    world = World()
    return world, AtomicVar(world, "lock"), SharedVar(world, "data")


class TestGoldilocksUnit:
    def test_first_access_never_races(self):
        _, _, data = make_world()
        detector = GoldilocksDetector()
        assert detector.on_data(T0, data, True) is None

    def test_unordered_second_access_races(self):
        _, _, data = make_world()
        detector = GoldilocksDetector()
        detector.on_data(T0, data, True)
        race = detector.on_data(T1, data, True)
        assert race is not None and "goldilocks" in race

    def test_lockset_transfer_through_lock(self):
        _, lock, data = make_world()
        detector = GoldilocksDetector()
        # T0 writes under the lock, releases; T1 acquires, writes.
        detector.on_sync(T0, lock, EffectKind.ACQUIRE)
        detector.on_data(T0, data, True)
        detector.on_sync(T0, lock, EffectKind.RELEASE)
        detector.on_sync(T1, lock, EffectKind.ACQUIRE)
        assert detector.on_data(T1, data, True) is None

    def test_transfer_through_fork_edge(self):
        world = World()
        data = SharedVar(world, "data")
        created = AtomicVar(world, "created")
        detector = GoldilocksDetector()
        detector.on_data(T0, data, True)  # parent writes
        detector.on_sync(T0, created, EffectKind.SPAWN)  # publishes
        detector.on_sync(T1, created, EffectKind.START)  # child absorbs
        assert detector.on_data(T1, data, False) is None

    def test_classic_mode_needs_release_acquire_pairing(self):
        _, lock, data = make_world()
        detector = GoldilocksDetector(conservative=False)
        detector.on_sync(T0, lock, EffectKind.ACQUIRE)
        detector.on_data(T0, data, True)
        # No release: the lockset never gains the lock element.
        detector.on_sync(T1, lock, EffectKind.ACQUIRE)
        assert detector.on_data(T1, data, True) is not None


class TestEraserUnit:
    def test_exclusive_phase_unchecked(self):
        _, _, data = make_world()
        detector = EraserDetector()
        assert detector.on_data(T0, data, True) is None
        assert detector.on_data(T0, data, True) is None

    def test_consistent_lock_discipline_accepted(self):
        _, lock, data = make_world()
        detector = EraserDetector()
        for tid in (T0, T1):
            detector.on_sync(tid, lock, EffectKind.ACQUIRE)
            assert detector.on_data(tid, data, True) is None
            detector.on_sync(tid, lock, EffectKind.RELEASE)

    def test_unprotected_shared_write_flagged(self):
        _, _, data = make_world()
        detector = EraserDetector()
        detector.on_data(T0, data, True)
        assert detector.on_data(T1, data, True) is not None

    def test_shared_reads_tolerated(self):
        _, _, data = make_world()
        detector = EraserDetector()
        detector.on_data(T0, data, False)
        assert detector.on_data(T1, data, False) is None

    def test_false_positive_on_fork_join_publication(self):
        """Eraser's known weakness: lock-free publication idioms."""
        world = World()
        data = SharedVar(world, "data")
        created = AtomicVar(world, "created")
        detector = EraserDetector()
        detector.on_data(T0, data, True)
        detector.on_sync(T0, created, EffectKind.SPAWN)
        detector.on_sync(T1, created, EffectKind.START)
        # Correctly ordered, but Eraser flags it: no common lock.
        assert detector.on_data(T1, data, True) is not None


class TestEngineIntegration:
    def locked_program(self):
        def setup(w):
            lock = w.mutex("lock")
            data = w.var("data", 0)

            def t():
                yield lock.acquire()
                v = yield data.read()
                yield data.write(v + 1)
                yield lock.release()

            return {"t1": t, "t2": t}

        return Program("locked", setup)

    def racy_program(self):
        def setup(w):
            data = w.var("data", 0)

            def t():
                v = yield data.read()
                yield data.write(v + 1)

            return {"t1": t, "t2": t}

        return Program("racy", setup)

    def test_goldilocks_mode_clean_program(self):
        config = ExecutionConfig(race_detection=RaceDetection.GOLDILOCKS)
        ex = Execution(self.locked_program(), config).run_round_robin()
        assert not ex.bugs

    def test_goldilocks_mode_racy_program(self):
        config = ExecutionConfig(race_detection=RaceDetection.GOLDILOCKS)
        ex = Execution(self.racy_program(), config).run_round_robin()
        assert any(b.kind is BugKind.DATA_RACE for b in ex.bugs)

    def test_both_detectors_agree_on_verdicts(self):
        for program in (self.locked_program(), self.racy_program()):
            vc = Execution(
                program, ExecutionConfig(race_detection=RaceDetection.VECTOR_CLOCK)
            ).run_round_robin()
            gl = Execution(
                program, ExecutionConfig(race_detection=RaceDetection.GOLDILOCKS)
            ).run_round_robin()
            assert bool(vc.bugs) == bool(gl.bugs), program.name
