"""The happens-before tracker: clock propagation and race checks."""

from __future__ import annotations

from repro.core.thread import ThreadId
from repro.core.variables import AtomicVar, SharedVar
from repro.core.world import World
from repro.races.happens_before import HBTracker

T0 = ThreadId((0,), "t0")
T1 = ThreadId((1,), "t1")


def make_objects():
    world = World()
    lock = AtomicVar(world, "lock")
    data = SharedVar(world, "data")
    return world, lock, data


class TestSyncOrdering:
    def test_sync_accesses_totally_ordered(self):
        _, lock, _ = make_objects()
        tracker = HBTracker()
        c0 = tracker.sync_access(T0, [lock])
        c1 = tracker.sync_access(T1, [lock])
        assert c0.leq(c1)
        assert not c1.leq(c0)

    def test_distinct_sync_vars_do_not_order(self):
        world = World()
        a = AtomicVar(world, "a")
        b = AtomicVar(world, "b")
        tracker = HBTracker()
        c0 = tracker.sync_access(T0, [a])
        c1 = tracker.sync_access(T1, [b])
        assert not c0.leq(c1) and not c1.leq(c0)

    def test_program_order_preserved(self):
        _, lock, _ = make_objects()
        tracker = HBTracker()
        first = tracker.sync_access(T0, [lock])
        second = tracker.sync_access(T0, [lock])
        assert first.leq(second) and not second.leq(first)

    def test_multi_object_access_merges_both(self):
        world = World()
        cv = AtomicVar(world, "cv")
        mtx = AtomicVar(world, "mtx")
        tracker = HBTracker()
        c0 = tracker.sync_access(T0, [cv, mtx])
        via_cv = tracker.sync_access(T1, [cv])
        assert c0.leq(via_cv)


class TestRaceChecks:
    def test_ordered_write_read_is_race_free(self):
        _, lock, data = make_objects()
        tracker = HBTracker()
        tracker.sync_access(T0, [lock])  # acquire
        _, races = tracker.data_access(T0, data, True)
        assert not races
        tracker.sync_access(T0, [lock])  # release publishes the write
        tracker.sync_access(T1, [lock])  # acquire absorbs it
        _, races = tracker.data_access(T1, data, False)
        assert not races

    def test_unordered_write_write_races(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, True)
        _, races = tracker.data_access(T1, data, True)
        assert len(races) == 1
        race = races[0]
        assert race.variable == "data"
        assert race.first_was_write and race.second_was_write

    def test_unordered_write_read_races(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, True)
        _, races = tracker.data_access(T1, data, False)
        assert races and not races[0].second_was_write

    def test_unordered_read_write_races(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, False)
        _, races = tracker.data_access(T1, data, True)
        assert races

    def test_read_read_no_race_by_default(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, False)
        _, races = tracker.data_access(T1, data, False)
        assert not races

    def test_read_read_races_in_strict_mode(self):
        _, _, data = make_objects()
        tracker = HBTracker(strict=True)
        tracker.data_access(T0, data, False)
        _, races = tracker.data_access(T1, data, False)
        assert races

    def test_same_thread_never_races(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, True)
        _, races = tracker.data_access(T0, data, True)
        assert not races

    def test_write_races_with_multiple_unordered_readers(self):
        world = World()
        data = SharedVar(world, "data")
        t2 = ThreadId((2,), "t2")
        tracker = HBTracker()
        tracker.data_access(T0, data, False)
        tracker.data_access(T1, data, False)
        _, races = tracker.data_access(t2, data, True)
        assert len(races) == 2

    def test_race_info_describes_accesses(self):
        _, _, data = make_objects()
        tracker = HBTracker()
        tracker.data_access(T0, data, True)
        _, races = tracker.data_access(T1, data, False)
        text = races[0].describe()
        assert "data race on data" in text
        assert "write by t0" in text and "read by t1" in text
