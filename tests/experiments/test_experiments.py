"""Experiment drivers: reporting, coverage, bug tables, Table 1."""

from __future__ import annotations

import pytest

from repro import ChessChecker, DepthFirstSearch, IterativeContextBounding, RandomWalk
from repro.experiments.bugs import BugsByBoundExperiment, bug_bound_table
from repro.experiments.characteristics import (
    ProgramCharacteristics,
    characteristics_table,
    count_loc,
    measure_characteristics,
)
from repro.experiments.coverage import (
    coverage_by_bound,
    coverage_growth,
    history_series,
)
from repro.experiments.reporting import render_curves, render_table
from repro.programs import toy


class TestReporting:
    def test_table_alignment(self):
        text = render_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[3]  # title, header, rule, then rows
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/body aligned

    def test_curves_render_all_series(self):
        text = render_curves(
            {"icb": [(0, 1), (10, 100)], "dfs": [(0, 1), (10, 20)]},
            width=30,
            height=8,
            log_y=True,
            title="growth",
        )
        assert "growth" in text
        assert "o = icb" in text and "x = dfs" in text

    def test_curves_handle_empty(self):
        assert "(no data)" in render_curves({}, title="empty")

    def test_curves_handle_single_point(self):
        text = render_curves({"s": [(1.0, 5.0)]})
        assert "o = s" in text


class TestCoverageByBound:
    def test_curve_reaches_full_coverage(self):
        curve, result = coverage_by_bound(
            lambda: ChessChecker(toy.chain_program(2, 2)).space()
        )
        assert result.completed
        bounds = [b for b, _, _ in curve]
        fractions = [f for _, _, f in curve]
        assert bounds == list(range(len(bounds)))
        assert fractions[-1] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_bound_zero_covers_something(self):
        curve, _ = coverage_by_bound(
            lambda: ChessChecker(toy.chain_program(2, 2)).space()
        )
        assert curve[0][1] > 0


class TestCoverageGrowth:
    def test_budgeted_strategies_compared(self):
        factory = lambda: ChessChecker(toy.chain_program(3, 2)).space()
        results = coverage_growth(
            factory,
            {
                "icb": IterativeContextBounding(),
                "dfs": DepthFirstSearch(),
                "random": RandomWalk(executions=10_000, seed=0),
            },
            max_executions=50,
        )
        assert set(results) == {"icb", "dfs", "random"}
        for result in results.values():
            assert result.executions <= 50

    def test_history_series_sampling(self):
        factory = lambda: ChessChecker(toy.chain_program(2, 2)).space()
        results = coverage_growth(factory, {"dfs": DepthFirstSearch()}, 100)
        series = history_series(results, sample_every=3)
        full = history_series(results)
        assert series["dfs"][-1] == full["dfs"][-1]
        assert len(series["dfs"]) <= len(full["dfs"])


class TestBugExperiment:
    def test_records_minimal_bounds(self):
        experiment = BugsByBoundExperiment(max_bound=2)
        report = experiment.run_variant(
            "toy", "atomic-counter",
            lambda: ChessChecker(toy.atomic_counter_assert()).space(),
        )
        assert report is not None and report.preemptions == 1
        headers, rows = bug_bound_table(experiment)
        assert headers[:2] == ["Program", "Bugs"]
        assert rows[0][0] == "toy"
        assert rows[0][1] == 1  # one bug found
        assert rows[0][3] == 1  # at bound 1

    def test_clean_variant_records_none(self):
        experiment = BugsByBoundExperiment(max_bound=1)
        report = experiment.run_variant(
            "toy", "correct", lambda: ChessChecker(toy.locked_counter()).space()
        )
        assert report is None
        _, rows = bug_bound_table(experiment)
        assert rows[0][1] == 0


class TestCharacteristics:
    def test_count_loc_skips_comments_and_docstrings(self):
        from repro.programs import toy as toy_module

        loc = count_loc(toy_module)
        raw = len(open(toy_module.__file__).read().splitlines())
        assert 0 < loc < raw

    def test_measure_reports_positive_maxima(self):
        entry = measure_characteristics(
            "chain",
            lambda: ChessChecker(toy.chain_program(2, 2)).space(),
            loc=10,
            executions=30,
        )
        assert entry.max_threads == 2
        assert entry.max_k > 0
        assert entry.max_b > 0
        assert entry.max_c >= 1  # random walks preempt

    def test_table_layout(self):
        entry = ProgramCharacteristics("p", 10, 2, 5, 2, 1)
        headers, rows = characteristics_table([entry])
        assert headers[0] == "Programs"
        assert rows == [["p", 10, 2, 5, 2, 1]]
