"""Exhaustive enumeration against ground truth and Theorem 1."""

from __future__ import annotations

import pytest

from repro import ChessChecker
from repro.programs import toy
from repro.theory import (
    brute_force_minimal_bug,
    count_by_preemptions,
    enumerate_executions,
    executions_with_preemptions_upper,
    total_executions_upper,
)


class TestEnumeration:
    def test_chain_2x1_execution_count(self):
        """Two 1-step threads: engine steps are START, op, EXIT; the
        schedules interleave, but the total equals a full DFS count."""
        program = toy.chain_program(2, 1)
        executions = list(enumerate_executions(program))
        result = ChessChecker(program).check()
        assert len(executions) == result.executions

    def test_every_enumerated_schedule_is_maximal(self):
        program = toy.chain_program(2, 1)
        from repro import Execution

        for schedule, _, _ in enumerate_executions(program):
            replay = Execution.replay(program, schedule)
            assert replay.finished

    def test_preemption_histogram_is_consistent(self):
        program = toy.chain_program(2, 2)
        histogram = count_by_preemptions(program)
        assert min(histogram) == 0
        assert all(v > 0 for v in histogram.values())

    def test_limit_stops_enumeration(self):
        program = toy.chain_program(3, 2)
        assert len(list(enumerate_executions(program, limit=10))) == 10

    def test_terminal_initial_state(self):
        from repro import Program

        def setup(w):
            flag = w.atomic("f", 0)

            def t():
                yield flag.write(1)

            return {"t": t}

        # One thread: exactly one maximal execution, zero preemptions.
        histogram = count_by_preemptions(Program("single", setup))
        assert histogram == {0: 1}


class TestTheorem1AgainstReality:
    @pytest.mark.parametrize("n,steps", [(2, 1), (2, 2), (3, 1)])
    def test_bound_dominates_enumeration(self, n, steps):
        program = toy.chain_program(n, steps)
        histogram = count_by_preemptions(program)
        # Measure the real K and B from the engine.
        result = ChessChecker(program).check()
        ctx = result.search.context
        k = ctx.max_steps  # total steps across threads in one execution
        per_thread_k = (k + n - 1) // n
        per_thread_b = 2  # START and EXIT end contexts
        for c, count in histogram.items():
            bound = executions_with_preemptions_upper(n, per_thread_k, per_thread_b, c)
            assert count <= bound, (c, count, bound)

    def test_total_bound_dominates_enumeration(self):
        program = toy.chain_program(2, 2)
        total = sum(count_by_preemptions(program).values())
        # Each thread: START + 2 ops + EXIT = 4 steps.
        assert total <= total_executions_upper(2, 4)

    def test_polynomial_growth_observed(self):
        """Executions at bound 0 grow linearly-ish in k, while the
        total grows explosively: the empirical shape of Theorem 1."""
        zero_bound = []
        totals = []
        for steps in (1, 2, 3):
            histogram = count_by_preemptions(toy.chain_program(2, steps))
            zero_bound.append(histogram[0])
            totals.append(sum(histogram.values()))
        assert zero_bound == [2, 2, 2]  # round-robin choices only
        assert totals[2] / totals[1] > totals[1] / totals[0] > 1


class TestBruteForceMinimalBug:
    def test_agrees_with_icb(self):
        for program in [toy.atomic_counter_assert(), toy.use_after_free_toy()]:
            truth = brute_force_minimal_bug(program)
            icb = ChessChecker(program).find_bug()
            assert truth == icb.preemptions

    def test_clean_program_returns_none(self):
        assert brute_force_minimal_bug(toy.chain_program(2, 1)) is None
