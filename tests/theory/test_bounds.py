"""Theorem 1 combinatorics."""

from __future__ import annotations

from math import comb, factorial

import pytest

from repro.theory.bounds import (
    executions_with_preemptions_upper,
    growth_table,
    nonblocking_bound,
    simplified_bound,
    total_executions_upper,
)


class TestTotalExecutions:
    def test_known_small_values(self):
        # Interleavings of two 2-step threads: C(4,2) = 6.
        assert total_executions_upper(2, 2) == 6
        # Three 1-step threads: 3! = 6.
        assert total_executions_upper(3, 1) == 6

    def test_multinomial_formula(self):
        for n, k in [(2, 3), (3, 2), (4, 2)]:
            assert total_executions_upper(n, k) == factorial(n * k) // factorial(k) ** n

    def test_exponential_growth_in_k(self):
        values = [total_executions_upper(2, k) for k in range(1, 8)]
        ratios = [b / a for a, b in zip(values, values[1:])]
        # Ratios themselves grow: super-polynomial.
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))

    def test_zero_steps(self):
        assert total_executions_upper(3, 0) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            total_executions_upper(0, 1)
        with pytest.raises(ValueError):
            total_executions_upper(1, -1)


class TestTheorem1:
    def test_formula(self):
        for n, k, b, c in [(2, 5, 1, 0), (2, 5, 1, 2), (3, 4, 2, 1)]:
            expected = comb(n * k, c) * factorial(n * b + c)
            assert executions_with_preemptions_upper(n, k, b, c) == expected

    def test_zero_preemptions_bound(self):
        # With c=0: (nb)! arrangements of the blocking contexts.
        assert executions_with_preemptions_upper(2, 10, 1, 0) == factorial(2)

    def test_polynomial_in_k_for_fixed_c(self):
        """The point of Theorem 1: for fixed c, growth in k is
        polynomial of degree c, unlike the unbounded count."""
        c = 2
        bounds = [executions_with_preemptions_upper(2, k, 1, c) for k in (10, 20, 40)]
        # Doubling k multiplies a degree-2 polynomial by at most ~4 (+
        # lower-order terms); the unbounded count squares and more.
        assert bounds[1] / bounds[0] < 5
        assert bounds[2] / bounds[1] < 5
        unbounded = [total_executions_upper(2, k) for k in (10, 20)]
        assert unbounded[1] / unbounded[0] > 10_000

    def test_monotone_in_every_argument(self):
        base = executions_with_preemptions_upper(2, 5, 1, 1)
        assert executions_with_preemptions_upper(3, 5, 1, 1) > base
        assert executions_with_preemptions_upper(2, 6, 1, 1) > base
        assert executions_with_preemptions_upper(2, 5, 2, 1) > base
        assert executions_with_preemptions_upper(2, 5, 1, 2) > base

    def test_b_cannot_exceed_k(self):
        with pytest.raises(ValueError):
            executions_with_preemptions_upper(2, 3, 4, 0)

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            executions_with_preemptions_upper(2, 3, 1, -1)


class TestSimplifications:
    def test_simplified_bound_formula(self):
        assert simplified_bound(2, 5, 1, 2) == (2 * 2 * 5 * 1) ** 2 * factorial(2)

    def test_nonblocking_bound_formula(self):
        assert nonblocking_bound(2, 5, 2) == (2 * 2 * 5) ** 2 * factorial(2)

    def test_nonblocking_matches_simplified_with_b_one(self):
        assert nonblocking_bound(3, 7, 2) == simplified_bound(3, 7, 1, 2)

    def test_growth_table_rows(self):
        rows = growth_table(2, 1, 2, [2, 4])
        assert len(rows) == 2
        assert rows[0][0] == 2
        assert rows[0][1] == executions_with_preemptions_upper(2, 2, 1, 2)
        assert rows[0][2] == total_executions_upper(2, 2)
