"""The checking service: dispatch, durability, cache integration."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.service.daemon import CheckingService, resolve_spec


def test_resolve_spec_builtin_and_factory():
    assert resolve_spec("toy:racy-counter").name
    assert resolve_spec("repro.programs.toy:racy_counter").name
    with pytest.raises(ReproError):
        resolve_spec("no-such-program")
    with pytest.raises(ReproError):
        resolve_spec("repro.programs.toy:not_a_factory")


def test_serve_once_runs_queued_jobs_and_writes_results(tmp_path):
    service = CheckingService(tmp_path)
    job = service.queue.submit("toy:stats-race", max_bound=1)
    handled = service.serve(once=True)
    assert handled == 1
    record = service.queue.get(job.id)
    assert record.status == "done"
    payload = service.load_result(job.id)
    assert payload["format"] == "repro-service-result"
    assert payload["spec"] == "toy:stats-race"
    assert payload["found_bug"] is True
    assert payload["completed"] is True
    assert {bug["kind"] for bug in payload["bugs"]} == {"data-race"}
    # Decided searches leave no checkpoint to resume.
    assert not service.checkpoint_path(job).exists()


def test_resubmitted_work_is_served_from_the_cache(tmp_path):
    service = CheckingService(tmp_path)
    first = service.queue.submit("toy:stats-assert", max_bound=1)
    service.serve(once=True)
    again = service.queue.submit("toy:stats-assert", max_bound=1)
    assert again.id != first.id
    service.serve(once=True)
    assert service.queue.get(again.id).cache_hit is True
    fresh = service.load_result(first.id)
    cached = service.load_result(again.id)
    for key in ("executions", "transitions", "distinct_states", "bugs"):
        assert cached[key] == fresh[key]
    assert cached["cache_hit"] is True and fresh["cache_hit"] is False


def test_startup_recovers_jobs_a_dead_daemon_left_running(tmp_path):
    service = CheckingService(tmp_path)
    job = service.queue.submit("toy:stats-race", max_bound=1)
    claimed = service.queue.claim()  # daemon dies here, job marked running
    assert claimed.id == job.id
    revived = CheckingService(tmp_path)
    assert revived.serve(once=True) == 1
    record = revived.queue.get(job.id)
    assert record.status == "done"
    assert record.attempts == 2
    assert revived.load_result(job.id)["found_bug"] is True


def test_bad_jobs_fail_after_max_attempts(tmp_path):
    service = CheckingService(tmp_path, max_attempts=2)
    job = service.queue.submit("no-such-program")
    service.serve(once=True)
    record = service.queue.get(job.id)
    assert record.status == "failed"
    assert record.attempts == 2
    assert "no-such-program" in record.error
    with pytest.raises(ReproError):
        service.load_result(job.id)


def test_missing_result_is_a_repro_error(tmp_path):
    with pytest.raises(ReproError):
        CheckingService(tmp_path).load_result("job-000042")
