"""The durable JSONL job queue: journal fold, dedup, priorities,
crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import JOURNAL_NAME, Job, JobQueue, JobQueueError


def test_submit_assigns_sequential_ids_and_persists(tmp_path):
    queue = JobQueue(tmp_path)
    first = queue.submit("toy:racy-counter")
    second = queue.submit("bluetooth", max_bound=2)
    assert [first.id, second.id] == ["job-000001", "job-000002"]
    # A fresh instance (another process) folds the same state.
    fresh = JobQueue(tmp_path)
    assert [job.id for job in fresh.jobs()] == [first.id, second.id]
    assert fresh.get(second.id).max_bound == 2


def test_submit_deduplicates_active_work(tmp_path):
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth", max_bound=2)
    assert queue.submit("bluetooth", max_bound=2).id == job.id
    # Different knobs are different work.
    assert queue.submit("bluetooth", max_bound=1).id != job.id
    # Priority is scheduling, not work: it does not defeat dedup.
    assert queue.submit("bluetooth", max_bound=2, priority=9).id == job.id


def test_finished_work_can_be_resubmitted(tmp_path):
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth")
    queue.claim()
    queue.complete(job.id, result_path="r.json", cache_hit=False)
    again = queue.submit("bluetooth")
    assert again.id != job.id


def test_claim_order_is_priority_then_submission(tmp_path):
    queue = JobQueue(tmp_path)
    low = queue.submit("toy:racy-counter")
    high = queue.submit("bluetooth", priority=5)
    later = queue.submit("toy:deadlock")
    assert queue.claim().id == high.id
    assert queue.claim().id == low.id
    assert queue.claim().id == later.id
    assert queue.claim() is None


def test_fail_with_requeue_returns_the_job_to_the_queue(tmp_path):
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth")
    claimed = queue.claim()
    assert claimed.attempts == 1
    queue.fail(job.id, "worker crashed", requeue=True)
    assert queue.get(job.id).status == "queued"
    reclaimed = queue.claim()
    assert reclaimed.id == job.id and reclaimed.attempts == 2
    queue.fail(job.id, "crashed again", requeue=False)
    final = queue.get(job.id)
    assert final.status == "failed"
    assert final.error == "crashed again"


def test_recover_requeues_orphaned_running_jobs(tmp_path):
    queue = JobQueue(tmp_path)
    orphan = queue.submit("bluetooth")
    done = queue.submit("toy:racy-counter")
    queue.claim()  # orphan -> running
    queue.claim()
    queue.complete(done.id)
    recovered = JobQueue(tmp_path).recover()
    assert [job.id for job in recovered] == [orphan.id]
    after = JobQueue(tmp_path)
    assert after.get(orphan.id).status == "queued"
    assert after.get(done.id).status == "done"


def test_malformed_journal_is_a_queue_error(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit("bluetooth")
    journal = tmp_path / JOURNAL_NAME
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write("not json\n")
    with pytest.raises(JobQueueError):
        queue.jobs()


def test_events_for_unknown_jobs_are_tolerated(tmp_path):
    journal = tmp_path / JOURNAL_NAME
    tmp_path.mkdir(parents=True, exist_ok=True)
    journal.write_text(json.dumps({"event": "completed", "id": "job-000099"}) + "\n")
    queue = JobQueue(tmp_path)
    assert queue.jobs() == []
    job = queue.submit("bluetooth")
    assert queue.get(job.id).status == "queued"


def test_work_key_excludes_priority():
    a = Job(id="a", spec="x", priority=0, max_bound=1)
    b = Job(id="b", spec="x", priority=7, max_bound=1)
    assert a.work_key() == b.work_key()
    assert a.work_key() != Job(id="c", spec="x", max_bound=2).work_key()


def test_torn_final_line_is_ignored_and_truncated(tmp_path):
    queue = JobQueue(tmp_path)
    first = queue.submit("bluetooth")
    second = queue.submit("toy:racy-counter")
    journal = tmp_path / JOURNAL_NAME
    intact = journal.read_bytes()
    # A crash mid-append leaves arbitrary unterminated bytes.  The
    # record was never committed: the fold ignores it...
    with open(journal, "ab") as fh:
        fh.write(b'{"event": "completed", "id": "job-0')
    fresh = JobQueue(tmp_path)
    assert [job.id for job in fresh.jobs()] == [first.id, second.id]
    assert fresh.get(first.id).status == "queued"
    # ...and repair() truncates the journal back to the last record.
    assert fresh.repair() is True
    assert journal.read_bytes() == intact
    assert fresh.repair() is False


def test_torn_tail_that_parses_is_still_uncommitted(tmp_path):
    # Even a tail that happens to be valid JSON is ignored without its
    # terminating newline: the append never completed, and honouring
    # it would let the next append corrupt the journal by concatenation.
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth")
    journal = tmp_path / JOURNAL_NAME
    with open(journal, "ab") as fh:
        fh.write(json.dumps({"event": "completed", "id": job.id}).encode())
    assert JobQueue(tmp_path).get(job.id).status == "queued"


def test_append_after_torn_tail_repairs_first(tmp_path):
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth")
    journal = tmp_path / JOURNAL_NAME
    with open(journal, "ab") as fh:
        fh.write(b"garbage without a newline")
    # The next mutation truncates the tail before appending, so the
    # journal stays parseable end to end.
    queue.complete(job.id, result_path="r.json")
    lines = journal.read_text().splitlines()
    assert all(json.loads(line)["event"] for line in lines)
    assert JobQueue(tmp_path).get(job.id).status == "done"


def test_recover_repairs_a_torn_tail(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit("bluetooth")
    journal = tmp_path / JOURNAL_NAME
    with open(journal, "ab") as fh:
        fh.write(b'{"torn":')
    recovered = JobQueue(tmp_path).recover()
    assert recovered == []
    assert journal.read_bytes().endswith(b"\n")
