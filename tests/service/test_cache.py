"""The content-addressed result cache and its corpus fast path."""

from __future__ import annotations

import pytest

from repro import ChessChecker, SearchLimits
from repro.programs import resolve_builtin, toy
from repro.service.cache import ResultCache, result_cache_key

from ._parity import identities, summary


class _NoExploration:
    """Stands in for ProgramStateSpace: constructing it means the
    checker tried to explore, which a cache hit must never do."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("cache hit must not touch the state space")


def test_cache_hit_serves_without_exploring(tmp_path, monkeypatch):
    spec, bound = "toy:stats-assert", 1
    cache = ResultCache(tmp_path / "cache")
    first = ChessChecker(resolve_builtin(spec)).check(max_bound=bound, cache=cache)
    assert len(cache) == 1

    monkeypatch.setattr("repro.chess.checker.ProgramStateSpace", _NoExploration)
    served = ChessChecker(resolve_builtin(spec)).check(max_bound=bound, cache=cache)
    assert served.search.extras.get("cache_hit") is True
    assert summary(served) == summary(first)
    assert identities(served) == identities(first)
    assert [b.describe() for b in served.bugs] == [b.describe() for b in first.bugs]


def test_key_separates_programs_bounds_limits_and_options(tmp_path):
    program = resolve_builtin("toy:stats-assert")
    base = result_cache_key(program, None, limits=None, max_bound=1,
                            state_caching=False, analysis=False)
    assert base == result_cache_key(program, None, limits=None, max_bound=1,
                                    state_caching=False, analysis=False)
    variants = [
        result_cache_key(toy.racy_counter(), None, limits=None, max_bound=1,
                         state_caching=False, analysis=False),
        result_cache_key(program, None, limits=None, max_bound=2,
                         state_caching=False, analysis=False),
        result_cache_key(program, None, limits=SearchLimits(max_executions=5),
                         max_bound=1, state_caching=False, analysis=False),
        result_cache_key(program, None, limits=None, max_bound=1,
                         state_caching=True, analysis=False),
        result_cache_key(program, None, limits=None, max_bound=1,
                         state_caching=False, analysis=True),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_wall_clock_budgets_bypass_the_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    limits = SearchLimits(max_seconds=60)
    checker = ChessChecker(resolve_builtin("toy:stats-assert"))
    first = checker.check(max_bound=1, limits=limits, cache=cache)
    second = checker.check(max_bound=1, limits=limits, cache=cache)
    assert len(cache) == 0
    assert not first.search.extras.get("cache_hit")
    assert not second.search.extras.get("cache_hit")


def test_incomplete_results_are_not_stored(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = ChessChecker(resolve_builtin("wsq:pop-race")).check(
        max_bound=2, limits=SearchLimits(max_transitions=50), cache=cache
    )
    assert not result.search.completed
    assert len(cache) == 0


def test_stop_on_first_bug_results_are_stored(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    limits = SearchLimits(stop_on_first_bug=True)
    checker = ChessChecker(resolve_builtin("toy:stats-assert"))
    first = checker.check(max_bound=1, limits=limits, cache=cache)
    assert first.found_bug and len(cache) == 1
    served = checker.check(max_bound=1, limits=limits, cache=cache)
    assert served.search.extras.get("cache_hit") is True
    assert identities(served) == identities(first)


def test_corpus_fastpath_replays_a_stored_witness(tmp_path):
    from repro.trace.corpus import TraceCorpus

    spec = "toy:stats-assert"
    traces = tmp_path / "traces"
    bug = ChessChecker(resolve_builtin(spec)).find_bug(
        max_bound=1, trace_dir=traces, trace_spec=spec
    )
    assert bug is not None and list(traces.glob("*.trace.json"))

    cache = ResultCache(tmp_path / "cache", corpus=TraceCorpus(traces))
    result = ChessChecker(resolve_builtin(spec)).check(
        max_bound=1, limits=SearchLimits(stop_on_first_bug=True), cache=cache
    )
    assert result.search.extras.get("corpus_fastpath") is True
    assert result.found_bug
    assert result.executions == 1
    # A replayed witness is evidence for *this* program only; it is
    # not a completed search and must not poison the result cache.
    assert len(cache) == 0


def test_corpus_fastpath_only_applies_to_stop_on_first_bug(tmp_path):
    from repro.trace.corpus import TraceCorpus

    spec = "toy:stats-assert"
    traces = tmp_path / "traces"
    ChessChecker(resolve_builtin(spec)).find_bug(
        max_bound=1, trace_dir=traces, trace_spec=spec
    )
    cache = ResultCache(tmp_path / "cache", corpus=TraceCorpus(traces))
    full = ChessChecker(resolve_builtin(spec)).check(max_bound=1, cache=cache)
    # An exhaustive check cannot be served by one witness replay.
    assert not full.search.extras.get("corpus_fastpath")
    assert full.search.completed


def test_cache_and_checkpoint_reject_custom_strategies(tmp_path):
    from repro import DepthFirstSearch

    checker = ChessChecker(toy.racy_counter())
    with pytest.raises(ValueError):
        checker.check(strategy=DepthFirstSearch(),
                      cache=ResultCache(tmp_path / "cache"))
    with pytest.raises(ValueError):
        checker.check(strategy=DepthFirstSearch(),
                      checkpoint=tmp_path / "x.ckpt.json")
