"""The service surface of the CLI in fresh interpreters: the
machine-readable registry, the submit/serve/status/results loop, and
the hard acceptance test -- SIGKILL a parallel check mid-run, resume
it, and get exactly the uninterrupted serial answer."""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.programs import EXPECTED_BUGS, builtin_registry

from ._parity import BOUNDS, baseline, identities, summary

#: Specs big enough that a promptly-delivered SIGKILL lands mid-search.
KILL_SPECS = ["wsq:pop-race", "dryad:use-after-free"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    # Checkpoints bind to the hash seed (state fingerprints use it);
    # resuming in a different process requires pinning it.
    env["PYTHONHASHSEED"] = "0"
    return env


def _run(*args, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=_env(),
    )
    if check:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


def test_list_json_is_a_machine_readable_registry():
    proc = _run("list", "--json")
    entries = json.loads(proc.stdout)
    by_spec = {entry["spec"]: entry for entry in entries}
    assert set(by_spec) == set(builtin_registry())
    for entry in entries:
        assert set(entry) == {"spec", "name", "threads", "expected_bug", "buggy"}
        assert isinstance(entry["threads"], int) and entry["threads"] >= 1
        assert entry["buggy"] == (entry["spec"] in EXPECTED_BUGS)
        assert entry["expected_bug"] == EXPECTED_BUGS.get(entry["spec"])
    assert by_spec["wsq:pop-race"]["expected_bug"] == "assertion"
    assert by_spec["toy:dekker"]["buggy"] is False


def test_submit_serve_status_results_loop(tmp_path):
    root = str(tmp_path / "svc")
    job_id = _run("submit", root, "toy:stats-race", "--bound", "1").stdout.strip()
    assert job_id == "job-000001"
    # Identical resubmission is deduplicated while queued.
    assert _run("submit", root, "toy:stats-race", "--bound", "1").stdout.strip() == job_id
    _run("serve", root, "--once")
    status = json.loads(_run("status", root, "--json").stdout)
    assert [job["status"] for job in status] == ["done"]
    payload = json.loads(_run("results", root, job_id).stdout)
    assert payload["job"] == job_id
    assert payload["found_bug"] is True
    # Resubmitting finished work is a cache hit.
    second = _run("submit", root, "toy:stats-race", "--bound", "1").stdout.strip()
    assert second != job_id
    _run("serve", root, "--once")
    assert json.loads(_run("results", root, second).stdout)["cache_hit"] is True


def test_unknown_job_id_is_a_clear_error_with_nonzero_exit(tmp_path):
    root = str(tmp_path / "svc")
    job_id = _run("submit", root, "toy:stats-race", "--bound", "1").stdout.strip()
    proc = _run("status", root, "job-000099", check=False)
    assert proc.returncode == 1
    assert "error: unknown job id 'job-000099'" in proc.stderr
    proc = _run("results", root, "job-000099", check=False)
    assert proc.returncode == 1
    assert "error: unknown job id 'job-000099'" in proc.stderr
    # A known id whose job has not finished is a different clear error.
    proc = _run("results", root, job_id, check=False)
    assert proc.returncode == 1
    assert f"error: job {job_id} is queued; no result yet" in proc.stderr


@pytest.mark.parametrize("spec", KILL_SPECS)
def test_sigkilled_parallel_check_resumes_to_serial_parity(spec, tmp_path):
    base = baseline(spec)
    bound = BOUNDS[spec]
    ckpt = tmp_path / "kill.ckpt.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "check", spec,
            "--bound", str(bound), "--workers", "2",
            "--checkpoint", str(ckpt), "--checkpoint-stride", "4",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_env(),
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not ckpt.exists() and time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        assert ckpt.exists(), "no checkpoint appeared before the run ended"
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()

    # Resume in a fresh interpreter (same pinned hash seed) and report
    # the merged result as JSON for exact comparison.
    resume = (
        "import json, sys\n"
        "from repro import ChessChecker\n"
        "from repro.programs import resolve_builtin\n"
        f"r = ChessChecker(resolve_builtin({spec!r})).check(\n"
        f"    max_bound={bound}, workers=2, checkpoint={str(ckpt)!r})\n"
        "print(json.dumps({\n"
        "    'executions': r.executions,\n"
        "    'transitions': r.transitions,\n"
        "    'distinct_states': r.distinct_states,\n"
        "    'certified_bound': r.certified_bound,\n"
        "    'states_by_bound': sorted(r.search.context.states_by_bound().items()),\n"
        "    'identities': sorted([b.kind.value] + [str(t) for t in b.identity[1]]\n"
        "                         for b in r.search.bugs),\n"
        "    'completed': r.search.completed,\n"
        "}))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", resume],
        capture_output=True,
        text=True,
        env=_env(),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    resumed = json.loads(proc.stdout)
    assert resumed["completed"] is True
    expected = summary(base)
    assert resumed["executions"] == expected["executions"]
    assert resumed["transitions"] == expected["transitions"]
    assert resumed["distinct_states"] == expected["distinct_states"]
    assert resumed["certified_bound"] == expected["certified_bound"]
    assert resumed["states_by_bound"] == sorted(
        [k, v] for k, v in expected["states_by_bound"].items()
    )
    assert resumed["identities"] == sorted(
        [kind] + [str(t) for t in rest] for (kind, *rest) in identities(base)
    )
