"""Shared helpers for the service tests: the buggy-builtin bound
table and the cross-run comparison functions."""

from __future__ import annotations

from repro import ChessChecker

#: Every buggy built-in, mapped to a bound sufficient for its defect
#: (mirrors tests/trace/test_roundtrip.py; a guard test pins this to
#: ``repro.programs.EXPECTED_BUGS`` so new buggy built-ins cannot
#: silently dodge the resume-parity property).
BOUNDS = {
    "bluetooth": 2,
    "wsq:pop-race": 2,
    "wsq:steal-stale-tail": 2,
    "wsq:pop-lost-restore": 1,
    "ape:init-race": 0,
    "ape:early-return": 0,
    "ape:stats-race": 1,
    "ape:double-take": 2,
    "dryad:missing-handler": 0,
    "dryad:use-after-free": 1,
    "dryad:refcount-race": 1,
    "dryad:close-sem-race": 1,
    "dryad:double-free": 1,
    "toy:racy-counter": 0,
    "toy:atomic-counter": 1,
    "toy:deadlock": 1,
    "toy:uaf": 0,
    "toy:stats-race": 0,
    "toy:stats-assert": 1,
    "toy:stats-deadlock": 1,
}


def summary(check_result):
    """The essence a resumed run must reproduce exactly."""
    return {
        "executions": check_result.executions,
        "transitions": check_result.transitions,
        "distinct_states": check_result.distinct_states,
        "certified_bound": check_result.certified_bound,
        "states_by_bound": check_result.search.context.states_by_bound(),
    }


def identities(check_result):
    """The sorted BugReport.identity set, in an orderable encoding
    (BugKind itself is not orderable)."""
    return sorted(
        (bug.kind.value,) + tuple(bug.identity[1]) for bug in check_result.bugs
    )


_BASELINES = {}


def baseline(spec):
    """The uninterrupted serial check of ``spec`` at its bound, computed
    once per test session (several parity tests compare against it)."""
    from repro.programs import resolve_builtin

    if spec not in _BASELINES:
        _BASELINES[spec] = ChessChecker(resolve_builtin(spec)).check(
            max_bound=BOUNDS[spec]
        )
    return _BASELINES[spec]
