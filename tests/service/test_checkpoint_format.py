"""The on-disk checkpoint format: versioning, validation, fingerprint
binding and the Checkpointer save policy."""

from __future__ import annotations

import json

import pytest

from repro import ChessChecker, SearchLimits
from repro.programs import EXPECTED_BUGS, resolve_builtin, toy
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    Checkpointer,
    search_fingerprint,
)

from ._parity import BOUNDS


def test_bounds_cover_every_buggy_builtin():
    # If this fails, a buggy built-in was added: give it a bound in
    # tests/service/_parity.py so resume parity covers it.
    assert set(BOUNDS) == set(EXPECTED_BUGS)


def _interrupted_checkpoint(tmp_path, spec="wsq:pop-race", bound=2):
    path = tmp_path / "run.ckpt.json"
    ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound,
        limits=SearchLimits(max_transitions=300),
        checkpoint=path,
        checkpoint_stride=8,
    )
    assert path.exists()
    return path


class TestFormat:
    def test_interrupted_run_writes_versioned_checkpoint(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        data = json.loads(path.read_text())
        assert data["format"] == CHECKPOINT_FORMAT
        assert data["version"] == CHECKPOINT_VERSION
        checkpoint = Checkpoint.load(path)
        assert checkpoint.bound >= 0
        assert checkpoint.sequence >= 1
        # The frontier it would resume from is non-empty mid-search.
        assert checkpoint.work_items or checkpoint.next_items

    def test_round_trip_preserves_everything(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        checkpoint = Checkpoint.load(path)
        copy = tmp_path / "copy.ckpt.json"
        checkpoint.save(copy)
        assert json.loads(copy.read_text()) == json.loads(path.read_text())

    def test_not_json_is_a_checkpoint_error(self, tmp_path):
        path = tmp_path / "junk.ckpt.json"
        path.write_text("not json {")
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_missing_keys_are_a_checkpoint_error(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        data = json.loads(path.read_text())
        del data["work_items"]
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_unknown_version_is_a_checkpoint_error(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        data = json.loads(path.read_text())
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)


class TestValidation:
    def test_checkpoint_binds_to_its_program(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        checkpoint = Checkpoint.load(path)
        checkpoint.validate(search_fingerprint(resolve_builtin("wsq:pop-race")))
        with pytest.raises(CheckpointMismatch):
            checkpoint.validate(search_fingerprint(toy.racy_counter()))

    def test_checkpoint_binds_to_strategy_options(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        checkpoint = Checkpoint.load(path)
        program = resolve_builtin("wsq:pop-race")
        with pytest.raises(CheckpointMismatch):
            checkpoint.validate(search_fingerprint(program, state_caching=True))
        with pytest.raises(CheckpointMismatch):
            checkpoint.validate(search_fingerprint(program, analysis=True))

    def test_hash_probe_guards_against_a_different_hash_seed(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        data = json.loads(path.read_text())
        data["fingerprint"]["hash_probe"] = data["fingerprint"]["hash_probe"] + 1
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointMismatch) as excinfo:
            Checkpoint.load(path).validate(
                search_fingerprint(resolve_builtin("wsq:pop-race"))
            )
        assert "hash" in str(excinfo.value).lower()

    def test_resuming_someone_elses_checkpoint_fails_loudly(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        with pytest.raises(CheckpointMismatch):
            ChessChecker(toy.racy_counter()).check(max_bound=0, checkpoint=path)


class TestCheckpointer:
    def test_note_item_fires_on_the_stride(self, tmp_path):
        pointer = Checkpointer(tmp_path / "x.ckpt.json", {}, stride=3)
        assert [pointer.note_item() for _ in range(3)] == [False, False, True]

    def test_clear_removes_the_file_and_tolerates_absence(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        pointer = Checkpointer(path, {})
        pointer.clear()
        assert not path.exists()
        pointer.clear()  # idempotent

    def test_resume_state_is_none_without_a_file(self, tmp_path):
        pointer = Checkpointer(tmp_path / "none.ckpt.json", {})
        assert pointer.resume_state() is None

    def test_sequence_continues_across_resumes(self, tmp_path):
        path = _interrupted_checkpoint(tmp_path)
        first = Checkpoint.load(path).sequence
        ChessChecker(resolve_builtin("wsq:pop-race")).check(
            max_bound=2,
            limits=SearchLimits(max_transitions=600),
            checkpoint=path,
            checkpoint_stride=8,
        )
        assert Checkpoint.load(path).sequence > first
