"""The tentpole acceptance property: an interrupted-then-resumed
search reports exactly what an uninterrupted one would -- same
executions, transitions, distinct states, certified bound, per-bound
state histogram and ``BugReport.identity`` set -- for the serial
engine, the parallel engine, and across engines, on every buggy
built-in."""

from __future__ import annotations

import pytest

from repro import ChessChecker, ParallelSettings, SearchLimits
from repro.obs import EventBus, Instrumentation
from repro.programs import resolve_builtin

from ._parity import BOUNDS, baseline, identities, summary

#: Interrupt roughly mid-exploration, but cap the interrupted run so
#: the big benchmarks (ape:double-take explores ~150k transitions)
#: don't triple their cost; the resumed run redoes the rest.
def _cut(base):
    return max(5, min(base.transitions // 2, 2000))


@pytest.mark.parametrize("spec", sorted(BOUNDS))
def test_serial_interrupt_resume_parity(spec, tmp_path):
    base = baseline(spec)
    path = tmp_path / "serial.ckpt.json"
    interrupted = ChessChecker(resolve_builtin(spec)).check(
        max_bound=BOUNDS[spec],
        limits=SearchLimits(max_transitions=_cut(base)),
        checkpoint=path,
    )
    had_checkpoint = path.exists()
    resumed = ChessChecker(resolve_builtin(spec)).check(
        max_bound=BOUNDS[spec], checkpoint=path
    )
    assert resumed.search.completed
    assert summary(resumed) == summary(base)
    assert identities(resumed) == identities(base)
    if interrupted.search.completed:
        # Tiny state spaces can finish inside the budget; then the
        # "interruption" itself must already match.
        assert summary(interrupted) == summary(base)
    elif had_checkpoint:
        # (The smallest programs can hit the budget before the first
        # save; then resuming legitimately starts fresh.)
        assert resumed.search.extras.get("resumed") is True


@pytest.mark.parametrize("spec", sorted(BOUNDS))
def test_parallel_interrupt_resume_parity(spec, tmp_path):
    base = baseline(spec)
    path = tmp_path / "parallel.ckpt.json"
    checker = ChessChecker(resolve_builtin(spec))
    interrupted = checker.check(
        max_bound=BOUNDS[spec],
        workers=2,
        limits=SearchLimits(max_transitions=_cut(base)),
        checkpoint=path,
    )
    had_checkpoint = path.exists()
    resumed = ChessChecker(resolve_builtin(spec)).check(
        max_bound=BOUNDS[spec], workers=2, checkpoint=path
    )
    assert resumed.search.completed
    assert summary(resumed) == summary(base)
    assert identities(resumed) == identities(base)
    if not interrupted.search.completed and had_checkpoint:
        assert resumed.search.extras.get("resumed") is True


def test_cross_engine_resume_both_directions(tmp_path):
    spec, bound = "wsq:pop-race", 2
    base = baseline(spec)
    cut = SearchLimits(max_transitions=_cut(base))

    # Parallel checkpoint finished by the serial engine...
    path = tmp_path / "par-to-serial.ckpt.json"
    ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, workers=2, limits=cut, checkpoint=path
    )
    serial_finish = ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, checkpoint=path
    )
    assert summary(serial_finish) == summary(base)
    assert identities(serial_finish) == identities(base)

    # ...and a serial checkpoint finished by the parallel engine.
    path = tmp_path / "serial-to-par.ckpt.json"
    ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, limits=cut, checkpoint=path
    )
    parallel_finish = ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, workers=2, checkpoint=path
    )
    assert summary(parallel_finish) == summary(base)
    assert identities(parallel_finish) == identities(base)


def test_resuming_a_completed_checkpoint_is_a_fixed_point(tmp_path):
    spec, bound = "toy:stats-assert", 1
    base = baseline(spec)
    path = tmp_path / "done.ckpt.json"
    first = ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, checkpoint=path
    )
    again = ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound, checkpoint=path
    )
    assert summary(first) == summary(base)
    assert summary(again) == summary(base)
    assert identities(again) == identities(base)
    assert again.search.completed


def test_resumed_metrics_match_an_uninterrupted_run(tmp_path):
    """MetricsSnapshot totals survive the interruption: the resumed
    run's snapshot equals an uninterrupted instrumented run's."""
    spec, bound = "wsq:pop-race", 2

    def instrumented(**kwargs):
        obs = Instrumentation(bus=EventBus())
        result = ChessChecker(resolve_builtin(spec)).check(
            max_bound=bound, obs=obs, **kwargs
        )
        snapshot = obs.snapshot()
        obs.close()
        return result, snapshot

    _, base_snap = instrumented()
    path = tmp_path / "metrics.ckpt.json"
    instrumented(
        limits=SearchLimits(max_transitions=2000), checkpoint=path
    )
    resumed, snap = instrumented(checkpoint=path)
    assert resumed.search.extras.get("resumed") is True
    for counter in ("executions", "transitions", "distinct_states", "bugs_found"):
        assert snap.counters.get(counter, 0) == base_snap.counters.get(counter, 0)
    assert snap.states_by_bound == base_snap.states_by_bound
    assert snap.executions_by_bound == base_snap.executions_by_bound
    assert snap.counters.get("checkpoint_resumes") == 1


def test_worker_killed_twice_on_one_shard_still_matches_serial(tmp_path):
    """The crash-requeue path, twice over: the same shard kills two
    successive workers; the third attempt survives, the run completes
    and still reports exactly the serial result."""
    spec, bound = "toy:stats-race", 1
    serial = ChessChecker(resolve_builtin(spec)).check(max_bound=bound)
    settings = ParallelSettings(
        fault_crash_shard=0,
        fault_crash_attempts=2,
        max_shard_retries=2,
        shard_timeout=5.0,
    )
    result = ChessChecker(resolve_builtin(spec)).check(
        max_bound=bound,
        workers=3,
        parallel_settings=settings,
        checkpoint=tmp_path / "crash.ckpt.json",
    )
    assert result.search.completed
    assert result.search.extras["worker_failures"] == 2
    assert result.search.extras["shard_retries"] == 2
    assert result.search.extras["unexplored_items"] == 0
    assert summary(result) == summary(serial)
    assert identities(result) == identities(serial)
