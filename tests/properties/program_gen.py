"""Hypothesis strategies generating small well-formed programs.

The generator builds lock-disciplined programs: every data variable is
permanently associated with one mutex and only ever accessed while
holding it, so generated programs are race-free and deadlock-free by
construction (locks never nest).  This gives the property tests a
family of correct programs whose full state spaces are enumerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from hypothesis import strategies as st

from repro import Program


@dataclass(frozen=True)
class LockBlock:
    """acquire lock[i]; read/write var[i]; release lock[i]."""

    var: int
    write: bool


@dataclass(frozen=True)
class AtomicOp:
    """One interlocked add on atomic[i]."""

    var: int


@dataclass(frozen=True)
class ProgramShape:
    """A deterministic description of a generated program."""

    n_vars: int
    n_atomics: int
    threads: Tuple[Tuple[object, ...], ...]

    @property
    def name(self) -> str:
        return f"gen-{len(self.threads)}t-{self.n_vars}v-{self.n_atomics}a"


def _ops(n_vars: int, n_atomics: int):
    choices = []
    if n_vars:
        choices.append(
            st.builds(
                LockBlock,
                var=st.integers(0, n_vars - 1),
                write=st.booleans(),
            )
        )
    if n_atomics:
        choices.append(st.builds(AtomicOp, var=st.integers(0, n_atomics - 1)))
    return st.one_of(choices)


@st.composite
def program_shapes(
    draw,
    max_threads: int = 3,
    max_ops: int = 3,
    max_vars: int = 2,
    max_atomics: int = 2,
):
    """Draw a :class:`ProgramShape`."""
    n_vars = draw(st.integers(0, max_vars))
    n_atomics = draw(st.integers(0 if n_vars else 1, max_atomics))
    n_threads = draw(st.integers(2, max_threads))
    threads = tuple(
        tuple(draw(st.lists(_ops(n_vars, n_atomics), min_size=1, max_size=max_ops)))
        for _ in range(n_threads)
    )
    return ProgramShape(n_vars=n_vars, n_atomics=n_atomics, threads=threads)


def build_program(shape: ProgramShape) -> Program:
    """Materialize a generated shape as a runnable Program."""

    def setup(w):
        locks = [w.mutex(f"lock{i}") for i in range(shape.n_vars)]
        data = [w.var(f"var{i}", 0) for i in range(shape.n_vars)]
        atomics = [w.atomic(f"atomic{i}", 0) for i in range(shape.n_atomics)]

        def body(ops):
            def thread():
                for op in ops:
                    if isinstance(op, LockBlock):
                        yield locks[op.var].acquire()
                        value = yield data[op.var].read()
                        if op.write:
                            yield data[op.var].write(value + 1)
                        yield locks[op.var].release()
                    else:
                        yield atomics[op.var].add(1)

            return thread

        return {f"t{i}": body(ops) for i, ops in enumerate(shape.threads)}

    return Program(shape.name, setup)
