"""Property tests on the search strategies over generated programs."""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings

from repro import (
    ChessChecker,
    DepthFirstSearch,
    ExecutionConfig,
    IterativeContextBounding,
    SchedulingPolicy,
    SearchLimits,
)
from repro.theory import executions_with_preemptions_upper

from .program_gen import build_program, program_shapes

SMALL = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: Transition budget past which we give up on exhausting a generated
#: space (hypothesis will simply try another example).
BUDGET = SearchLimits(max_transitions=60_000)


def exhaust(strategy, space):
    result = strategy.run(space, limits=BUDGET)
    assume(result.completed)
    return result


class TestIcbEqualsDfs:
    @SMALL
    @given(program_shapes(max_threads=2, max_ops=2))
    def test_same_executions_and_states(self, shape):
        checker = ChessChecker(build_program(shape))
        icb = exhaust(IterativeContextBounding(), checker.space())
        dfs = exhaust(DepthFirstSearch(), checker.space())
        assert icb.executions == dfs.executions
        assert set(icb.context.states) == set(dfs.context.states)

    @SMALL
    @given(program_shapes(max_threads=2, max_ops=2))
    def test_icb_bound_tags_lower_bound_dfs_tags(self, shape):
        """ICB visits each state at its minimal preemption count, so
        its per-state tags are pointwise <= any other strategy's."""
        checker = ChessChecker(build_program(shape))
        icb = exhaust(IterativeContextBounding(), checker.space())
        dfs = exhaust(DepthFirstSearch(), checker.space())
        for fingerprint, bound in icb.context.states.items():
            assert bound <= dfs.context.states[fingerprint]


class TestTheorem1:
    @SMALL
    @given(program_shapes(max_threads=2, max_ops=2, max_vars=1, max_atomics=1))
    def test_per_bound_counts_within_theorem_bound(self, shape):
        program = build_program(shape)
        checker = ChessChecker(program)
        result = exhaust(IterativeContextBounding(), checker.space())
        ctx = result.context
        n = len(shape.threads)
        # Per-thread step and blocking maxima measured from the run.
        k = ctx.max_steps  # across all threads; per-thread is <= k
        b = max(2, ctx.max_blocking)  # START/EXIT end contexts
        # Count executions per preemption bound by re-running bounded.
        from repro.theory import count_by_preemptions

        histogram = count_by_preemptions(program)
        for c, count in histogram.items():
            bound = executions_with_preemptions_upper(n, k, min(b, k), c)
            assert count <= bound


class TestReductionSoundness:
    @SMALL
    @given(program_shapes(max_threads=2, max_ops=2))
    def test_sync_only_reaches_every_terminal_state(self, shape):
        """Theorem 2 in practice: on race-free programs, exploring only
        sync-granularity scheduling points reaches exactly the terminal
        states that full every-access exploration reaches."""
        program = build_program(shape)

        # Past this many executions, enumerate_executions truncates
        # silently and the terminal-state sets are no longer comparable;
        # assume such examples away instead of comparing partial sets.
        ENUM_LIMIT = 20_000

        def terminal_fingerprints(policy):
            checker = ChessChecker(program, ExecutionConfig(policy=policy))
            space = checker.space()
            result = exhaust(DepthFirstSearch(), space)
            finals = set()
            # Re-walk terminal states: cheapest to recompute via ICB
            # histories is awkward, so enumerate directly.
            from repro.theory.enumeration import enumerate_executions

            produced = 0
            for schedule, _, bugs in enumerate_executions(
                program, ExecutionConfig(policy=policy), limit=ENUM_LIMIT
            ):
                assert not bugs
                produced += 1
                from repro import Execution

                finals.add(
                    Execution.replay(
                        program, schedule, ExecutionConfig(policy=policy)
                    ).fingerprint()
                )
            assume(produced < ENUM_LIMIT)
            return finals

        sync_only = terminal_fingerprints(SchedulingPolicy.SYNC_ONLY)
        every = terminal_fingerprints(SchedulingPolicy.EVERY_ACCESS)
        assert sync_only == every

    @SMALL
    @given(program_shapes(max_threads=2, max_ops=2, max_vars=1, max_atomics=1))
    def test_sync_only_explores_no_more_executions(self, shape):
        """The reduction only ever shrinks the number of executions."""
        program = build_program(shape)
        counts = {}
        for policy in SchedulingPolicy:
            checker = ChessChecker(program, ExecutionConfig(policy=policy))
            counts[policy] = exhaust(DepthFirstSearch(), checker.space()).executions
        assert counts[SchedulingPolicy.SYNC_ONLY] <= counts[SchedulingPolicy.EVERY_ACCESS]
