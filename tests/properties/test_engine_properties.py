"""Property tests on the execution engine over generated programs."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Execution, ExecutionConfig, SchedulingPolicy

from .program_gen import build_program, program_shapes

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_execution(program, seed, config=None):
    """Run one complete random-schedule execution."""
    ex = Execution(program, config)
    rng = random.Random(seed)
    while not ex.finished:
        enabled = ex.enabled_threads()
        ex.execute(enabled[rng.randrange(len(enabled))])
    return ex


class TestGeneratedProgramSanity:
    @RELAXED
    @given(program_shapes(), st.integers(0, 2**16))
    def test_generated_programs_terminate_cleanly(self, shape, seed):
        ex = random_execution(build_program(shape), seed)
        assert ex.completed and not ex.failed, ex.bugs

    @RELAXED
    @given(program_shapes(), st.integers(0, 2**16))
    def test_lock_discipline_is_race_free(self, shape, seed):
        ex = random_execution(build_program(shape), seed)
        assert not ex.bugs


class TestReplayDeterminism:
    @RELAXED
    @given(program_shapes(), st.integers(0, 2**16))
    def test_replay_reproduces_everything(self, shape, seed):
        program = build_program(shape)
        first = random_execution(program, seed)
        replay = Execution.replay(program, first.schedule)
        assert replay.fingerprint() == first.fingerprint()
        assert replay.preemptions == first.preemptions
        assert replay.total_accesses == first.total_accesses
        assert [r.fingerprint for r in replay.step_records] == [
            r.fingerprint for r in first.step_records
        ]


class TestCommutativity:
    @RELAXED
    @given(program_shapes(), st.integers(0, 2**16))
    def test_swapping_independent_steps_preserves_final_state(self, shape, seed):
        """Executions equal up to reordering of independent steps are
        equivalent (same HB), hence reach the same fingerprint."""
        program = build_program(shape)
        first = random_execution(program, seed)
        records = first.step_records
        # Find an adjacent pair from different threads with disjoint
        # target sets: independent by the paper's definition.
        swap_at = None
        for i in range(len(records) - 1):
            a, b = records[i], records[i + 1]
            if a.tid == b.tid:
                continue
            targets_a = {name for _, name in a.accesses if name}
            targets_b = {name for _, name in b.accesses if name}
            if targets_a & targets_b:
                continue
            swap_at = i
            break
        if swap_at is None:
            return  # nothing to swap in this execution
        schedule = list(first.schedule)
        schedule[swap_at], schedule[swap_at + 1] = (
            schedule[swap_at + 1],
            schedule[swap_at],
        )
        second = Execution.replay(program, schedule)
        assert second.fingerprint() == first.fingerprint()


class TestPolicyAgreement:
    @RELAXED
    @given(program_shapes(max_threads=2, max_ops=2), st.integers(0, 2**16))
    def test_policies_agree_on_final_state_of_round_robin(self, shape, seed):
        program = build_program(shape)
        sync_only = Execution(
            program, ExecutionConfig(policy=SchedulingPolicy.SYNC_ONLY)
        ).run_round_robin()
        every = Execution(
            program, ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)
        ).run_round_robin()
        for i in range(shape.n_vars):
            assert (
                sync_only.world.find(f"var{i}").value
                == every.world.find(f"var{i}").value
            )
        for i in range(shape.n_atomics):
            assert (
                sync_only.world.find(f"atomic{i}").value
                == every.world.find(f"atomic{i}").value
            )
