"""Detector agreement properties over generated racy/clean programs."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Execution, ExecutionConfig, Program, RaceDetection

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def mixed_program(protect_mask: int, n_threads: int = 2):
    """Threads touching two data vars; ``protect_mask`` selects which
    of them are accessed under the lock (bit set = protected)."""

    def setup(w):
        lock = w.mutex("lock")
        vars_ = [w.var("v0", 0), w.var("v1", 0)]

        def worker():
            for i, var in enumerate(vars_):
                protected = protect_mask & (1 << i)
                if protected:
                    yield lock.acquire()
                value = yield var.read()
                yield var.write(value + 1)
                if protected:
                    yield lock.release()

        return {f"t{i}": worker for i in range(n_threads)}

    return Program(f"mixed-{protect_mask}", setup)


def run_random(program, seed, detection):
    config = ExecutionConfig(race_detection=detection, races_are_fatal=False)
    ex = Execution(program, config)
    rng = random.Random(seed)
    while not ex.finished:
        enabled = ex.enabled_threads()
        ex.execute(enabled[rng.randrange(len(enabled))])
    return ex


class TestDetectorAgreement:
    @RELAXED
    @given(st.integers(0, 3), st.integers(0, 2**16))
    def test_goldilocks_flags_whenever_vector_clock_does(self, mask, seed):
        """Goldilocks computes the paper's HB conservatively, and it
        additionally treats read-read sharing as ownership transfer, so
        its verdicts are a superset of the vector-clock detector's."""
        program = mixed_program(mask)
        vc = run_random(program, seed, RaceDetection.VECTOR_CLOCK)
        gl = run_random(program, seed, RaceDetection.GOLDILOCKS)
        if vc.bugs:
            assert gl.bugs

    @RELAXED
    @given(st.integers(0, 2**16))
    def test_fully_protected_program_clean_under_all_detectors(self, seed):
        program = mixed_program(protect_mask=3)
        for detection in (
            RaceDetection.VECTOR_CLOCK,
            RaceDetection.GOLDILOCKS,
            RaceDetection.BOTH,
        ):
            assert not run_random(program, seed, detection).bugs

    @RELAXED
    @given(st.integers(0, 2), st.integers(0, 2**16))
    def test_unprotected_var_eventually_flagged_by_both(self, mask, seed):
        """With at least one unprotected variable, *some* schedule is
        racy; the round-robin-free random runs here are all unordered,
        so every complete execution carries the race."""
        program = mixed_program(mask)  # mask < 3: some var unprotected
        vc = run_random(program, seed, RaceDetection.VECTOR_CLOCK)
        gl = run_random(program, seed, RaceDetection.GOLDILOCKS)
        assert vc.bugs and gl.bugs

    @RELAXED
    @given(st.integers(0, 3), st.integers(0, 2**16))
    def test_strict_mode_is_superset_of_default(self, mask, seed):
        program = mixed_program(mask)
        plain = Execution(
            program, ExecutionConfig(races_are_fatal=False)
        )
        strict = Execution(
            program, ExecutionConfig(races_are_fatal=False, strict_races=True)
        )
        rng1, rng2 = random.Random(seed), random.Random(seed)
        while not plain.finished:
            enabled = plain.enabled_threads()
            plain.execute(enabled[rng1.randrange(len(enabled))])
        while not strict.finished:
            enabled = strict.enabled_threads()
            strict.execute(enabled[rng2.randrange(len(enabled))])
        if plain.bugs:
            assert strict.bugs
