"""The toy program collection used across the suite."""

from __future__ import annotations

import pytest

from repro import BugKind, ChessChecker, Execution, SearchLimits
from repro.programs import toy


class TestBuggyToys:
    CASES = [
        (toy.racy_counter, {}, BugKind.DATA_RACE, 0),
        (toy.atomic_counter_assert, {}, BugKind.ASSERTION, 1),
        (toy.lock_order_deadlock, {}, BugKind.DEADLOCK, 1),
        (toy.use_after_free_toy, {}, BugKind.USE_AFTER_FREE, 0),
    ]

    @pytest.mark.parametrize(
        "factory,kwargs,kind,bound", CASES, ids=lambda v: getattr(v, "__name__", v)
    )
    def test_bug_kind_and_minimal_bound(self, factory, kwargs, kind, bound):
        bug = ChessChecker(factory(**kwargs)).find_bug(max_bound=3)
        assert bug is not None
        assert bug.kind is kind
        assert bug.preemptions == bound

    def test_dekker_broken_violates_mutual_exclusion(self):
        bug = ChessChecker(toy.dekker(broken=True)).find_bug(max_bound=2)
        assert bug is not None and "mutual exclusion" in bug.message

    def test_peterson_broken_violates_mutual_exclusion(self):
        bug = ChessChecker(toy.peterson(broken=True)).find_bug(max_bound=2)
        assert bug is not None and "mutual exclusion" in bug.message


class TestCorrectToys:
    FACTORIES = [
        toy.locked_counter,
        toy.dekker,
        toy.peterson,
        toy.producer_consumer,
        toy.event_handshake,
        toy.condvar_cell,
        lambda: toy.chain_program(2, 2),
        toy.yielding_pair,
    ]

    @pytest.mark.parametrize(
        "factory", FACTORIES, ids=lambda f: getattr(f, "__name__", "chain")
    )
    def test_certified_clean_to_bound_two(self, factory):
        result = ChessChecker(factory()).check(
            max_bound=2, limits=SearchLimits(max_seconds=120)
        )
        assert not result.found_bug, result.bugs


class TestParameterization:
    def test_racy_counter_scales_threads(self):
        ex = Execution(toy.racy_counter(n_threads=4)).run_round_robin()
        # Round-robin is race-free in ordering but the detector still
        # flags the unordered accesses across threads.
        assert any(b.kind is BugKind.DATA_RACE for b in ex.bugs)

    def test_locked_counter_totals(self):
        ex = Execution(toy.locked_counter(n_threads=3, increments=2)).run_round_robin()
        assert not ex.failed
        assert ex.world.find("counter").value == 6

    def test_producer_consumer_sizes(self):
        ex = Execution(toy.producer_consumer(buffer_size=1, items=4)).run_round_robin()
        assert not ex.failed

    def test_handshake_alternates_strictly(self):
        ex = Execution(toy.event_handshake(rounds=3)).run_round_robin()
        assert ex.world.find("log").value == (
            "L0", "R0", "L1", "R1", "L2", "R2",
        )

    def test_chain_program_final_counts(self):
        ex = Execution(toy.chain_program(3, 4)).run_round_robin()
        assert [ex.world.find(f"c{i}").value for i in range(3)] == [4, 4, 4]
