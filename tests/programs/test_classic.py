"""The classic lock-free corpus: Treiber stack, ticket lock, SPSC ring."""

from __future__ import annotations

import pytest

from repro import BugKind, ChessChecker, Execution, SearchLimits
from repro.programs.classic import spsc_ring, ticket_lock, treiber_stack


class TestTreiberStack:
    def test_sequential_push_pop_conserves(self):
        ex = Execution(treiber_stack(pushers=2, values_each=2)).run_round_robin()
        assert not ex.failed, ex.bugs

    def test_correct_version_certified_bound_one(self):
        result = ChessChecker(treiber_stack()).check(
            max_bound=1, limits=SearchLimits(max_seconds=120)
        )
        assert not result.found_bug

    def test_publication_bug_is_a_race(self):
        bug = ChessChecker(treiber_stack(broken=True)).find_bug(max_bound=1)
        assert bug is not None
        assert bug.kind is BugKind.DATA_RACE
        assert "next" in bug.message

    def test_refs_in_atomics_keep_fingerprints_deterministic(self):
        """Node references live inside the head atomic; replaying a
        schedule must still reproduce identical fingerprints."""
        import random

        program = treiber_stack()
        ex = Execution(program)
        rng = random.Random(11)
        while not ex.finished:
            enabled = ex.enabled_threads()
            ex.execute(enabled[rng.randrange(len(enabled))])
        replay = Execution.replay(program, ex.schedule)
        assert replay.fingerprint() == ex.fingerprint()


class TestTicketLock:
    def test_round_robin_excludes(self):
        ex = Execution(ticket_lock(threads=3)).run_round_robin()
        assert not ex.failed

    def test_correct_version_certified_bound_one(self):
        result = ChessChecker(ticket_lock()).check(
            max_bound=1, limits=SearchLimits(max_seconds=120)
        )
        assert not result.found_bug

    def test_no_ticket_fast_path_breaks_exclusion(self):
        bug = ChessChecker(ticket_lock(broken=True)).find_bug(max_bound=2)
        assert bug is not None
        assert bug.preemptions == 1
        assert "ticket lock" in bug.message


class TestSpscRing:
    def test_round_robin_transfers_everything(self):
        ex = Execution(spsc_ring(capacity=2, items=3)).run_round_robin()
        assert not ex.failed

    def test_correct_version_certified_bound_one(self):
        result = ChessChecker(spsc_ring()).check(
            max_bound=1, limits=SearchLimits(max_seconds=120)
        )
        assert not result.found_bug

    def test_index_first_publication_races(self):
        bug = ChessChecker(spsc_ring(broken=True)).find_bug(max_bound=1)
        assert bug is not None
        assert bug.kind in (BugKind.DATA_RACE, BugKind.ASSERTION)

    @pytest.mark.parametrize("capacity,items", [(1, 2), (2, 2), (3, 4)])
    def test_capacity_variations_stay_correct(self, capacity, items):
        ex = Execution(spsc_ring(capacity=capacity, items=items)).run_round_robin()
        assert not ex.failed
