"""Work-stealing queue operations, exercised deterministically.

Sequential (single-thread) drivers pin down the functional semantics
of push/pop/steal before the concurrent tests let the scheduler loose.
"""

from __future__ import annotations

import pytest

from repro import ChessChecker, Execution, Program, World
from repro.programs.workstealqueue import EMPTY, WorkStealQueue, work_steal_queue


def run_ops(script):
    """Run queue operations on a single thread; return their results."""
    results = []

    def setup(w: World):
        queue = WorkStealQueue(w, size=4)

        def driver():
            for op, *args in script:
                if op == "push":
                    yield from queue.push(args[0])
                    results.append(("push", args[0]))
                elif op == "pop":
                    item = yield from queue.pop()
                    results.append(("pop", item))
                else:
                    item = yield from queue.steal()
                    results.append(("steal", item))

        return {"driver": driver}

    ex = Execution(Program("wsq-ops", setup)).run_round_robin()
    assert not ex.failed, ex.bugs
    return results


class TestSequentialSemantics:
    def test_lifo_pop(self):
        results = run_ops([("push", 1), ("push", 2), ("pop",), ("pop",)])
        assert [r for r in results if r[0] == "pop"] == [("pop", 2), ("pop", 1)]

    def test_fifo_steal(self):
        results = run_ops([("push", 1), ("push", 2), ("steal",), ("steal",)])
        assert [r for r in results if r[0] == "steal"] == [
            ("steal", 1),
            ("steal", 2),
        ]

    def test_pop_empty(self):
        assert run_ops([("pop",)]) == [("pop", EMPTY)]

    def test_steal_empty(self):
        assert run_ops([("steal",)]) == [("steal", EMPTY)]

    def test_mixed_ends(self):
        results = run_ops(
            [("push", 1), ("push", 2), ("push", 3), ("steal",), ("pop",), ("steal",)]
        )
        taken = [r[1] for r in results if r[0] in ("steal", "pop")]
        assert taken == [1, 3, 2]

    def test_wraparound_reuses_slots(self):
        script = []
        for round_ in range(3):
            script += [("push", round_ * 2 + 1), ("push", round_ * 2 + 2)]
            script += [("pop",), ("pop",)]
        results = run_ops(script)
        popped = [r[1] for r in results if r[0] == "pop"]
        assert sorted(popped) == [1, 2, 3, 4, 5, 6]

    def test_overflow_asserts(self):
        def setup(w: World):
            queue = WorkStealQueue(w, size=2)

            def driver():
                for i in range(3):
                    yield from queue.push(i)

            return {"driver": driver}

        ex = Execution(Program("overflow", setup)).run_round_robin()
        assert ex.failed
        assert "full bounded buffer" in ex.bugs[0].message


class TestHarnessConservation:
    def test_round_robin_is_conserving(self):
        ex = Execution(work_steal_queue()).run_round_robin()
        assert not ex.failed

    @pytest.mark.parametrize("steals", [0, 1, 3])
    def test_steal_count_variations(self, steals):
        program = work_steal_queue(steals=steals)
        bug = ChessChecker(program).find_bug(max_bound=1)
        assert bug is None

    def test_script_validation(self):
        with pytest.raises(ValueError):
            work_steal_queue(script=("push", "flush"))

    def test_single_item_conflict_script(self):
        # One item, one pop, one steal: the pure conflict case the THE
        # protocol's lock path arbitrates.
        program = work_steal_queue(script=("push", "pop"), steals=1)
        result = ChessChecker(program).check(max_bound=2)
        assert not result.found_bug
