"""The paper's benchmark programs: seeded bugs at their Table 2 bounds.

These tests pin the headline empirical result of the reproduction:
every seeded defect is exposed by ICB at exactly the preemption bound
Table 2 reports, and every correct variant is certified clean for a
nontrivial bound.  The heavyweight drivers (Dryad with 5 threads, APE
exhaustive) are exercised by the benchmark harness; tests use reduced
drivers that preserve the bounds (verified against the full drivers in
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro import BugKind, ChessChecker, SearchLimits
from repro.programs.ape import VARIANTS as APE_VARIANTS, ape
from repro.programs.bluetooth import bluetooth
from repro.programs.dryad import VARIANTS as DRYAD_VARIANTS, dryad_channels
from repro.programs.filesystem import filesystem
from repro.programs.transaction_manager import (
    VARIANTS as TM_VARIANTS,
    transaction_manager,
)
from repro.programs.workstealqueue import VARIANTS as WSQ_VARIANTS, work_steal_queue
from repro.zing import ZingChecker


class TestBluetooth:
    def test_buggy_driver_fails_at_one_preemption(self):
        bug = ChessChecker(bluetooth(buggy=True)).find_bug(max_bound=2)
        assert bug is not None
        assert bug.kind is BugKind.ASSERTION
        assert bug.preemptions == 1  # Table 2: Bluetooth, 1 bug at bound 1

    def test_fixed_driver_certified_to_bound_two(self):
        result = ChessChecker(bluetooth(buggy=False)).check(max_bound=2)
        assert not result.found_bug
        assert result.certified_bound == 2

    def test_single_worker_still_buggy(self):
        bug = ChessChecker(bluetooth(buggy=True, workers=1)).find_bug(max_bound=2)
        assert bug is not None and bug.preemptions == 1


class TestFilesystem:
    def test_correct_up_to_bound_two(self):
        program = filesystem(threads=3, inodes=2, blocks=3)
        result = ChessChecker(program).check(max_bound=2)
        assert not result.found_bug

    def test_every_thread_allocates(self):
        from repro import Execution

        ex = Execution(filesystem(threads=3, inodes=2, blocks=3)).run_round_robin()
        assert not ex.failed
        busy = [ex.world.find(f"busy[{b}]").value for b in range(3)]
        # Two inodes allocated (threads sharing an inode allocate once).
        assert sum(1 for taken in busy if taken) == 2

    def test_rejects_starvable_configuration(self):
        with pytest.raises(ValueError):
            filesystem(threads=5, inodes=2, blocks=4)


class TestWorkStealQueue:
    EXPECTED = {"pop-race": 2, "steal-stale-tail": 2, "pop-lost-restore": 1}

    def test_correct_variant_certified(self):
        result = ChessChecker(work_steal_queue()).check(
            max_bound=2, limits=SearchLimits(max_seconds=120)
        )
        assert not result.found_bug

    @pytest.mark.parametrize("variant", WSQ_VARIANTS)
    def test_seeded_bug_bounds_match_table2(self, variant):
        bug = ChessChecker(work_steal_queue(variant=variant)).find_bug(max_bound=3)
        assert bug is not None, variant
        assert bug.preemptions == self.EXPECTED[variant], variant

    def test_variant_names_validated(self):
        with pytest.raises(ValueError):
            work_steal_queue(variant="nonsense")

    def test_conservation_message_names_duplicate(self):
        bug = ChessChecker(work_steal_queue(variant="pop-race")).find_bug(max_bound=2)
        assert "conservation violated" in bug.message


class TestApe:
    EXPECTED = {
        "init-race": 0,
        "early-return": 0,
        "stats-race": 1,
        "double-take": 2,
    }

    @pytest.mark.parametrize("variant", APE_VARIANTS)
    def test_seeded_bug_bounds_match_table2(self, variant):
        bug = ChessChecker(ape(variant=variant)).find_bug(
            max_bound=3, limits=SearchLimits(max_seconds=180)
        )
        assert bug is not None, variant
        assert bug.preemptions == self.EXPECTED[variant], variant

    def test_correct_variant_certified_bound_one(self):
        result = ChessChecker(ape()).check(
            max_bound=1, limits=SearchLimits(max_seconds=180)
        )
        assert not result.found_bug

    def test_rejects_undersized_pool(self):
        with pytest.raises(ValueError):
            ape(buffers=1, workers=2)


class TestDryad:
    EXPECTED = {
        "missing-handler": 0,
        "use-after-free": 1,
        "refcount-race": 1,
        "close-sem-race": 1,
        "double-free": 1,
    }
    KINDS = {
        "use-after-free": BugKind.USE_AFTER_FREE,
        "double-free": BugKind.DOUBLE_FREE,
    }

    @pytest.mark.parametrize("variant", DRYAD_VARIANTS)
    def test_seeded_bug_bounds_match_table2(self, variant):
        program = dryad_channels(variant=variant, workers=2, data_items=1)
        bug = ChessChecker(program).find_bug(
            max_bound=2, limits=SearchLimits(max_seconds=300)
        )
        assert bug is not None, variant
        assert bug.preemptions == self.EXPECTED[variant], variant
        if variant in self.KINDS:
            assert bug.kind is self.KINDS[variant]

    def test_figure3_trace_has_nonpreempting_switches(self):
        """The paper: 1 preempting + several nonpreempting switches."""
        program = dryad_channels(variant="use-after-free", workers=2, data_items=1)
        checker = ChessChecker(program)
        bug = checker.find_bug(max_bound=1)
        execution = checker.replay(bug)
        switches = sum(
            1
            for a, b in zip(bug.schedule, bug.schedule[1:])
            if a != b
        )
        preempting = sum(1 for r in execution.step_records if r.preempting)
        assert preempting == 1
        assert switches - preempting >= 3  # several free switches

    def test_correct_variant_certified_bound_one(self):
        program = dryad_channels(workers=2, data_items=1)
        result = ChessChecker(program).check(
            max_bound=1, limits=SearchLimits(max_seconds=300)
        )
        assert not result.found_bug


class TestTransactionManager:
    EXPECTED = {"stale-commit": 2, "stale-delete": 2, "flush-committed": 3}

    @pytest.mark.parametrize("variant", TM_VARIANTS)
    def test_seeded_bug_bounds_match_table2(self, variant):
        bug = ZingChecker(transaction_manager(variant)).find_bug(max_bound=4)
        assert bug is not None, variant
        assert bug.preemptions == self.EXPECTED[variant], variant

    def test_correct_variant_exhaustively_clean(self):
        result = ZingChecker(transaction_manager()).check()
        assert result.completed and not result.found_bug

    def test_witness_replayable_on_model(self):
        from repro.zing import ZingStateSpace

        bug = ZingChecker(transaction_manager("stale-commit")).find_bug(max_bound=2)
        space = ZingStateSpace(transaction_manager("stale-commit"))
        state = space.initial_state()
        for tid in bug.schedule:
            state = space.execute(state, tid)
        assert any(b.kind is BugKind.ASSERTION for b in space.bugs(state))

    def test_heap_symmetry_collapses_txn_ids(self):
        """Two orders of create produce states identified by symmetry."""
        from repro.zing.symmetry import Ref, canonicalize

        a = {"table": {"s0": {"id": Ref(0), "state": "active"}}}
        b = {"table": {"s0": {"id": Ref(5), "state": "active"}}}
        assert canonicalize(a) == canonicalize(b)
