"""Event-stream correctness: ordering, pairing, round-trip, validation."""

from __future__ import annotations

import pytest

from repro import ChessChecker
from repro.obs import (
    EVENT_TYPES,
    EventBus,
    Instrumentation,
    ObsFormatError,
    Sink,
    event_from_dict,
)
from repro.programs import toy


class Recorder(Sink):
    """Collects every emitted event, in order."""

    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


def instrumented_check(program, **kwargs):
    obs = Instrumentation()
    recorder = obs.bus.subscribe(Recorder())
    result = ChessChecker(program).check(obs=obs, **kwargs)
    return result, recorder.events


class TestEventOrdering:
    def test_search_events_bracket_the_stream(self):
        result, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        assert events[0].kind == "search_started"
        assert events[-1].kind == "search_finished"
        assert sum(1 for e in events if e.kind == "search_started") == 1
        assert sum(1 for e in events if e.kind == "search_finished") == 1

    def test_timestamps_are_monotone(self):
        _, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        times = [e.t for e in events]
        assert times == sorted(times)
        assert times[0] >= 0.0

    def test_execution_start_finish_pairing(self):
        _, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        open_index = None
        finished = []
        for event in events:
            if event.kind == "execution_started":
                assert open_index is None, "nested execution_started"
                open_index = event.index
            elif event.kind == "execution_finished":
                assert open_index == event.index, "finish without matching start"
                finished.append(event.index)
                open_index = None
        assert open_index is None
        assert finished == sorted(finished)
        assert finished == list(range(1, len(finished) + 1))

    def test_bounds_start_and_complete_in_order(self):
        result, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        started = [e.bound for e in events if e.kind == "bound_started"]
        completed = [e.bound for e in events if e.kind == "bound_completed"]
        assert started == [0, 1, 2]
        assert completed == [0, 1, 2]
        final = [e for e in events if e.kind == "bound_completed"][-1]
        assert final.executions == result.executions

    def test_final_totals_match_result(self):
        result, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        fin = events[-1]
        assert fin.executions == result.executions
        assert fin.transitions == result.transitions
        assert fin.states == result.distinct_states
        assert fin.bugs == len(result.bugs)

    def test_state_visited_counts_are_increasing(self):
        result, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        visited = [e.states for e in events if e.kind == "state_visited"]
        assert visited == sorted(visited)
        # One discovery event per distinct state (revisits stay silent).
        assert len(visited) == result.distinct_states

    def test_bug_found_is_a_milestone_not_a_tally(self):
        result, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        assert result.found_bug
        new_bugs = [e for e in events if e.kind == "bug_found" and e.new]
        assert len(new_bugs) == len(result.bugs)
        # Improved witnesses may re-emit with new=False, never more
        # than once per (signature, preemption level); with bound 2
        # that is a handful, not one per re-encounter.
        all_bugs = [e for e in events if e.kind == "bug_found"]
        assert len(all_bugs) <= len(result.bugs) * 3


class TestNoOpFastPath:
    def test_bus_without_sinks_is_inactive(self):
        assert EventBus().active is False

    def test_metrics_flow_without_any_sink(self):
        obs = Instrumentation()
        assert obs.bus.active is False
        result = ChessChecker(toy.atomic_counter_assert()).check(max_bound=1, obs=obs)
        snap = obs.snapshot()
        assert snap.executions == result.executions
        assert snap.transitions == result.transitions

    def test_uninstrumented_check_still_works(self):
        result = ChessChecker(toy.atomic_counter_assert()).check(max_bound=1)
        assert result.found_bug


class TestWireFormat:
    def test_round_trip_every_emitted_event(self):
        _, events = instrumented_check(toy.atomic_counter_assert(), max_bound=2)
        kinds = {e.kind for e in events}
        assert "search_started" in kinds and "bug_found" in kinds
        for event in events:
            data = event.to_dict()
            rebuilt = event_from_dict(data)
            assert type(rebuilt) is type(event)
            assert rebuilt.to_dict() == data

    def test_every_registered_kind_has_matching_tag(self):
        for tag, cls in EVENT_TYPES.items():
            assert cls.kind == tag

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsFormatError, match="unknown event kind"):
            event_from_dict({"e": "no_such_event", "t": 0.0})

    def test_missing_key_rejected(self):
        with pytest.raises(ObsFormatError, match="missing key"):
            event_from_dict({"e": "bound_started", "t": 0.0, "bound": 1})

    def test_extra_key_rejected(self):
        with pytest.raises(ObsFormatError, match="unexpected key"):
            event_from_dict(
                {"e": "bound_started", "t": 0.0, "bound": 1, "frontier": 2, "x": 3}
            )

    def test_wrong_type_rejected(self):
        with pytest.raises(ObsFormatError, match="'bound' must be int"):
            event_from_dict(
                {"e": "bound_started", "t": 0.0, "bound": "zero", "frontier": 2}
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(ObsFormatError, match="must be int"):
            event_from_dict(
                {"e": "bound_started", "t": 0.0, "bound": True, "frontier": 2}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ObsFormatError, match="must be an object"):
            event_from_dict([1, 2, 3])


class TestNewSubsystemEvents:
    """Events added with repro.invivo and fleet push-on-complete."""

    def test_invivo_run_round_trips(self):
        from repro.obs.events import InvivoRun

        event = InvivoRun(
            t=1.5, program="p", threads=4, handshakes=9, abandoned=1
        )
        data = event.to_dict()
        rebuilt = event_from_dict(data)
        assert type(rebuilt) is InvivoRun and rebuilt.to_dict() == data

    def test_cache_push_sent_round_trips(self):
        from repro.obs.events import CachePushSent

        event = CachePushSent(t=0.25, key="ab" * 32, peer="http://x:1")
        data = event.to_dict()
        rebuilt = event_from_dict(data)
        assert type(rebuilt) is CachePushSent and rebuilt.to_dict() == data

    def test_invivo_check_emits_one_run_event(self):
        from repro.invivo import InvivoProgram, Shared

        def setup():
            data = Shared(0, name="d")

            def bump():
                data.set(data.get() + 1)

            return {"a": bump, "b": bump}

        _, events = instrumented_check(
            InvivoProgram("racy-bump", setup), max_bound=1
        )
        runs = [e for e in events if e.kind == "invivo_run"]
        assert len(runs) == 1
        assert runs[0].program == "racy-bump"
        assert runs[0].threads > 0 and runs[0].handshakes > 0
