"""Sink behavior: JSONL round-trip and validation, live progress
rendering, final report, event-log summaries."""

from __future__ import annotations

import io
import json

import pytest

from repro import ChessChecker
from repro.obs import (
    FinalReportSink,
    Instrumentation,
    JsonlEventSink,
    LiveProgressSink,
    ObsFormatError,
    Sink,
    render_event_summary,
    validate_event_log,
)
from repro.obs.events import BoundStarted, ExecutionFinished, SearchFinished
from repro.obs.sinks import EVENTS_FORMAT, EVENTS_VERSION
from repro.programs import toy


class Recorder(Sink):
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


def write_log(tmp_path, **kwargs):
    """Run an instrumented check with both a recorder and a JSONL sink."""
    obs = Instrumentation()
    recorder = obs.bus.subscribe(Recorder())
    path = tmp_path / "run.events.jsonl"
    sink = obs.bus.subscribe(JsonlEventSink(path))
    ChessChecker(toy.atomic_counter_assert()).check(max_bound=1, obs=obs)
    obs.close()
    return path, sink, recorder.events


class TestJsonlRoundTrip:
    def test_golden_round_trip(self, tmp_path):
        path, sink, emitted = write_log(tmp_path)
        loaded = validate_event_log(path)
        assert sink.events_written == len(emitted)
        assert len(loaded) == len(emitted)
        for original, rebuilt in zip(emitted, loaded):
            assert rebuilt.to_dict() == original.to_dict()

    def test_header_is_versioned(self, tmp_path):
        path, _, _ = write_log(tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": EVENTS_FORMAT, "version": EVENTS_VERSION}

    def test_include_filter(self, tmp_path):
        obs = Instrumentation()
        path = tmp_path / "filtered.jsonl"
        obs.bus.subscribe(JsonlEventSink(path, include=["bound_completed"]))
        ChessChecker(toy.atomic_counter_assert()).check(max_bound=1, obs=obs)
        obs.close()
        loaded = validate_event_log(path)
        assert loaded and all(e.kind == "bound_completed" for e in loaded)

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()
        sink.handle(BoundStarted(0.0, 0, 1))  # after close: silently dropped
        assert sink.events_written == 0


class TestValidation:
    def test_corrupted_line_names_file_and_line(self, tmp_path):
        path, _, _ = write_log(tmp_path)
        lines = path.read_text().splitlines()
        lines[3] = '{"e": "bound_started", "t": 0.0}'  # missing fields
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFormatError, match=rf"{path.name}:4: missing key"):
            validate_event_log(path)

    def test_non_json_line(self, tmp_path):
        path, _, _ = write_log(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFormatError, match="not JSON"):
            validate_event_log(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(ObsFormatError, match="not a repro-events log"):
            validate_event_log(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": EVENTS_FORMAT, "version": EVENTS_VERSION + 1}) + "\n"
        )
        with pytest.raises(ObsFormatError, match="unsupported event-log version"):
            validate_event_log(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObsFormatError, match="empty event log"):
            validate_event_log(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ObsFormatError, match="cannot read"):
            validate_event_log(tmp_path / "does-not-exist.jsonl")

    def test_blank_lines_tolerated(self, tmp_path):
        path, _, emitted = write_log(tmp_path)
        path.write_text(path.read_text() + "\n\n")
        assert len(validate_event_log(path)) == len(emitted)


class TestLiveProgress:
    def test_non_tty_prints_lines(self):
        stream = io.StringIO()
        sink = LiveProgressSink(stream=stream, interval=0.0)
        sink.handle(BoundStarted(0.1, 2, 10))
        sink.handle(ExecutionFinished(0.2, 50, 30))
        sink.handle(SearchFinished(0.3, "icb", True, "exhausted", 50, 400, 30, 0))
        sink.close()
        out = stream.getvalue()
        assert "bound 2" in out
        assert "50 exec" in out
        assert "30 states" in out

    def test_eta_from_execution_budget(self):
        from repro.search.strategy import SearchLimits

        stream = io.StringIO()
        sink = LiveProgressSink(
            stream=stream, interval=0.0, limits=SearchLimits(max_executions=100)
        )
        sink.handle(ExecutionFinished(2.0, 50, 30))
        assert "ETA" in stream.getvalue()

    def test_throttling(self):
        stream = io.StringIO()
        sink = LiveProgressSink(stream=stream, interval=3600.0)
        sink.handle(ExecutionFinished(0.1, 1, 1))
        first = stream.getvalue()
        sink.handle(ExecutionFinished(0.2, 2, 2))
        assert stream.getvalue() == first  # second refresh suppressed
        # ...but the final render always happens.
        sink.handle(SearchFinished(0.3, "icb", True, "done", 2, 4, 2, 0))
        assert stream.getvalue() != first


class TestFinalReport:
    def test_curve_and_totals(self):
        stream = io.StringIO()
        sink = FinalReportSink(stream=stream, width=40, height=8)
        for i in range(1, 20):
            sink.handle(ExecutionFinished(i / 10, i, i * 2))
        sink.handle(SearchFinished(2.0, "icb", True, "exhausted", 19, 100, 38, 1))
        sink.close()
        out = stream.getvalue()
        assert "coverage: distinct states vs executions" in out
        assert "icb: 19 executions, 100 transitions, 38 states, 1 bug(s)" in out

    def test_empty_stream(self):
        stream = io.StringIO()
        sink = FinalReportSink(stream=stream)
        sink.close()
        assert "no executions observed" in stream.getvalue()

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        sink = FinalReportSink(stream=stream)
        sink.close()
        sink.close()
        assert stream.getvalue().count("no executions observed") == 1


class TestEventSummary:
    def test_summary_of_real_run(self, tmp_path):
        path, _, _ = write_log(tmp_path)
        text = render_event_summary(validate_event_log(path))
        assert "events" in text
        assert "execution_finished:" in text
        assert "bound 1 completed" in text
        assert "coverage: distinct states vs executions" in text
