"""Bounded coverage history: decimation bound, final-point retention,
and the ``SearchContext.history`` back-compat surface."""

from __future__ import annotations

import pytest

from repro import ChessChecker
from repro.obs import CoverageRecorder
from repro.programs import toy
from repro.search.strategy import SearchContext


class TestCoverageRecorder:
    def test_small_series_kept_verbatim(self):
        rec = CoverageRecorder(max_samples=100)
        for i in range(1, 11):
            rec.record(i, i * 2)
        assert rec.samples() == [(i, i * 2) for i in range(1, 11)]
        assert rec.stride == 1

    def test_memory_bound_holds_for_long_runs(self):
        rec = CoverageRecorder(max_samples=64)
        for i in range(1, 100_001):
            rec.record(i, i)
        assert len(rec) <= 64
        assert rec.stride > 1

    def test_final_point_always_retained(self):
        rec = CoverageRecorder(max_samples=16)
        for i in range(1, 1001):
            rec.record(i, i + 7)
        assert rec.samples()[-1] == (1000, 1007)

    def test_series_stays_sorted_after_decimation(self):
        rec = CoverageRecorder(max_samples=32)
        for i in range(1, 5000):
            rec.record(i, i)
        xs = [x for x, _ in rec.samples()]
        assert xs == sorted(xs)

    def test_decimated_points_stay_on_grid(self):
        rec = CoverageRecorder(max_samples=32)
        for i in range(1, 10_000):
            rec.record(i, i)
        on_grid = rec.samples()[:-1]  # last point may be the pending one
        assert all(x % rec.stride == 0 for x, _ in on_grid)

    def test_replace_installs_series_verbatim(self):
        rec = CoverageRecorder(max_samples=16)
        rec.replace([(1, 1), (5, 3)])
        assert rec.samples() == [(1, 1), (5, 3)]

    def test_extend_raw_bounds_merged_series(self):
        rec = CoverageRecorder(max_samples=16)
        rec.extend_raw((i, i) for i in range(1, 1000))
        assert len(rec) <= 16

    def test_too_small_bound_rejected(self):
        with pytest.raises(ValueError):
            CoverageRecorder(max_samples=1)


class TestContextHistory:
    def test_history_records_coverage_series(self):
        result = ChessChecker(toy.atomic_counter_assert()).check(max_bound=1)
        history = result.search.context.history
        assert history
        assert history[-1][0] == result.executions
        assert history[-1][1] == result.distinct_states

    def test_history_setter_back_compat(self):
        ctx = SearchContext()
        ctx.history = [(1, 1), (2, 2)]
        assert ctx.history == [(1, 1), (2, 2)]
        ctx.history = ctx.history + [(3, 3)]
        assert ctx.history[-1] == (3, 3)

    def test_context_history_is_bounded(self):
        ctx = SearchContext(history_samples=32)
        for i in range(1, 10_000):
            ctx.history_recorder.record(i, i)
        assert len(ctx.history) <= 32
