"""Metrics correctness: exact counter parity with ``SearchContext``,
merge algebra (associativity, grouping-independence), serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChessChecker
from repro.errors import ReproError
from repro.obs import Histogram, Instrumentation, MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import METRICS_VERSION, ObsFormatError
from repro.programs import toy
from repro.programs.bluetooth import bluetooth

# Dyadic rationals: exactly representable in binary floating point, so
# sums are associative and snapshot equality is exact, not approximate.
dyadic = st.integers(min_value=0, max_value=4096).map(lambda k: k / 1024)

counter_maps = st.dictionaries(
    st.sampled_from(["executions", "transitions", "distinct_states", "race_checks"]),
    st.integers(min_value=0, max_value=10**6),
    max_size=4,
)
gauge_maps = st.dictionaries(
    st.sampled_from(["current_bound", "completed_bound"]), dyadic, max_size=2
)
bound_maps = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=10**4),
    max_size=4,
)
profile_maps = st.dictionaries(
    st.sampled_from(["schedule", "execute", "fingerprint"]),
    st.fixed_dictionaries(
        {"seconds": dyadic, "calls": st.integers(min_value=0, max_value=10**5)}
    ),
    max_size=3,
)


@st.composite
def histograms(draw):
    hist = Histogram()
    for value in draw(st.lists(dyadic, max_size=8)):
        hist.record(value)
    return hist.to_dict()


@st.composite
def snapshots(draw):
    return MetricsSnapshot(
        counters=draw(counter_maps),
        gauges=draw(gauge_maps),
        executions_by_bound=draw(bound_maps),
        states_by_bound=draw(bound_maps),
        histograms=draw(
            st.dictionaries(
                st.sampled_from(["execute_latency", "race_check_latency"]),
                histograms(),
                max_size=2,
            )
        ),
        profile=draw(profile_maps),
        elapsed=draw(dyadic),
    )


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots(), snapshots())
    def test_merge_is_associative(self, a, b, c):
        left = MetricsSnapshot.merge([MetricsSnapshot.merge([a, b]), c])
        right = MetricsSnapshot.merge([a, MetricsSnapshot.merge([b, c])])
        flat = MetricsSnapshot.merge([a, b, c])
        assert left.to_dict() == flat.to_dict()
        assert right.to_dict() == flat.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots())
    def test_merge_is_commutative(self, a, b):
        assert (
            MetricsSnapshot.merge([a, b]).to_dict()
            == MetricsSnapshot.merge([b, a]).to_dict()
        )

    @settings(max_examples=25, deadline=None)
    @given(snapshots())
    def test_merge_of_one_preserves_totals(self, a):
        merged = MetricsSnapshot.merge([a])
        assert merged.counters == a.counters
        assert merged.executions_by_bound == a.executions_by_bound
        assert merged.states_by_bound == a.states_by_bound
        assert merged.elapsed == a.elapsed

    def test_merge_of_none_rejected(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.merge([])

    @settings(max_examples=25, deadline=None)
    @given(snapshots(), snapshots())
    def test_counters_sum_and_gauges_max(self, a, b):
        merged = MetricsSnapshot.merge([a, b])
        for key in set(a.counters) | set(b.counters):
            assert merged.counters[key] == a.counters.get(key, 0) + b.counters.get(
                key, 0
            )
        for key in set(a.gauges) | set(b.gauges):
            present = [g[key] for g in (a.gauges, b.gauges) if key in g]
            assert merged.gauges[key] == max(present)


class TestContextParity:
    """The acceptance criterion: snapshot counters must equal the
    ``SearchContext`` exactly, including the per-bound state buckets."""

    def assert_parity(self, program, **kwargs):
        obs = Instrumentation()
        result = ChessChecker(program).check(obs=obs, **kwargs)
        ctx = result.search.context
        snap = obs.snapshot()
        assert snap.executions == ctx.executions
        assert snap.transitions == ctx.transitions
        assert snap.distinct_states == len(ctx.states)
        assert snap.states_by_bound == ctx.states_by_bound()
        assert sum(snap.executions_by_bound.values()) == ctx.executions
        assert snap.counters.get("bugs_found", 0) == len(ctx.bugs)
        return snap

    def test_toy_counter(self):
        self.assert_parity(toy.atomic_counter_assert(), max_bound=2)

    def test_bluetooth(self):
        snap = self.assert_parity(bluetooth(buggy=True), max_bound=1)
        # Rebucketing exercised: states first seen at bound 1 that are
        # later reached preemption-free must land in bucket 0 only.
        assert set(snap.states_by_bound) == {0, 1}

    def test_dfs_strategy(self):
        from repro.search.dfs import DepthFirstSearch

        obs = Instrumentation()
        result = ChessChecker(toy.atomic_counter_assert()).check(
            strategy=DepthFirstSearch(), obs=obs
        )
        snap = obs.snapshot()
        assert snap.executions == result.executions
        assert snap.transitions == result.transitions


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        obs = Instrumentation(profiling=True)
        ChessChecker(toy.atomic_counter_assert()).check(max_bound=1, obs=obs)
        snap = obs.snapshot()
        path = snap.save(tmp_path / "metrics.json")
        loaded = MetricsSnapshot.load(path)
        assert loaded.to_dict() == snap.to_dict()

    def test_version_guard(self, tmp_path):
        data = MetricsSnapshot().to_dict()
        data["version"] = METRICS_VERSION + 1
        with pytest.raises(ObsFormatError, match="unsupported metrics version"):
            MetricsSnapshot.from_dict(data)

    def test_format_guard(self):
        with pytest.raises(ObsFormatError, match="not a repro-metrics"):
            MetricsSnapshot.from_dict({"format": "something-else"})

    def test_malformed_document(self):
        data = MetricsSnapshot().to_dict()
        del data["counters"]
        with pytest.raises(ObsFormatError, match="malformed metrics"):
            MetricsSnapshot.from_dict(data)

    def test_unreadable_file(self, tmp_path):
        bad = tmp_path / "not-json.json"
        bad.write_text("{")
        with pytest.raises(ObsFormatError, match="cannot read"):
            MetricsSnapshot.load(bad)

    def test_summary_mentions_headline_numbers(self):
        snap = MetricsSnapshot(
            counters={"executions": 7, "transitions": 42, "distinct_states": 5},
            executions_by_bound={0: 3, 1: 4},
            states_by_bound={0: 5},
            elapsed=1.0,
        )
        text = snap.summary()
        assert "executions: 7" in text
        assert "distinct states: 5" in text
        assert "per-bound breakdown" in text


class TestHistogram:
    def test_buckets_and_stats(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 3.0):
            hist.record(value)
        assert hist.counts == [1, 1, 2]
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(1.0) == 3.0

    def test_absorb_requires_matching_bounds(self):
        with pytest.raises(ReproError):
            Histogram(bounds=(1.0,)).absorb(Histogram(bounds=(2.0,)))

    def test_empty_histogram_round_trip(self):
        hist = Histogram(bounds=(1.0,))
        rebuilt = Histogram.from_dict(hist.to_dict())
        assert rebuilt.count == 0
        assert rebuilt.quantile(0.5) == 0.0


class TestRegistry:
    def test_reconcile_overwrites_state_counts(self):
        registry = MetricsRegistry()
        registry.add("distinct_states", 100)
        registry.states_by_bound = {0: 60, 1: 40}
        registry.reconcile_states({0: 30, 1: 20}, bugs=2)
        snap = registry.snapshot()
        assert snap.distinct_states == 50
        assert snap.states_by_bound == {0: 30, 1: 20}
        assert snap.counters["bugs_found"] == 2

    def test_absorb_sums_worker_snapshot(self):
        registry = MetricsRegistry()
        registry.add("executions", 10)
        registry.absorb(
            MetricsSnapshot(
                counters={"executions": 5}, executions_by_bound={1: 5}, elapsed=0.5
            )
        )
        snap = registry.snapshot()
        assert snap.executions == 15
        assert snap.executions_by_bound == {1: 5}
