"""CLI integration: ``check --metrics-out/--events-out`` artifacts and
the ``repro stats`` reader agreeing with ``CheckResult.summary()``."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs import MetricsSnapshot, validate_event_log


def run_check(capsys, tmp_path, *extra):
    path = tmp_path / "metrics.json"
    code = main(
        ["check", "toy:atomic-counter", "--bound", "1", "--metrics-out", str(path)]
        + list(extra)
    )
    out = capsys.readouterr().out
    match = re.search(r"icb: (\d+) executions, (\d+) states, (\d+) bug\(s\)", out)
    assert match, out
    return code, path, tuple(int(g) for g in match.groups())


class TestMetricsOut:
    def test_stats_agrees_with_check_summary(self, capsys, tmp_path):
        code, path, (executions, states, bugs) = run_check(capsys, tmp_path)
        assert code == 1  # atomic-counter has a bug
        assert main(["stats", str(path)]) == 0
        stats = capsys.readouterr().out
        assert f"executions: {executions}" in stats
        assert f"distinct states: {states}" in stats
        assert f"bugs: {bugs}" in stats

    def test_snapshot_counters_match_check_summary(self, capsys, tmp_path):
        _, path, (executions, states, bugs) = run_check(capsys, tmp_path)
        snap = MetricsSnapshot.load(path)
        assert snap.executions == executions
        assert snap.distinct_states == states
        assert snap.counters.get("bugs_found", 0) == bugs
        assert sum(snap.executions_by_bound.values()) == executions
        assert sum(snap.states_by_bound.values()) == states

    def test_clean_program_writes_metrics_too(self, capsys, tmp_path):
        path = tmp_path / "clean.json"
        code = main(
            ["check", "toy:dekker", "--bound", "1", "--metrics-out", str(path)]
        )
        assert code == 0
        snap = MetricsSnapshot.load(path)
        assert snap.executions > 0
        assert snap.counters.get("bugs_found", 0) == 0


class TestEventsOut:
    def test_events_log_written_and_readable(self, capsys, tmp_path):
        log = tmp_path / "run.events.jsonl"
        main(["check", "toy:atomic-counter", "--bound", "1", "--events-out", str(log)])
        capsys.readouterr()
        events = validate_event_log(log)
        assert events[0].kind == "search_started"
        assert events[-1].kind == "search_finished"

    def test_stats_renders_event_summary(self, capsys, tmp_path):
        log = tmp_path / "run.events.jsonl"
        main(["check", "toy:atomic-counter", "--bound", "1", "--events-out", str(log)])
        capsys.readouterr()
        assert main(["stats", str(log)]) == 0
        out = capsys.readouterr().out
        assert "search_finished: 1" in out
        assert "coverage: distinct states vs executions" in out


class TestProgressAndProfile:
    def test_progress_writes_to_stderr(self, capsys):
        main(["check", "toy:atomic-counter", "--bound", "1", "--progress"])
        err = capsys.readouterr().err
        assert "exec" in err and "states" in err

    def test_no_progress_is_default(self, capsys):
        main(["check", "toy:atomic-counter", "--bound", "1"])
        assert capsys.readouterr().err == ""

    def test_profile_prints_phase_table(self, capsys):
        main(["check", "toy:atomic-counter", "--bound", "1", "--profile"])
        err = capsys.readouterr().err
        for phase in ("schedule", "execute", "fingerprint"):
            assert phase in err

    def test_progress_interval_requires_workers(self):
        with pytest.raises(SystemExit, match="requires --workers"):
            main(["check", "toy:atomic-counter", "--progress-interval", "10"])

    def test_progress_interval_must_be_positive(self):
        with pytest.raises(SystemExit, match="at least 1"):
            main(
                ["check", "toy:atomic-counter", "--workers", "2",
                 "--progress-interval", "0"]
            )


class TestStatsErrors:
    def test_unknown_file_kind(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SystemExit):
            main(["stats", str(path)])

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "nope.json")])
