"""Parallel observability: merged worker snapshots must reproduce the
serial run's totals exactly, and coordinator events must stream."""

from __future__ import annotations

from repro import ChessChecker
from repro.obs import Instrumentation, Sink
from repro.parallel.coordinator import ParallelSettings
from repro.programs.bluetooth import bluetooth
from repro.search.strategy import SearchContext


class Recorder(Sink):
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


class TestParallelMetricsParity:
    def test_merged_worker_totals_equal_serial(self):
        serial_obs = Instrumentation()
        serial = ChessChecker(bluetooth(buggy=True)).check(max_bound=1, obs=serial_obs)
        parallel_obs = Instrumentation()
        parallel = ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1, workers=2, obs=parallel_obs
        )
        assert parallel.executions == serial.executions
        s, p = serial_obs.snapshot(), parallel_obs.snapshot()
        assert p.executions == s.executions
        assert p.transitions == s.transitions
        assert p.distinct_states == s.distinct_states
        assert p.states_by_bound == s.states_by_bound
        assert p.executions_by_bound == s.executions_by_bound
        assert p.counters.get("bugs_found") == s.counters.get("bugs_found")

    def test_parallel_snapshot_matches_merged_context(self):
        obs = Instrumentation()
        result = ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1, workers=2, obs=obs
        )
        ctx = result.search.context
        snap = obs.snapshot()
        assert snap.executions == ctx.executions
        assert snap.transitions == ctx.transitions
        assert snap.distinct_states == len(ctx.states)
        assert snap.states_by_bound == ctx.states_by_bound()
        assert snap.counters.get("bugs_found", 0) == len(ctx.bugs)


class TestCoordinatorEvents:
    def test_lifecycle_and_heartbeats_stream(self):
        obs = Instrumentation()
        recorder = obs.bus.subscribe(Recorder())
        ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1,
            workers=2,
            obs=obs,
            parallel_settings=ParallelSettings(progress_interval=16),
        )
        kinds = [e.kind for e in recorder.events]
        assert kinds[0] == "search_started"
        assert kinds[-1] == "search_finished"
        assert [e.bound for e in recorder.events if e.kind == "bound_started"] == [0, 1]
        assert [e.bound for e in recorder.events if e.kind == "bound_completed"] == [0, 1]
        assert "worker_heartbeat" in kinds

    def test_heartbeat_totals_are_cumulative_per_worker(self):
        obs = Instrumentation()
        recorder = obs.bus.subscribe(Recorder())
        ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1,
            workers=2,
            obs=obs,
            parallel_settings=ParallelSettings(progress_interval=16),
        )
        per_worker = {}
        for event in recorder.events:
            if event.kind != "worker_heartbeat":
                continue
            last = per_worker.get(event.worker, (0, 0))
            assert event.executions >= last[0]
            assert event.transitions >= last[1]
            per_worker[event.worker] = (event.executions, event.transitions)
        assert per_worker  # at least one worker reported


class TestPicklingBoundary:
    def test_context_sheds_instrumentation_when_pickled(self):
        import pickle

        ctx = SearchContext(obs=Instrumentation())
        assert ctx.obs is not None
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.obs is None
