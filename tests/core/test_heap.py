"""Heap lifetime checking: use-after-free, double-free, guards."""

from __future__ import annotations

from repro import BugKind, Execution, ExecutionConfig, Program, alloc


def run(setup, **config_kwargs):
    config = ExecutionConfig(**config_kwargs) if config_kwargs else None
    return Execution(Program("p", setup), config).run_round_robin()


class TestHeapBasics:
    def test_setup_allocation_and_field_access(self):
        seen = []

        def setup(w):
            obj = w.alloc("node", value=7, next=None)

            def t():
                seen.append((yield obj.read("value")))
                yield obj.write("value", 8)
                seen.append((yield obj.read("value")))

            return {"t": t}

        ex = run(setup)
        assert not ex.failed
        assert seen == [7, 8]

    def test_runtime_allocation(self):
        seen = []

        def setup(w):
            def t():
                ref = yield alloc("node", value=1)
                seen.append((yield ref.read("value")))

            return {"t": t}

        run(setup)
        assert seen == [1]

    def test_runtime_allocations_get_unique_names(self):
        def setup(w):
            def t():
                yield alloc("node", value=1)
                yield alloc("node", value=2)

            return {"t1": t, "t2": t}

        ex = run(setup)
        assert not ex.failed

    def test_unknown_field_is_reported(self):
        def setup(w):
            obj = w.alloc("node", value=1)

            def t():
                yield obj.read("missing")

            return {"t": t}

        ex = run(setup)
        assert ex.failed
        assert ex.bugs[0].kind is BugKind.INVARIANT


class TestUseAfterFree:
    def test_read_after_free(self):
        def setup(w):
            obj = w.alloc("node", value=1)

            def t():
                yield obj.free()
                yield obj.read("value")

            return {"t": t}

        ex = run(setup)
        assert ex.bugs[0].kind is BugKind.USE_AFTER_FREE

    def test_write_after_free(self):
        def setup(w):
            obj = w.alloc("node", value=1)

            def t():
                yield obj.free()
                yield obj.write("value", 2)

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.USE_AFTER_FREE

    def test_double_free(self):
        def setup(w):
            obj = w.alloc("node", value=1)

            def t():
                yield obj.free()
                yield obj.free()

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.DOUBLE_FREE

    def test_guarded_sync_object_dies_with_owner(self):
        """EnterCriticalSection on a CS inside a freed object (Fig. 3)."""

        def setup(w):
            obj = w.alloc("channel", data=0)
            cs = w.critical_section("m_baseCS", guard=obj)

            def t():
                yield obj.free()
                yield cs.enter()

            return {"t": t}

        ex = run(setup)
        assert ex.bugs[0].kind is BugKind.USE_AFTER_FREE
        assert "m_baseCS" in ex.bugs[0].message

    def test_guarded_object_fine_while_alive(self):
        def setup(w):
            obj = w.alloc("channel", data=0)
            cs = w.critical_section("m_baseCS", guard=obj)

            def t():
                yield cs.enter()
                yield cs.leave()
                yield obj.free()

            return {"t": t}

        assert not run(setup).failed

    def _free_race_setup(self, w):
        obj = w.alloc("node", value=1)
        sync = w.atomic("sync", 0)

        def reader():
            yield sync.add(1)
            yield obj.read("value")

        def freer():
            yield sync.add(1)
            yield obj.free()

        return {"reader": reader, "freer": freer}

    def test_free_conflicts_extension_flags_unordered_free(self):
        """Even when the access happens to execute first, an unordered
        free conflicts with it under the free_conflicts extension."""
        # Round-robin runs the reader fully before the free, so the
        # freed-flag check never fires -- but the accesses are
        # unordered, which the extension reports as a race.
        ex = run(self._free_race_setup, free_conflicts=True)
        assert any(
            b.kind in (BugKind.DATA_RACE, BugKind.USE_AFTER_FREE) for b in ex.bugs
        )

    def test_default_matches_paper_checker(self):
        """By default (as in the paper's CHESS) only schedules where
        the access physically follows the free are flagged."""
        ex = run(self._free_race_setup)
        assert not ex.bugs

    def test_ordered_free_is_not_a_race(self):
        from repro import join, spawn

        def setup(w):
            obj = w.alloc("node", value=1)

            def reader():
                yield obj.read("value")

            def main():
                handle = yield spawn(reader)
                yield join(handle)
                yield obj.free()

            return {"main": main}

        ex = run(setup)
        assert not ex.bugs
