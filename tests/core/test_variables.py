"""Shared variable semantics: data vars, atomic vars, arrays."""

from __future__ import annotations

from repro import BugKind, Execution, ExecutionConfig, Program, RaceDetection
from repro.core.variables import AtomicVar, SharedVar
from repro.core.world import World


def run(setup, **config_kwargs):
    config = ExecutionConfig(**config_kwargs) if config_kwargs else None
    return Execution(Program("p", setup), config).run_round_robin()


class TestSharedVar:
    def test_read_returns_initial_value(self):
        seen = []

        def setup(w):
            v = w.var("v", 41)

            def t():
                seen.append((yield v.read()))

            return {"t": t}

        run(setup)
        assert seen == [41]

    def test_write_then_read(self):
        seen = []

        def setup(w):
            v = w.var("v")

            def t():
                yield v.write("hello")
                seen.append((yield v.read()))

            return {"t": t}

        run(setup)
        assert seen == ["hello"]

    def test_unhashable_value_is_reported(self):
        def setup(w):
            v = w.var("v")

            def t():
                yield v.write([1, 2, 3])

            return {"t": t}

        ex = run(setup)
        assert ex.failed
        assert ex.bugs[0].kind is BugKind.INVARIANT
        assert "unhashable" in ex.bugs[0].message

    def test_is_data_variable(self):
        w = World()
        assert SharedVar(w, "d").is_sync is False
        assert AtomicVar(w, "a").is_sync is True


class TestAtomicVar:
    def test_cas_success_and_failure(self):
        results = []

        def setup(w):
            a = w.atomic("a", 5)

            def t():
                results.append((yield a.cas(5, 6)))
                results.append((yield a.cas(5, 7)))
                results.append((yield a.read()))

            return {"t": t}

        run(setup)
        assert results == [True, False, 6]

    def test_add_returns_new_value(self):
        results = []

        def setup(w):
            a = w.atomic("a", 10)

            def t():
                results.append((yield a.add(5)))
                results.append((yield a.add(-15)))

            return {"t": t}

        run(setup)
        assert results == [15, 0]

    def test_exchange_returns_old_value(self):
        results = []

        def setup(w):
            a = w.atomic("a", "old")

            def t():
                results.append((yield a.exchange("new")))
                results.append((yield a.read()))

            return {"t": t}

        run(setup)
        assert results == ["old", "new"]

    def test_concurrent_atomics_never_race(self):
        def setup(w):
            a = w.atomic("a", 0)

            def t():
                v = yield a.read()
                yield a.write(v + 1)

            return {"t1": t, "t2": t}

        ex = run(setup)
        assert not any(b.kind is BugKind.DATA_RACE for b in ex.bugs)


class TestArrays:
    def test_elements_are_independent_variables(self):
        def setup(w):
            arr = w.array("arr", [0, 0, 0])

            def t(i):
                yield arr[i].write(i * 10)

            return [(f"t{i}", t, (i,)) for i in range(3)]

        ex = run(setup)
        assert not ex.failed
        assert [ex.world.find(f"arr[{i}]").value for i in range(3)] == [0, 10, 20]

    def test_atomic_array(self):
        def setup(w):
            arr = w.array("arr", [0, 0], atomic=True)

            def t():
                yield arr[0].add(1)
                yield arr[1].add(2)

            return {"t1": t, "t2": t}

        ex = run(setup)
        assert ex.world.find("arr[0]").value == 2
        assert ex.world.find("arr[1]").value == 4

    def test_concurrent_distinct_elements_race_free(self):
        def setup(w):
            arr = w.array("arr", [0, 0])

            def t(i):
                v = yield arr[i].read()
                yield arr[i].write(v + 1)

            return [("t0", t, (0,)), ("t1", t, (1,))]

        ex = run(setup)
        assert not any(b.kind is BugKind.DATA_RACE for b in ex.bugs)


class TestRaceReporting:
    def racy_setup(self, w):
        v = w.var("v", 0)

        def t():
            val = yield v.read()
            yield v.write(val + 1)

        return {"t1": t, "t2": t}

    def test_unsynchronized_writes_race(self):
        ex = run(self.racy_setup)
        assert any(b.kind is BugKind.DATA_RACE for b in ex.bugs)

    def test_detection_can_be_disabled(self):
        ex = run(self.racy_setup, race_detection=RaceDetection.NONE)
        assert not ex.bugs

    def test_nonfatal_races_allow_completion(self):
        ex = run(self.racy_setup, races_are_fatal=False)
        assert ex.completed
        assert any(b.kind is BugKind.DATA_RACE for b in ex.bugs)

    def test_read_read_is_no_race_by_default(self):
        def setup(w):
            v = w.var("v", 1)

            def t():
                yield v.read()

            return {"t1": t, "t2": t}

        ex = run(setup)
        assert not ex.bugs

    def test_read_read_races_in_strict_mode(self):
        def setup(w):
            v = w.var("v", 1)

            def t():
                yield v.read()

            return {"t1": t, "t2": t}

        ex = run(setup, strict_races=True)
        assert any(b.kind is BugKind.DATA_RACE for b in ex.bugs)

    def test_parent_to_child_publication_is_ordered(self):
        from repro import spawn, join

        def setup(w):
            v = w.var("v", 0)

            def child():
                yield v.read()

            def main():
                yield v.write(42)
                handle = yield spawn(child)
                yield join(handle)
                yield v.write(0)

            return {"main": main}

        ex = run(setup)
        assert not ex.bugs
