"""Synchronization primitive semantics, exercised through the engine."""

from __future__ import annotations

from repro import BugKind, Execution, ExecutionConfig, Program, check


def run(setup, config=None):
    return Execution(Program("p", setup), config).run_round_robin()


class TestMutex:
    def test_mutual_exclusion_blocks_second_acquirer(self):
        trace = []

        def setup(w):
            lock = w.mutex("lock")
            ev = w.event("ev")

            def first():
                yield lock.acquire()
                trace.append("first-in")
                yield ev.set()
                trace.append("first-out")
                yield lock.release()

            def second():
                yield ev.wait()
                yield lock.acquire()
                trace.append("second-in")
                yield lock.release()

            return {"first": first, "second": second}

        ex = run(setup)
        assert not ex.failed
        assert trace == ["first-in", "first-out", "second-in"]

    def test_release_without_holding_is_lock_error(self):
        def setup(w):
            lock = w.mutex("lock")

            def t():
                yield lock.release()

            return {"t": t}

        ex = run(setup)
        assert ex.bugs[0].kind is BugKind.LOCK_ERROR

    def test_release_of_foreign_lock_is_lock_error(self):
        def setup(w):
            lock = w.mutex("lock")
            ev = w.event("ev")

            def owner():
                yield lock.acquire()
                yield ev.set()

            def intruder():
                yield ev.wait()
                yield lock.release()

            return {"owner": owner, "intruder": intruder}

        ex = run(setup)
        assert ex.bugs[0].kind is BugKind.LOCK_ERROR

    def test_try_acquire_never_blocks(self):
        results = []

        def setup(w):
            lock = w.mutex("lock")
            ev = w.event("ev")

            def holder():
                yield lock.acquire()
                yield ev.set()

            def prober():
                yield ev.wait()
                got = yield lock.try_acquire()
                results.append(got)

            return {"holder": holder, "prober": prober}

        ex = run(setup)
        assert not ex.failed
        assert results == [False]

    def test_self_acquire_deadlocks(self):
        def setup(w):
            lock = w.mutex("lock")

            def t():
                yield lock.acquire()
                yield lock.acquire()

            return {"t": t}

        ex = run(setup)
        assert ex.deadlocked
        assert ex.bugs[0].kind is BugKind.DEADLOCK


class TestCriticalSection:
    def test_reentrant_entry_succeeds(self):
        def setup(w):
            cs = w.critical_section("cs")

            def t():
                yield cs.enter()
                yield cs.enter()
                yield cs.leave()
                yield cs.leave()

            return {"t": t}

        ex = run(setup)
        assert ex.completed and not ex.failed
        assert ex.world.find("cs").holder is None

    def test_leave_by_non_owner_is_lock_error(self):
        def setup(w):
            cs = w.critical_section("cs")

            def t():
                yield cs.leave()

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.LOCK_ERROR

    def test_try_enter_respects_owner(self):
        results = []

        def setup(w):
            cs = w.critical_section("cs")
            ev = w.event("ev")

            def owner():
                yield cs.enter()
                got = yield cs.try_enter()  # re-entrant: succeeds
                results.append(got)
                yield ev.set()

            def other():
                yield ev.wait()
                got = yield cs.try_enter()
                results.append(got)

            return {"owner": owner, "other": other}

        run(setup)
        assert results == [True, False]


class TestEvent:
    def test_manual_reset_stays_signalled(self):
        def setup(w):
            ev = w.event("ev")
            hits = w.atomic("hits", 0)

            def setter():
                yield ev.set()

            def waiter():
                yield ev.wait()
                yield ev.wait()  # still signalled
                yield hits.add(1)

            return {"setter": setter, "waiter": waiter}

        ex = run(setup)
        assert not ex.failed
        assert ex.world.find("hits").value == 1

    def test_auto_reset_releases_one_waiter(self):
        def setup(w):
            ev = w.event("ev", auto_reset=True)
            woke = w.atomic("woke", 0)

            def w1():
                yield ev.wait()
                yield woke.add(1)

            def w2():
                yield ev.wait()
                yield woke.add(1)

            def setter():
                yield ev.set()

            return {"w1": w1, "w2": w2, "setter": setter}

        ex = Execution(
            Program("p", setup), ExecutionConfig(deadlock_is_bug=False)
        ).run_round_robin()
        # Exactly one waiter consumed the event; the other deadlocked.
        assert ex.world.find("woke").value == 1
        assert ex.deadlocked

    def test_initially_set_event(self):
        def setup(w):
            ev = w.event("ev", initial=True)

            def t():
                yield ev.wait()

            return {"t": t}

        assert run(setup).completed

    def test_reset_clears_event(self):
        def setup(w):
            ev = w.event("ev", initial=True)

            def t():
                yield ev.reset()

            return {"t": t}

        ex = run(setup)
        assert ex.world.find("ev").is_set is False


class TestSemaphore:
    def test_counting_behaviour(self):
        def setup(w):
            sem = w.semaphore("sem", initial=2)
            inside = w.atomic("inside", 0)

            def t():
                yield sem.acquire()
                n = yield inside.add(1)
                check(n <= 2, "more threads than permits")
                yield inside.add(-1)
                yield sem.release()

            return {f"t{i}": t for i in range(3)}

        assert not run(setup).failed

    def test_release_past_maximum_is_bug(self):
        def setup(w):
            sem = w.semaphore("sem", initial=1, maximum=1)

            def t():
                yield sem.release()

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.LOCK_ERROR

    def test_acquire_blocks_at_zero(self):
        def setup(w):
            sem = w.semaphore("sem", initial=0)

            def t():
                yield sem.acquire()

            return {"t": t}

        assert run(setup).deadlocked


class TestCondVar:
    def test_wait_releases_mutex_and_reacquires(self):
        def setup(w):
            lock = w.mutex("lock")
            cv = w.condvar("cv")
            state = w.var("state", "empty")

            def consumer():
                yield lock.acquire()
                while True:
                    value = yield state.read()
                    if value == "full":
                        break
                    yield cv.wait(lock)
                yield state.write("taken")
                yield lock.release()

            def producer():
                yield lock.acquire()
                yield state.write("full")
                yield cv.notify()
                yield lock.release()

            return {"consumer": consumer, "producer": producer}

        ex = run(setup)
        assert not ex.failed
        assert ex.world.find("state").value == "taken"

    def test_wait_without_mutex_is_lock_error(self):
        def setup(w):
            lock = w.mutex("lock")
            cv = w.condvar("cv")

            def t():
                yield cv.wait(lock)

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.LOCK_ERROR

    def test_notify_with_no_waiters_is_noop(self):
        def setup(w):
            cv = w.condvar("cv")

            def t():
                yield cv.notify()
                yield cv.broadcast()

            return {"t": t}

        assert run(setup).completed

    def test_broadcast_wakes_all_waiters(self):
        def setup(w):
            lock = w.mutex("lock")
            cv = w.condvar("cv")
            go = w.var("go", False)
            woke = w.atomic("woke", 0)
            parked = w.atomic("parked", 0)

            def waiter():
                yield lock.acquire()
                while True:
                    ready = yield go.read()
                    if ready:
                        break
                    yield parked.add(1)
                    yield cv.wait(lock)
                yield woke.add(1)
                yield lock.release()

            def waker():
                # Wait until both waiters are parked, boundedly.
                for _ in range(50):
                    count = yield parked.read()
                    if count == 2:
                        break
                yield lock.acquire()
                yield go.write(True)
                yield cv.broadcast()
                yield lock.release()

            return {"w1": waiter, "w2": waiter, "waker": waker}

        ex = run(setup)
        assert not ex.failed
        assert ex.world.find("woke").value == 2

    def test_lost_notify_deadlocks(self):
        """Notify before wait is lost (Mesa semantics)."""

        def setup(w):
            lock = w.mutex("lock")
            cv = w.condvar("cv")

            def notifier():
                yield cv.notify()

            def waiter():
                yield lock.acquire()
                yield cv.wait(lock)
                yield lock.release()

            return {"notifier": notifier, "waiter": waiter}

        assert run(setup).deadlocked


class TestRWLock:
    def test_readers_share(self):
        def setup(w):
            rw = w.rwlock("rw")
            inside = w.atomic("inside", 0)
            both = w.atomic("both", 0)

            def reader():
                yield rw.acquire_read()
                n = yield inside.add(1)
                if n == 2:
                    yield both.add(1)
                yield inside.add(-1)
                yield rw.release()

            return {"r1": reader, "r2": reader}

        ex = run(setup)
        assert not ex.failed

    def test_writer_excludes_readers(self):
        def setup(w):
            rw = w.rwlock("rw")
            ev = w.event("ev")
            observed = []

            def writer():
                yield rw.acquire_write()
                yield ev.set()
                yield rw.release()

            def reader():
                yield ev.wait()
                yield rw.acquire_read()
                observed.append("read")
                yield rw.release()

            return {"writer": writer, "reader": reader}

        assert not run(setup).failed

    def test_release_without_holding_is_lock_error(self):
        def setup(w):
            rw = w.rwlock("rw")

            def t():
                yield rw.release()

            return {"t": t}

        assert run(setup).bugs[0].kind is BugKind.LOCK_ERROR


class TestBarrier:
    def test_all_parties_pass_together(self):
        def setup(w):
            barrier = w.barrier("b", parties=3)
            passed = w.atomic("passed", 0)

            def t():
                yield from barrier.wait()
                yield passed.add(1)

            return {f"t{i}": t for i in range(3)}

        ex = run(setup)
        assert not ex.failed
        assert ex.world.find("passed").value == 3

    def test_missing_party_blocks_everyone(self):
        def setup(w):
            barrier = w.barrier("b", parties=3)

            def t():
                yield from barrier.wait()

            return {"t0": t, "t1": t}

        assert run(setup).deadlocked

    def test_single_party_barrier_is_transparent(self):
        def setup(w):
            barrier = w.barrier("b", parties=1)

            def t():
                yield from barrier.wait()

            return {"t": t}

        assert run(setup).completed
