"""The replay-based state space (stateless exploration)."""

from __future__ import annotations

from repro import ExecutionConfig, ProgramStateSpace, SchedulingPolicy
from repro.programs import toy


def make_space(program=None, **config_kwargs):
    config = ExecutionConfig(**config_kwargs) if config_kwargs else None
    return ProgramStateSpace(program or toy.chain_program(2, 2), config)


class TestStateTokens:
    def test_states_are_schedules(self):
        space = make_space()
        initial = space.initial_state()
        assert initial == ()
        tid = space.enabled(initial)[0]
        successor = space.execute(initial, tid)
        assert successor == (tid,)
        assert space.schedule_of(successor) == (tid,)

    def test_execute_does_not_mutate_argument(self):
        space = make_space()
        initial = space.initial_state()
        t0, t1 = space.enabled(initial)
        a = space.execute(initial, t0)
        b = space.execute(initial, t1)  # revisiting the initial state
        assert a != b
        assert space.last_thread(a) == t0
        assert space.last_thread(b) == t1

    def test_last_thread_of_initial_is_none(self):
        space = make_space()
        assert space.last_thread(space.initial_state()) is None


class TestReplayAccounting:
    def test_linear_extension_does_not_replay(self):
        space = make_space()
        state = space.initial_state()
        while not space.is_terminal(state):
            state = space.execute(state, space.enabled(state)[0])
        assert space.replays == 1  # only the initial construction

    def test_divergence_forces_replay(self):
        space = make_space()
        initial = space.initial_state()
        t0, t1 = space.enabled(initial)
        a = space.execute(initial, t0)
        space.execute(a, t0)
        # Jump back to a sibling of the first step.
        space.execute(initial, t1)
        assert space.replays >= 2

    def test_replay_counts_steps(self):
        space = make_space()
        initial = space.initial_state()
        t0, t1 = space.enabled(initial)
        a = space.execute(initial, t0)
        space.execute(initial, t1)
        space.execute(a, t0)  # back to the first branch: replays prefix
        assert space.replay_steps >= 1


class TestConsistency:
    def test_fingerprints_stable_across_replays(self):
        space = make_space()
        initial = space.initial_state()
        t0, t1 = space.enabled(initial)
        a = space.execute(initial, t0)
        fp_before = space.fingerprint(a)
        space.execute(initial, t1)  # diverge
        assert space.fingerprint(a) == fp_before  # forces replay

    def test_preemptions_recomputed_after_replay(self):
        space = make_space()
        initial = space.initial_state()
        t0, t1 = space.enabled(initial)
        a = space.execute(initial, t0)
        ab = space.execute(a, t1)  # preemption (t0 still enabled)
        assert space.preemptions(ab) == 1
        space.execute(initial, t1)
        assert space.preemptions(ab) == 1  # replayed, same result

    def test_execution_stats_shape(self):
        space = make_space()
        state = space.initial_state()
        while not space.is_terminal(state):
            state = space.execute(state, space.enabled(state)[0])
        steps, blocking, preemptions = space.execution_stats(state)
        assert steps > 0 and blocking > 0 and preemptions == 0

    def test_thread_count(self):
        space = make_space(toy.chain_program(3, 1))
        assert space.thread_count(space.initial_state()) == 3

    def test_supports_por_depends_on_policy(self):
        assert not make_space().supports_por
        assert make_space(policy=SchedulingPolicy.EVERY_ACCESS).supports_por

    def test_bugs_surface_through_space(self):
        space = make_space(toy.use_after_free_toy())
        state = space.initial_state()
        # Drive main (second thread) to completion first, then reader.
        main = space.enabled(state)[1]
        while main in space.enabled(state):
            state = space.execute(state, main)
        while not space.is_terminal(state):
            state = space.execute(state, space.enabled(state)[0])
        assert space.bugs(state)
