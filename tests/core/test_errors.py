"""Bug reports and error types."""

from __future__ import annotations

from repro import BugKind, BugReport
from repro.core.thread import ThreadId
from repro.errors import ProgramAssertionError, ReproError, SchedulingError


class TestBugReport:
    def make(self, **overrides):
        defaults = dict(
            kind=BugKind.ASSERTION,
            message="boom",
            thread=ThreadId((0,), "t"),
            schedule=(ThreadId((0,), "t"), ThreadId((1,), "u")),
            preemptions=1,
            step_index=2,
        )
        defaults.update(overrides)
        return BugReport(**defaults)

    def test_signature_ignores_schedule(self):
        a = self.make()
        b = self.make(schedule=(), preemptions=5)
        assert a.signature == b.signature

    def test_signature_distinguishes_kind_and_message(self):
        assert self.make().signature != self.make(message="other").signature
        assert (
            self.make().signature
            != self.make(kind=BugKind.DEADLOCK).signature
        )

    def test_describe_contains_essentials(self):
        text = self.make().describe()
        assert "[assertion] boom" in text
        assert "preemptions: 1" in text
        assert "t u" in text  # the schedule rendering

    def test_describe_with_details(self):
        report = self.make(details=(("variable", "x"),))
        assert "variable: x" in report.describe()

    def test_str_compact(self):
        assert "assertion" in str(self.make())
        assert "preemptions=1" in str(self.make())

    def test_reports_are_immutable(self):
        report = self.make()
        try:
            report.message = "changed"
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestExceptionHierarchy:
    def test_scheduling_error_is_repro_error(self):
        assert issubclass(SchedulingError, ReproError)

    def test_program_assertion_is_assertion_error(self):
        # So bare `assert` in harness code and `check()` behave alike
        # under pytest while remaining distinguishable to the engine.
        assert issubclass(ProgramAssertionError, AssertionError)
        exc = ProgramAssertionError("msg")
        assert exc.message == "msg"

    def test_bug_kind_values_are_stable(self):
        # These strings appear in persisted benchmark outputs.
        assert str(BugKind.DATA_RACE) == "data-race"
        assert str(BugKind.USE_AFTER_FREE) == "use-after-free"
        assert str(BugKind.DEADLOCK) == "deadlock"
