"""Thread identities and per-thread state."""

from __future__ import annotations

import pytest

from repro.core.thread import ThreadHandle, ThreadId, ThreadState, ThreadStatus
from repro.core.sync import Event
from repro.core.world import World


class TestThreadId:
    def test_ordering_by_path(self):
        ids = [ThreadId((1,)), ThreadId((0, 2)), ThreadId((0,)), ThreadId((0, 1))]
        assert sorted(ids) == [
            ThreadId((0,)),
            ThreadId((0, 1)),
            ThreadId((0, 2)),
            ThreadId((1,)),
        ]

    def test_equality_ignores_label(self):
        assert ThreadId((0,), "a") == ThreadId((0,), "b")
        assert hash(ThreadId((0,), "a")) == hash(ThreadId((0,), "b"))

    def test_child_ids(self):
        parent = ThreadId((2,), "main")
        child = parent.child(0, "worker")
        assert child.path == (2, 0)
        assert str(child) == "worker"
        grandchild = child.child(3)
        assert grandchild.path == (2, 0, 3)

    def test_str_falls_back_to_path(self):
        assert str(ThreadId((1, 2))) == "1.2"

    def test_repr(self):
        assert "ThreadId" in repr(ThreadId((0,), "t"))


class TestThreadIdFromPath:
    """Round-tripping identities through serialized forms."""

    def test_from_sequence(self):
        assert ThreadId.from_path([0, 2, 1]) == ThreadId((0, 2, 1))
        assert ThreadId.from_path((3,), "main").label == "main"

    def test_from_dotted_string(self):
        assert ThreadId.from_path("0.2.1") == ThreadId((0, 2, 1))
        assert ThreadId.from_path("4") == ThreadId((4,))

    def test_dotted_rendering_round_trips(self):
        original = ThreadId((1, 0, 2))
        dotted = ".".join(map(str, original.path))
        assert ThreadId.from_path(dotted) == original

    def test_label_preserved_but_ignored_for_identity(self):
        rebuilt = ThreadId.from_path("0.1", "worker")
        assert rebuilt.label == "worker"
        assert rebuilt == ThreadId((0, 1), "other")

    @pytest.mark.parametrize(
        "bad", ["", "  ", "a.b", "0..1", "-1", [0, -1], [], [0, "x"], [True]]
    )
    def test_malformed_paths_rejected(self, bad):
        with pytest.raises(ValueError):
            ThreadId.from_path(bad)


class TestThreadHandle:
    def test_hashable_and_comparable(self):
        a = ThreadHandle(ThreadId((0, 0), "w"))
        b = ThreadHandle(ThreadId((0, 0), "w"))
        assert a == b
        assert hash(a) == hash(b)


class TestThreadState:
    def make(self):
        w = World()

        def body():
            yield None  # pragma: no cover - never started here

        created = Event(w, "c", initial=True)
        done = Event(w, "d")
        return ThreadState(ThreadId((0,), "t"), body, (), created, done)

    def test_initial_state(self):
        thread = self.make()
        assert thread.status is ThreadStatus.NEW
        assert thread.alive
        assert thread.steps == 0
        assert thread.input_chain == 0

    def test_input_chain_depends_on_values_and_order(self):
        a, b = self.make(), self.make()
        a.record_input(1)
        a.record_input(2)
        b.record_input(2)
        b.record_input(1)
        assert a.input_chain != b.input_chain

    def test_input_chain_handles_unhashable(self):
        thread = self.make()
        thread.record_input([1, 2])  # falls back to repr hashing
        assert thread.input_chain != 0

    def test_local_fingerprint_changes_with_progress(self):
        thread = self.make()
        before = thread.local_fingerprint()
        thread.steps += 1
        assert thread.local_fingerprint() != before

    def test_terminal_statuses_not_alive(self):
        thread = self.make()
        thread.status = ThreadStatus.FINISHED
        assert not thread.alive
        thread.status = ThreadStatus.FAILED
        assert not thread.alive
