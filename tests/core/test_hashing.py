"""Process-stable hashing: the property checkpoint resume rests on.

State fingerprints are persisted into checkpoints and compared by a
*different* process, so they must depend only on ``PYTHONHASHSEED``.
CPython before 3.12 id-hashes ``None``/``Ellipsis``/``NotImplemented``
(address-derived, moved by ASLR every interpreter start), which is
exactly what :func:`repro.core.hashing.stable_hash` papers over.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.core.hashing import stable_hash


class TestStableHash:
    def test_equal_values_hash_equal(self):
        cases = [
            None,
            Ellipsis,
            NotImplemented,
            0,
            "x",
            (1, None, ("y", Ellipsis)),
            frozenset({None, 1, ("a", None)}),
        ]
        for value in cases:
            assert stable_hash(value) == stable_hash(value)

    def test_distinguishes_the_singletons(self):
        assert stable_hash(None) != stable_hash(Ellipsis)
        assert stable_hash(None) != stable_hash(NotImplemented)
        assert stable_hash((None,)) != stable_hash((Ellipsis,))

    def test_plain_values_keep_their_builtin_hash(self):
        for value in (0, 1, -7, "abc", (1, 2), frozenset({1, 2})):
            assert stable_hash(value) == hash(value)

    def test_unhashable_raises_type_error_like_hash(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])
        with pytest.raises(TypeError):
            stable_hash((1, [2]))


#: Computes a digest of every state fingerprint of one full check; two
#: same-seed processes must print the same line.
_DIGEST_SCRIPT = (
    "import hashlib, json\n"
    "from repro import ChessChecker\n"
    "from repro.core.hashing import stable_hash\n"
    "from repro.programs import resolve_builtin\n"
    "r = ChessChecker(resolve_builtin('toy:stats-race')).check(max_bound=1)\n"
    "keys = sorted(r.search.context.states.keys())\n"
    "digest = hashlib.sha256(json.dumps(keys).encode()).hexdigest()\n"
    "print(len(keys), digest, stable_hash(None), stable_hash((0, None)))\n"
)


def _digest_in_fresh_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONHASHSEED"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


def test_fingerprints_agree_across_same_seed_processes():
    """The regression this module exists for: two fresh interpreters
    with the same hash seed compute identical state-fingerprint sets
    (id-hashed ``None`` inside snapshots or input chains used to make
    a resumed checkpoint double-count revisited states)."""
    assert _digest_in_fresh_process() == _digest_in_fresh_process()
