"""Engine semantics: scheduling, enabledness, preemption accounting."""

from __future__ import annotations

import pytest

from repro import (
    BugKind,
    Execution,
    ExecutionConfig,
    Program,
    SchedulingPolicy,
    check,
)
from repro.core.thread import ThreadId
from repro.errors import SchedulingError


def two_step_program():
    def setup(w):
        a = w.atomic("a", 0)
        b = w.atomic("b", 0)

        def left():
            yield a.add(1)
            yield a.add(1)

        def right():
            yield b.add(1)

        return {"left": left, "right": right}

    return Program("two-step", setup)


class TestBasicScheduling:
    def test_initial_threads_enabled(self):
        ex = Execution(two_step_program())
        assert [str(t) for t in ex.enabled_threads()] == ["left", "right"]

    def test_round_robin_completes(self):
        ex = Execution(two_step_program()).run_round_robin()
        assert ex.completed and not ex.failed
        assert ex.world.find("a").value == 2
        assert ex.world.find("b").value == 1

    def test_execute_disabled_thread_raises(self):
        def setup(w):
            lock = w.mutex("lock")

            def holder():
                yield lock.acquire()
                yield lock.acquire()  # self-deadlock; never released

            def waiter():
                yield lock.acquire()
                yield lock.release()

            return {"holder": holder, "waiter": waiter}

        ex = Execution(Program("p", setup), ExecutionConfig(deadlock_is_bug=False))
        holder, waiter = ex.enabled_threads()
        ex.execute(holder)  # START step
        ex.execute(holder)  # first acquire; second acquire now pending
        assert holder not in ex.enabled_threads()  # self-deadlocked
        ex.execute(waiter)  # START step; its acquire is now pending
        # Both threads blocked on the held mutex: terminal deadlock.
        assert ex.enabled_threads() == ()
        with pytest.raises(SchedulingError):
            ex.execute(waiter)

    def test_execute_after_completion_raises(self):
        ex = Execution(two_step_program()).run_round_robin()
        with pytest.raises(SchedulingError):
            ex.execute(ThreadId((0,), "left"))

    def test_schedule_records_choices(self):
        ex = Execution(two_step_program()).run_round_robin()
        assert len(ex.schedule) == len(ex.step_records)
        assert all(isinstance(t, ThreadId) for t in ex.schedule)


class TestPreemptionCounting:
    """NP(alpha) per Appendix A.1."""

    def test_round_robin_has_zero_preemptions(self):
        ex = Execution(two_step_program()).run_round_robin()
        assert ex.preemptions == 0

    def test_switch_from_enabled_thread_is_preemption(self):
        ex = Execution(two_step_program())
        left, right = ex.enabled_threads()
        ex.execute(left)
        assert ex.preemptions == 0
        ex.execute(right)  # left still enabled: preemption
        assert ex.preemptions == 1
        ex.execute(left)  # right still enabled: preemption
        assert ex.preemptions == 2

    def test_switch_from_blocked_thread_is_free(self):
        def setup(w):
            ev = w.event("ev")

            def waiter():
                yield ev.wait()

            def setter():
                yield ev.set()

            return {"waiter": waiter, "setter": setter}

        ex = Execution(Program("p", setup))
        waiter, setter = ThreadId((0,), "waiter"), ThreadId((1,), "setter")
        ex.execute(waiter)  # START; then blocks on the unset event
        assert waiter not in ex.enabled_threads()
        ex.execute(setter)  # switch from blocked thread: nonpreempting
        assert ex.preemptions == 0

    def test_continuing_same_thread_never_preempts(self):
        ex = Execution(two_step_program())
        left = ex.enabled_threads()[0]
        while left in ex.enabled_threads():
            ex.execute(left)
        assert ex.preemptions == 0

    def test_step_records_mark_preempting_steps(self):
        ex = Execution(two_step_program())
        left, right = ex.enabled_threads()
        ex.execute(left)
        ex.execute(right)
        assert [r.preempting for r in ex.step_records] == [False, True]


class TestSchedulingPolicies:
    def make_data_program(self):
        def setup(w):
            lock = w.mutex("lock")
            data = w.var("data", 0)

            def worker():
                yield lock.acquire()
                v = yield data.read()
                yield data.write(v + 1)
                yield lock.release()

            return {"w1": worker, "w2": worker}

        return Program("data", setup)

    def test_sync_only_glues_data_accesses(self):
        ex = Execution(self.make_data_program()).run_round_robin()
        # Each acquire step carries the two data accesses with it.
        acquire_steps = [
            r
            for r in ex.step_records
            if any(str(kind) == "acquire" for kind, _ in r.accesses)
        ]
        assert acquire_steps
        for record in acquire_steps:
            kinds = [str(kind) for kind, _ in record.accesses]
            assert kinds == ["acquire", "read", "write"]

    def test_every_access_isolates_each_access(self):
        config = ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)
        ex = Execution(self.make_data_program(), config).run_round_robin()
        assert all(len(r.accesses) == 1 for r in ex.step_records)

    def test_policies_reach_same_final_value(self):
        final = []
        for policy in SchedulingPolicy:
            ex = Execution(
                self.make_data_program(), ExecutionConfig(policy=policy)
            ).run_round_robin()
            final.append(ex.world.find("data").value)
        assert final[0] == final[1] == 2


class TestBugDetection:
    def test_assertion_failure_reported(self):
        def setup(w):
            flag = w.atomic("flag", 0)

            def t():
                yield flag.write(1)
                check(False, "boom")

            return {"t": t}

        ex = Execution(Program("p", setup)).run_round_robin()
        assert ex.failed
        assert ex.bugs[0].kind is BugKind.ASSERTION
        assert ex.bugs[0].message == "boom"
        assert ex.bugs[0].thread == ThreadId((0,), "t")

    def test_uncaught_exception_reported(self):
        def setup(w):
            flag = w.atomic("flag", 0)

            def t():
                yield flag.write(1)
                raise ValueError("oops")

            return {"t": t}

        ex = Execution(Program("p", setup)).run_round_robin()
        assert ex.bugs[0].kind is BugKind.UNCAUGHT_EXCEPTION
        assert "oops" in ex.bugs[0].message

    def test_deadlock_reported(self):
        def setup(w):
            ev = w.event("never")

            def t():
                yield ev.wait()

            return {"t": t}

        ex = Execution(Program("p", setup)).run_round_robin()
        assert ex.deadlocked
        assert ex.bugs[0].kind is BugKind.DEADLOCK

    def test_deadlock_can_be_tolerated(self):
        def setup(w):
            ev = w.event("never")

            def t():
                yield ev.wait()

            return {"t": t}

        ex = Execution(
            Program("p", setup), ExecutionConfig(deadlock_is_bug=False)
        ).run_round_robin()
        assert ex.deadlocked and not ex.failed and ex.completed

    def test_bug_report_carries_replayable_schedule(self):
        def setup(w):
            a = w.atomic("a", 0)

            def t1():
                v = yield a.read()
                yield a.write(v + 1)

            def t2():
                v = yield a.read()
                yield a.write(v + 1)

            def main():
                yield a.write(0)

            return {"t1": t1, "t2": t2, "main": main}

        # Manually produce the lost-update interleaving.
        program = Program("p", setup)
        ex = Execution(program)
        t1, t2, _ = ex.enabled_threads()
        ex.execute(t1)  # START + read
        ex.execute(t2)  # preempt: READ same value
        assert ex.preemptions == 1

    def test_livelock_guard_fires_on_data_spin(self):
        def setup(w):
            data = w.var("flag", 0)

            def spinner():
                while True:
                    v = yield data.read()
                    if v:
                        break

            return {"spinner": spinner}

        config = ExecutionConfig(max_accesses_per_step=100)
        ex = Execution(Program("p", setup), config)
        ex.execute(ex.enabled_threads()[0])
        assert ex.failed
        assert ex.bugs[0].kind is BugKind.LIVELOCK


class TestReplayDeterminism:
    def test_replay_reproduces_fingerprints(self):
        program = two_step_program()
        ex = Execution(program)
        import random

        rng = random.Random(7)
        while not ex.finished:
            enabled = ex.enabled_threads()
            ex.execute(enabled[rng.randrange(len(enabled))])
        replay = Execution.replay(program, ex.schedule)
        assert replay.fingerprint() == ex.fingerprint()
        assert replay.preemptions == ex.preemptions
        assert [r.fingerprint for r in replay.step_records] == [
            r.fingerprint for r in ex.step_records
        ]

    def test_equivalent_interleavings_share_final_fingerprint(self):
        # Two threads touching disjoint variables commute.
        def setup(w):
            a = w.atomic("a", 0)
            b = w.atomic("b", 0)

            def ta():
                yield a.add(1)

            def tb():
                yield b.add(1)

            return {"ta": ta, "tb": tb}

        program = Program("p", setup)
        ex1 = Execution(program)
        ta, tb = ex1.enabled_threads()
        for tid in (ta, ta, tb, tb):  # run ta fully, then tb
            if tid in ex1.enabled_threads():
                ex1.execute(tid)
        while not ex1.finished:
            ex1.execute(ex1.enabled_threads()[0])

        ex2 = Execution(program)
        for tid in (tb, tb, ta, ta):
            if tid in ex2.enabled_threads():
                ex2.execute(tid)
        while not ex2.finished:
            ex2.execute(ex2.enabled_threads()[0])
        assert ex1.fingerprint() == ex2.fingerprint()


class TestSpawnJoin:
    def test_spawned_threads_get_hierarchical_ids(self):
        from repro import join, spawn

        seen = {}

        def setup(w):
            token = w.atomic("token", 0)

            def child():
                yield token.add(1)

            def main():
                h1 = yield spawn(child, name="c1")
                h2 = yield spawn(child, name="c2")
                seen["ids"] = (h1.tid, h2.tid)
                yield join(h1)
                yield join(h2)

            return {"main": main}

        ex = Execution(Program("p", setup)).run_round_robin()
        assert ex.completed and not ex.failed
        assert seen["ids"][0].path == (0, 0)
        assert seen["ids"][1].path == (0, 1)
        assert ex.world.find("token").value == 2

    def test_join_blocks_until_child_finishes(self):
        from repro import join, spawn

        def setup(w):
            gate = w.event("gate")
            order = w.var("order", ())

            def child():
                yield gate.wait()
                trace = yield order.read()
                yield order.write(trace + ("child",))

            def main():
                handle = yield spawn(child)
                yield gate.set()
                yield join(handle)
                trace = yield order.read()
                yield order.write(trace + ("main",))

            return {"main": main}

        ex = Execution(Program("p", setup)).run_round_robin()
        assert ex.world.find("order").value == ("child", "main")
