"""World registry, program definitions, effect constructors."""

from __future__ import annotations

import pytest

from repro import Execution, Program, World, sched_yield, spawn
from repro.core.effects import Effect, EffectKind
from repro.core.program import _normalize_threads
from repro.errors import ProgramDefinitionError


class TestWorld:
    def test_duplicate_names_rejected(self):
        w = World()
        w.var("x", 0)
        with pytest.raises(ProgramDefinitionError):
            w.var("x", 1)

    def test_find_by_name(self):
        w = World()
        v = w.var("x", 42)
        assert w.find("x") is v
        with pytest.raises(ProgramDefinitionError):
            w.find("missing")

    def test_objects_in_registration_order(self):
        w = World()
        names = ["a", "b", "c"]
        for name in names:
            w.atomic(name)
        assert [o.name for o in w.objects] == names

    def test_fingerprint_changes_with_values(self):
        w = World()
        v = w.var("x", 0)
        before = w.fingerprint()
        v.value = 1
        assert w.fingerprint() != before

    def test_fingerprint_is_name_keyed(self):
        w1 = World()
        w1.var("a", 1)
        w1.var("b", 2)
        w2 = World()
        w2.var("b", 2)
        w2.var("a", 1)
        assert w1.fingerprint() == w2.fingerprint()

    def test_factories_cover_all_primitives(self):
        w = World()
        w.var("v")
        w.atomic("a")
        w.array("arr", [1, 2])
        w.mutex("m")
        w.critical_section("cs")
        w.event("e")
        w.semaphore("s")
        w.condvar("cv")
        w.rwlock("rw")
        w.barrier("bar", 2)
        w.alloc("obj", field=1)
        assert len(w.objects) > 10


class TestProgramDefinition:
    def test_mapping_and_tuple_forms(self):
        def body():
            yield sched_yield()

        assert _normalize_threads({"a": body}) == [("a", body, ())]
        assert _normalize_threads([("a", body)]) == [("a", body, ())]
        assert _normalize_threads([("a", body, (1, 2))]) == [("a", body, (1, 2))]

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramDefinitionError):
            _normalize_threads({})

    def test_duplicate_labels_rejected(self):
        def body():
            yield sched_yield()

        with pytest.raises(ProgramDefinitionError):
            _normalize_threads([("a", body), ("a", body)])

    def test_non_callable_body_rejected(self):
        with pytest.raises(ProgramDefinitionError):
            _normalize_threads({"a": 42})

    def test_bad_label_rejected(self):
        def body():
            yield sched_yield()

        with pytest.raises(ProgramDefinitionError):
            _normalize_threads([("", body)])

    def test_generator_setup_rejected(self):
        def setup(w):
            yield  # pragma: no cover

        with pytest.raises(ProgramDefinitionError):
            Program("p", setup).instantiate()

    def test_non_callable_setup_rejected(self):
        with pytest.raises(ProgramDefinitionError):
            Program("p", 42)

    def test_non_generator_body_reported_at_start(self):
        def setup(w):
            w.var("x")

            def not_a_generator():
                return 42

            return {"t": not_a_generator}

        ex = Execution(Program("p", setup))
        with pytest.raises(ProgramDefinitionError):
            ex.execute(ex.enabled_threads()[0])

    def test_yielding_non_effect_reported(self):
        def setup(w):
            def bad():
                yield "not an effect"

            return {"t": bad}

        ex = Execution(Program("p", setup))
        with pytest.raises(ProgramDefinitionError):
            ex.execute(ex.enabled_threads()[0])


class TestEffectConstructors:
    def test_spawn_effect_shape(self):
        def child():
            yield sched_yield()

        effect = spawn(child, 1, 2, name="kid")
        assert effect.kind is EffectKind.SPAWN
        assert effect.args == (child, (1, 2), "kid")

    def test_yield_effect(self):
        effect = sched_yield()
        assert effect.kind is EffectKind.YIELD
        assert effect.target is None
        assert not effect.may_block

    def test_blocking_classification(self):
        w = World()
        assert w.mutex("m").acquire().may_block
        assert not w.mutex("m2").release().may_block
        assert w.event("e").wait().may_block
        assert not w.event("e2").set().may_block
        assert w.semaphore("s").acquire().may_block

    def test_repr_is_informative(self):
        w = World()
        effect = w.atomic("a").cas(1, 2)
        assert "cas" in repr(effect)
        assert "a" in repr(effect)

    def test_effects_are_immutable(self):
        effect = Effect(EffectKind.YIELD)
        with pytest.raises(AttributeError):
            effect.kind = EffectKind.READ
