"""Pickle-safety of everything that crosses process boundaries.

The parallel engine ships work items, bug reports and shard results
through ``multiprocessing`` queues; these round-trips are the contract
it relies on.
"""

from __future__ import annotations

import pickle

from repro import (
    BugKind,
    BugReport,
    ExecutionConfig,
    RaceDetection,
    SchedulingPolicy,
    SearchContext,
    SearchLimits,
    SearchResult,
    ThreadId,
    WorkItem,
)
from repro.parallel.workitem import ShardTask


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestBugReportPickling:
    def make(self):
        return BugReport(
            kind=BugKind.DATA_RACE,
            message="race on balance",
            thread=ThreadId((1,), "writer"),
            schedule=(ThreadId((0,), "a"), ThreadId((1,), "writer")),
            preemptions=1,
            step_index=4,
            details=(("variable", "balance"),),
        )

    def test_roundtrip_preserves_equality(self):
        bug = self.make()
        clone = roundtrip(bug)
        assert clone == bug
        assert hash(clone) == hash(bug)

    def test_identity_stable_across_roundtrip(self):
        bug = self.make()
        assert roundtrip(bug).identity == bug.identity
        assert roundtrip(bug).signature == bug.signature

    def test_identity_distinguishes_witnesses(self):
        bug = self.make()
        other = BugReport(
            kind=bug.kind,
            message=bug.message,
            thread=bug.thread,
            schedule=(ThreadId((1,), "writer"), ThreadId((0,), "a")),
            preemptions=1,
        )
        assert other.signature == bug.signature  # same defect...
        assert other.identity != bug.identity  # ...different witness


class TestConfigPickling:
    def test_execution_config_roundtrip(self):
        config = ExecutionConfig(
            policy=SchedulingPolicy.EVERY_ACCESS,
            race_detection=RaceDetection.BOTH,
            strict_races=True,
            free_conflicts=True,
        )
        assert roundtrip(config) == config

    def test_search_limits_roundtrip(self):
        limits = SearchLimits(max_executions=3, max_seconds=1.0, stop_on_first_bug=True)
        assert roundtrip(limits) == limits


class TestParallelPayloadPickling:
    def test_work_item_roundtrip(self):
        item = WorkItem(
            schedule=(ThreadId((0,), "a"), ThreadId((1,), "b")),
            tid=ThreadId((1,), "b"),
            preemptions=1,
        )
        assert roundtrip(item) == item

    def test_shard_task_roundtrip(self):
        task = ShardTask(
            shard_id=3,
            bound=1,
            items=(WorkItem((), ThreadId((0,), "a"), 0),),
        )
        assert roundtrip(task) == task

    def test_search_result_roundtrip(self):
        ctx = SearchContext(SearchLimits(max_executions=5))
        ctx.states = {12345: 0, 678: 1}
        ctx.executions = 2
        result = SearchResult(
            strategy="icb-shard",
            completed=True,
            stop_reason="shard exhausted",
            context=ctx,
            extras={"shard_id": 0},
        )
        clone = roundtrip(result)
        assert clone.executions == 2
        assert clone.context.states == ctx.states
