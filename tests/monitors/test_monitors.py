"""Pluggable execution monitors."""

from __future__ import annotations

from repro import (
    BugKind,
    ChessChecker,
    Execution,
    ExecutionConfig,
    FinalStateMonitor,
    InvariantMonitor,
    Program,
    monitor_factory,
)
from repro.monitors import TraceCollector


def counter_program(locked: bool):
    def setup(w):
        lock = w.mutex("lock")
        n = w.atomic("n", 0)

        def t():
            if locked:
                yield lock.acquire()
            v = yield n.read()
            yield n.write(v + 1)
            if locked:
                yield lock.release()

        return {"t1": t, "t2": t}

    return Program("counter", setup)


class TestInvariantMonitor:
    def test_holding_invariant_stays_quiet(self):
        config = ExecutionConfig(
            monitors=(
                monitor_factory(
                    InvariantMonitor,
                    "counter in range",
                    lambda ex: 0 <= ex.world.find("n").value <= 2,
                ),
            )
        )
        ex = Execution(counter_program(locked=True), config).run_round_robin()
        assert not ex.bugs

    def test_violated_invariant_reports_bug(self):
        config = ExecutionConfig(
            monitors=(
                monitor_factory(
                    InvariantMonitor,
                    "counter never reaches 2",
                    lambda ex: ex.world.find("n").value < 2,
                ),
            )
        )
        ex = Execution(counter_program(locked=True), config).run_round_robin()
        assert ex.failed
        assert ex.bugs[0].kind is BugKind.INVARIANT
        assert "counter never reaches 2" in ex.bugs[0].message

    def test_invariant_bug_found_by_search_with_bound(self):
        config = ExecutionConfig(
            monitors=(
                monitor_factory(
                    InvariantMonitor,
                    "no lost update",
                    # Violated only in the preempted interleaving where
                    # both threads read 0: final value 1.
                    lambda ex: not (
                        ex.completed_threads() == 2 and ex.world.find("n").value == 1
                    )
                    if hasattr(ex, "completed_threads")
                    else True,
                ),
            )
        )
        # The lambda above degrades to True (Execution has no
        # completed_threads); the real check is done with
        # FinalStateMonitor below.  Here we only verify monitors plug
        # into the checker without interfering.
        result = ChessChecker(counter_program(locked=False), config).check(max_bound=1)
        assert result.executions > 0


class TestFinalStateMonitor:
    def final_config(self):
        return ExecutionConfig(
            monitors=(
                monitor_factory(
                    FinalStateMonitor,
                    "no lost update",
                    lambda ex: ex.world.find("n").value == 2,
                ),
            )
        )

    def test_postcondition_violation_needs_one_preemption(self):
        checker = ChessChecker(counter_program(locked=False), self.final_config())
        bug = checker.find_bug(max_bound=2)
        assert bug is not None
        assert bug.kind is BugKind.INVARIANT
        assert bug.preemptions == 1

    def test_locked_version_passes_postcondition(self):
        checker = ChessChecker(counter_program(locked=True), self.final_config())
        assert checker.find_bug(max_bound=2) is None


class TestTraceCollector:
    def test_collects_every_step(self):
        config = ExecutionConfig(monitors=(monitor_factory(TraceCollector),))
        ex = Execution(counter_program(locked=True), config).run_round_robin()
        collector = ex.monitors[0]
        assert len(collector.records) == len(ex.step_records)
        assert [r.index for r in collector.records] == list(
            range(len(ex.step_records))
        )
