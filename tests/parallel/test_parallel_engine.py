"""The parallel engine: equivalence with serial ICB, determinism,
budget termination and crash robustness."""

from __future__ import annotations

import pytest

from repro import (
    ChessChecker,
    ParallelCoordinator,
    ParallelSettings,
    SearchLimits,
)
from repro.programs import toy
from repro.programs.bluetooth import bluetooth


def summary(check_result):
    """The cross-process-comparable essence of a check.

    Witness *schedules* are excluded on purpose: serial and parallel
    runs may keep different (equally minimal) witnesses of the same
    defect.  Exact witness identity is only asserted between parallel
    runs, where the deterministic merge tie-break pins it down.
    """
    return {
        "executions": check_result.executions,
        "transitions": check_result.transitions,
        "distinct_states": check_result.distinct_states,
        "certified_bound": check_result.certified_bound,
        "bug_preemptions": sorted(
            (str(b.kind), b.preemptions) for b in check_result.bugs
        ),
    }


def witness_identities(check_result):
    return sorted(b.identity for b in check_result.bugs)


class TestSerialEquivalence:
    """Sharding partitions the frontier; it must not change what is
    explored, counted, certified or reported."""

    def test_buggy_program_matches_serial(self):
        serial = ChessChecker(bluetooth(buggy=True)).check(max_bound=1)
        parallel = ChessChecker(bluetooth(buggy=True)).check(max_bound=1, workers=2)
        assert summary(parallel) == summary(serial)
        assert parallel.search.completed and serial.search.completed

    def test_correct_program_certified(self):
        serial = ChessChecker(toy.locked_counter()).check(max_bound=2)
        parallel = ChessChecker(toy.locked_counter()).check(max_bound=2, workers=2)
        assert not parallel.found_bug
        assert parallel.certified_bound == serial.certified_bound == 2
        assert summary(parallel) == summary(serial)

    def test_exhaustive_run_completes(self):
        serial = ChessChecker(toy.chain_program(2, 2)).check()
        parallel = ChessChecker(toy.chain_program(2, 2)).check(workers=2)
        assert parallel.search.completed
        assert parallel.search.stop_reason == "exhausted state space"
        assert summary(parallel) == summary(serial)

    def test_parallel_find_bug_is_minimal(self):
        serial_bug = ChessChecker(bluetooth(buggy=True)).find_bug(max_bound=3)
        parallel_bug = ChessChecker(bluetooth(buggy=True)).find_bug(
            max_bound=3, workers=2
        )
        assert parallel_bug is not None
        assert parallel_bug.kind == serial_bug.kind
        assert parallel_bug.preemptions == serial_bug.preemptions

    def test_workers_rejects_custom_strategy_and_caching(self):
        from repro import DepthFirstSearch

        checker = ChessChecker(toy.racy_counter())
        with pytest.raises(ValueError):
            checker.check(strategy=DepthFirstSearch(), workers=2)
        with pytest.raises(ValueError):
            checker.check(workers=2, state_caching=True)


class TestDeterminism:
    """workers=1 and workers=4 must report the same certified bound
    and an identical minimal-preemption first bug."""

    def test_one_vs_four_workers(self):
        one = ChessChecker(bluetooth(buggy=True)).check(max_bound=2, workers=1)
        four = ChessChecker(bluetooth(buggy=True)).check(max_bound=2, workers=4)
        assert one.certified_bound == four.certified_bound == 2
        assert one.found_bug and four.found_bug
        first_one, first_four = one.search.first_bug, four.search.first_bug
        assert first_one.kind == first_four.kind
        assert first_one.preemptions == first_four.preemptions
        assert summary(one) == summary(four)

    def test_parallel_run_is_reproducible(self):
        runs = [
            ChessChecker(bluetooth(buggy=True)).check(max_bound=1, workers=3)
            for _ in range(2)
        ]
        assert summary(runs[0]) == summary(runs[1])
        assert witness_identities(runs[0]) == witness_identities(runs[1])


class TestBudgets:
    """Global budgets terminate the pool and mark the run incomplete."""

    def test_transition_budget(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            workers=2, limits=SearchLimits(max_transitions=300)
        )
        assert not result.search.completed
        assert "transition budget" in result.search.stop_reason
        assert result.transitions >= 300

    def test_execution_budget(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            workers=2, limits=SearchLimits(max_executions=20)
        )
        assert not result.search.completed
        assert "execution budget" in result.search.stop_reason
        assert result.executions >= 20

    def test_time_budget(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            workers=2, limits=SearchLimits(max_seconds=0.3)
        )
        assert not result.search.completed
        assert "time budget" in result.search.stop_reason

    def test_budget_stop_never_certifies_incomplete_bound(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            workers=2, limits=SearchLimits(max_transitions=300)
        )
        # Bound 0 takes ~77 transitions, bound 1 far more than the
        # remaining budget: only bound 0 may be certified.
        assert result.certified_bound in (None, 0)


class TestRobustness:
    """A dead worker's shard is requeued; exhausted retries surface
    the items as unexplored instead of silently dropping them."""

    def test_crash_recovery_matches_serial(self):
        serial = ChessChecker(bluetooth(buggy=True)).check(max_bound=1)
        crashed = ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1,
            workers=2,
            parallel_settings=ParallelSettings(fault_crash_workers=(0,)),
        )
        assert summary(crashed) == summary(serial)
        assert crashed.search.completed
        assert crashed.search.extras["worker_failures"] == 1
        assert crashed.search.extras["shard_retries"] >= 1

    def test_crash_without_retries_surfaces_unexplored(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            max_bound=1,
            workers=2,
            parallel_settings=ParallelSettings(
                fault_crash_workers=(0,), max_shard_retries=0
            ),
        )
        assert not result.search.completed
        assert result.search.extras["unexplored_items"] > 0
        assert result.certified_bound is None
        # The healthy worker's shards still merged into the result.
        assert result.executions > 0

    def test_all_workers_crashing_still_returns(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            max_bound=0,
            workers=2,
            parallel_settings=ParallelSettings(
                fault_crash_workers=(0, 1), max_shard_retries=1
            ),
        )
        assert not result.search.completed
        assert result.search.extras["unexplored_items"] > 0
        assert result.certified_bound is None


class TestCoordinatorDirect:
    """The coordinator API without the checker facade."""

    def test_run_returns_parallel_strategy_result(self):
        coordinator = ParallelCoordinator(
            bluetooth(buggy=True), workers=2, max_bound=1
        )
        result = coordinator.run()
        assert result.strategy == "icb-parallel"
        assert result.extras["completed_bound"] == 1
        assert result.extras["workers"] == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ParallelCoordinator(bluetooth(), workers=0)
        with pytest.raises(ValueError):
            ParallelCoordinator(bluetooth(), workers=2, max_bound=-1)
