"""Iterative context bounding: Algorithm 1's guarantees."""

from __future__ import annotations

import pytest

from repro import (
    ChessChecker,
    DepthFirstSearch,
    IterativeContextBounding,
    SearchLimits,
)
from repro.programs import toy
from repro.theory import brute_force_minimal_bug, count_by_preemptions


class TestBoundOrdering:
    """ICB explores executions in increasing preemption order."""

    def test_first_bug_is_preemption_minimal(self):
        for program in [
            toy.atomic_counter_assert(),
            toy.lock_order_deadlock(),
            toy.use_after_free_toy(),
        ]:
            bug = ChessChecker(program).find_bug(max_bound=3)
            truth = brute_force_minimal_bug(program)
            assert bug is not None and bug.preemptions == truth, program.name

    def test_states_tagged_with_minimal_bound(self):
        program = toy.chain_program(2, 2)
        result = ChessChecker(program).check()
        # With ICB, a state's first visit happens at its minimal bound,
        # so no later visit can lower the tag.
        histogram = result.search.context.states_by_bound()
        assert sum(histogram.values()) == result.distinct_states
        assert min(histogram) == 0

    def test_completed_bound_certificate(self):
        result = ChessChecker(toy.locked_counter()).check(max_bound=2)
        assert result.certified_bound == 2
        assert not result.found_bug

    def test_zero_bound_reaches_terminal_states(self):
        """Even c=0 explores complete executions (unbounded depth)."""
        result = ChessChecker(toy.chain_program(2, 3)).check(max_bound=0)
        assert result.executions >= 1
        assert result.search.completed or result.executions > 0

    def test_bound_zero_counts_round_robin_executions(self):
        # chain(2, k): at bound 0 the only choices happen when a thread
        # finishes; with 2 threads that yields exactly 2 executions.
        result = ChessChecker(toy.chain_program(2, 2)).check(max_bound=0)
        assert result.executions == 2


class TestCompleteness:
    """ICB without bound explores exactly the executions DFS does."""

    @pytest.mark.parametrize(
        "program",
        [toy.chain_program(2, 2), toy.chain_program(3, 1), toy.producer_consumer(2, 2)],
        ids=lambda p: p.name,
    )
    def test_same_execution_count_as_dfs(self, program):
        checker = ChessChecker(program)
        icb = checker.check()
        dfs = DepthFirstSearch().run(checker.space())
        assert icb.search.completed and dfs.completed
        assert icb.executions == dfs.executions

    @pytest.mark.parametrize(
        "program",
        [toy.chain_program(2, 2), toy.chain_program(3, 1)],
        ids=lambda p: p.name,
    )
    def test_same_states_as_dfs(self, program):
        checker = ChessChecker(program)
        icb = checker.check()
        dfs = DepthFirstSearch().run(checker.space())
        assert set(icb.search.context.states) == set(dfs.context.states)

    def test_matches_exhaustive_enumeration(self):
        program = toy.chain_program(2, 2)
        histogram = count_by_preemptions(program)
        result = ChessChecker(program).check()
        assert result.executions == sum(histogram.values())

    def test_per_bound_execution_counts_match_enumeration(self):
        program = toy.chain_program(2, 2)
        histogram = count_by_preemptions(program)
        for bound in sorted(histogram):
            expected = sum(v for c, v in histogram.items() if c <= bound)
            result = ChessChecker(program).check(max_bound=bound)
            assert result.executions == expected, f"bound {bound}"


class TestBudgets:
    def test_execution_budget_stops_search(self):
        result = ChessChecker(toy.chain_program(3, 2)).check(
            limits=SearchLimits(max_executions=5)
        )
        assert not result.search.completed
        assert result.executions == 5

    def test_stop_on_first_bug(self):
        result = ChessChecker(toy.atomic_counter_assert()).check(
            limits=SearchLimits(stop_on_first_bug=True)
        )
        assert result.found_bug
        assert not result.search.completed

    def test_max_bound_zero_valid(self):
        strategy = IterativeContextBounding(max_bound=0)
        assert strategy.max_bound == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            IterativeContextBounding(max_bound=-1)


class TestStateCaching:
    def test_caching_preserves_state_coverage(self):
        program = toy.chain_program(2, 2)
        checker = ChessChecker(program)
        plain = checker.check()
        cached = checker.check(state_caching=True)
        assert set(cached.search.context.states) == set(plain.search.context.states)

    def test_caching_reduces_transitions(self):
        program = toy.chain_program(3, 2)
        checker = ChessChecker(program)
        plain = checker.check()
        cached = checker.check(state_caching=True)
        assert cached.transitions < plain.transitions
        assert cached.search.extras["cache_hits"] > 0

    def test_caching_still_finds_bug(self):
        program = toy.atomic_counter_assert()
        result = ChessChecker(program).check(
            state_caching=True, limits=SearchLimits(stop_on_first_bug=True)
        )
        assert result.found_bug
        assert result.search.first_bug.preemptions == 1
