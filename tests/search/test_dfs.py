"""Depth-first search and depth bounding."""

from __future__ import annotations

import pytest

from repro import ChessChecker, DepthFirstSearch, SearchLimits
from repro.programs import toy


class TestUnboundedDFS:
    def test_exhausts_small_space(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = DepthFirstSearch().run(checker.space())
        assert result.completed
        assert result.executions > 0

    def test_finds_bugs_eventually(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        result = DepthFirstSearch().run(checker.space())
        assert result.found_bug

    def test_name(self):
        assert DepthFirstSearch().name == "dfs"
        assert DepthFirstSearch(depth_bound=40).name == "db:40"

    def test_respects_execution_budget(self):
        checker = ChessChecker(toy.chain_program(3, 2))
        result = DepthFirstSearch().run(
            checker.space(), limits=SearchLimits(max_executions=7)
        )
        assert result.executions == 7
        assert not result.completed


class TestDepthBounding:
    def test_shallow_bound_prunes(self):
        checker = ChessChecker(toy.chain_program(2, 3))
        result = DepthFirstSearch(depth_bound=3).run(checker.space())
        assert result.completed
        assert result.extras["pruned_executions"] > 0

    def test_deep_bound_prunes_nothing(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        unbounded = DepthFirstSearch().run(checker.space())
        bounded = DepthFirstSearch(depth_bound=1000).run(checker.space())
        assert bounded.extras["pruned_executions"] == 0
        assert bounded.executions == unbounded.executions

    def test_pruned_paths_count_as_executions(self):
        checker = ChessChecker(toy.chain_program(2, 3))
        result = DepthFirstSearch(depth_bound=2).run(checker.space())
        assert result.executions == result.extras["pruned_executions"]

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            DepthFirstSearch(depth_bound=0)

    def test_shallow_bound_misses_deep_states(self):
        checker = ChessChecker(toy.chain_program(2, 3))
        shallow = DepthFirstSearch(depth_bound=3).run(checker.space())
        full = DepthFirstSearch().run(checker.space())
        assert shallow.distinct_states < full.distinct_states


class TestDFSStateCaching:
    def test_caching_reduces_transitions(self):
        checker = ChessChecker(toy.chain_program(3, 2))
        plain = DepthFirstSearch().run(checker.space())
        cached = DepthFirstSearch(state_caching=True).run(checker.space())
        assert cached.transitions < plain.transitions
        assert set(cached.context.states) == set(plain.context.states)
