"""Sleep-set partial-order reduction."""

from __future__ import annotations

import pytest

from repro import (
    BugKind,
    ChessChecker,
    DepthFirstSearch,
    ExecutionConfig,
    SchedulingPolicy,
    SleepSetDFS,
)
from repro.errors import ReproError
from repro.programs import toy

EVERY = ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)


def spaces(program):
    checker = ChessChecker(program, EVERY)
    return checker.space(), checker.space()


class TestSoundness:
    @pytest.mark.parametrize(
        "program",
        [
            toy.chain_program(2, 2),
            toy.chain_program(3, 2),
            toy.producer_consumer(2, 2),
            toy.locked_counter(2, 1),
            toy.event_handshake(2),
        ],
        ids=lambda p: p.name,
    )
    def test_same_state_coverage_as_plain_dfs(self, program):
        plain_space, por_space = spaces(program)
        plain = DepthFirstSearch().run(plain_space)
        por = SleepSetDFS().run(por_space)
        assert plain.completed and por.completed
        assert set(por.context.states) == set(plain.context.states)

    def test_finds_the_same_bugs(self):
        program = toy.lock_order_deadlock()
        plain_space, por_space = spaces(program)
        plain = DepthFirstSearch().run(plain_space)
        por = SleepSetDFS().run(por_space)
        assert plain.found_bug and por.found_bug
        assert {b.kind for b in por.bugs} == {b.kind for b in plain.bugs}
        assert BugKind.DEADLOCK in {b.kind for b in por.bugs}

    def test_finds_races(self):
        config = ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)
        checker = ChessChecker(toy.racy_counter(), config)
        por = SleepSetDFS().run(checker.space())
        assert any(b.kind is BugKind.DATA_RACE for b in por.bugs)


class TestReduction:
    @pytest.mark.parametrize(
        "program,min_factor",
        [
            (toy.chain_program(2, 2), 5),
            (toy.chain_program(3, 2), 100),
            (toy.producer_consumer(2, 2), 10),
        ],
        ids=lambda v: getattr(v, "name", v),
    )
    def test_transitions_shrink_dramatically(self, program, min_factor):
        plain_space, por_space = spaces(program)
        plain = DepthFirstSearch().run(plain_space)
        por = SleepSetDFS().run(por_space)
        assert por.transitions * min_factor <= plain.transitions

    def test_fully_independent_threads_collapse_to_one_trace(self):
        _, por_space = spaces(toy.chain_program(3, 2))
        por = SleepSetDFS().run(por_space)
        # All interleavings of disjoint-variable threads are equivalent.
        assert por.executions == 1
        assert por.extras["pruned_branches"] > 0


def test_rejects_sync_only_spaces():
    checker = ChessChecker(toy.chain_program(2, 2))  # default SYNC_ONLY
    with pytest.raises(ReproError):
        SleepSetDFS().run(checker.space())


def test_footprints_disjoint_for_disjoint_targets():
    from repro import Execution

    ex = Execution(toy.chain_program(2, 1), EVERY)
    t0, t1 = ex.enabled_threads()
    fp0 = ex.pending_footprint(t0)
    fp1 = ex.pending_footprint(t1)
    assert fp0 and fp1
    assert fp0.isdisjoint(fp1)  # distinct creation events


def test_footprints_share_common_lock():
    from repro import Execution

    ex = Execution(toy.locked_counter(2, 1), EVERY)
    main = ex.enabled_threads()[0]
    while main in ex.enabled_threads():  # spawn both workers, block on join
        ex.execute(main)
    w0, w1 = ex.enabled_threads()
    ex.execute(w0)  # START; pending is now the lock acquire
    ex.execute(w1)  # START; pending is now the lock acquire
    assert ex.pending_effect(w0).kind.value == "acquire"
    assert ex.pending_effect(w1).kind.value == "acquire"
    assert not ex.pending_footprint(w0).isdisjoint(ex.pending_footprint(w1))
