"""The PCT randomized-priority strategy (extension)."""

from __future__ import annotations

import pytest

from repro import ChessChecker, PCTScheduler, SearchLimits
from repro.programs import toy


class TestPCT:
    def test_reproducible_given_seed(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        a = PCTScheduler(depth=2, executions=20, seed=5).run(checker.space())
        b = PCTScheduler(depth=2, executions=20, seed=5).run(checker.space())
        assert a.history == b.history

    def test_depth_one_schedules_without_change_points(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = PCTScheduler(depth=1, executions=10, seed=0).run(checker.space())
        assert result.executions == 10
        # With fixed priorities, each run is a priority-ordered
        # round-robin: no preemptions at all.
        assert result.context.max_preemptions == 0

    def test_depth_two_finds_single_preemption_bug(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        result = PCTScheduler(depth=2, executions=300, max_steps=40, seed=1).run(
            checker.space(), limits=SearchLimits(stop_on_first_bug=True)
        )
        assert result.found_bug
        assert result.first_bug.preemptions >= 1

    def test_witnesses_have_few_preemptions(self):
        """PCT's point: its schedules carry at most depth-1 demotions,
        so witnesses stay simple, unlike uniform random's."""
        checker = ChessChecker(toy.atomic_counter_assert())
        result = PCTScheduler(depth=2, executions=300, max_steps=40, seed=1).run(
            checker.space(), limits=SearchLimits(stop_on_first_bug=True)
        )
        assert result.found_bug
        # One demotion can cause a couple of observable switches, but
        # nothing like uniform random's tens of preemptions.
        assert result.first_bug.preemptions <= 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PCTScheduler(depth=0)
        with pytest.raises(ValueError):
            PCTScheduler(executions=0)
        with pytest.raises(ValueError):
            PCTScheduler(max_steps=0)

    def test_budget_respected(self):
        checker = ChessChecker(toy.chain_program(3, 2))
        result = PCTScheduler(depth=3, executions=10_000, seed=0).run(
            checker.space(), limits=SearchLimits(max_executions=25)
        )
        assert result.executions == 25
