"""Iterative deepening, random walk, heuristic search, contexts."""

from __future__ import annotations

import pytest

from repro import (
    ChessChecker,
    DepthFirstSearch,
    EnabledThreadsHeuristic,
    IterativeDeepening,
    RandomWalk,
    SearchContext,
    SearchLimits,
)
from repro.programs import toy


class TestIterativeDeepening:
    def test_terminates_when_bound_suffices(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = IterativeDeepening(initial_bound=2, step=2).run(checker.space())
        assert result.completed
        assert result.extras["completed_depth"] is not None
        assert result.extras["bounds_run"][0] == 2

    def test_covers_same_states_as_dfs(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        idfs = IterativeDeepening(initial_bound=2, step=2).run(checker.space())
        dfs = DepthFirstSearch().run(checker.space())
        assert set(dfs.context.states) <= set(idfs.context.states)

    def test_max_bound_stops_deepening(self):
        checker = ChessChecker(toy.chain_program(2, 4))
        result = IterativeDeepening(initial_bound=2, step=2, max_bound=4).run(
            checker.space()
        )
        assert result.extras["bounds_run"] == [2, 4]
        assert result.extras["completed_depth"] is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            IterativeDeepening(initial_bound=0)
        with pytest.raises(ValueError):
            IterativeDeepening(step=0)

    def test_name_encodes_parameters(self):
        assert IterativeDeepening(initial_bound=100, step=50).name == "idfs:100+50"


class TestRandomWalk:
    def test_reproducible_given_seed(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        a = RandomWalk(executions=20, seed=42).run(checker.space())
        b = RandomWalk(executions=20, seed=42).run(checker.space())
        assert a.history == b.history

    def test_different_seeds_differ(self):
        checker = ChessChecker(toy.chain_program(3, 2))
        a = RandomWalk(executions=30, seed=1).run(checker.space())
        b = RandomWalk(executions=30, seed=2).run(checker.space())
        # Not guaranteed in principle, overwhelmingly likely in practice.
        assert a.history != b.history or a.context.states != b.context.states

    def test_completes_requested_executions(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = RandomWalk(executions=15, seed=0).run(checker.space())
        assert result.executions == 15

    def test_can_find_shallow_bug(self):
        checker = ChessChecker(toy.racy_counter())
        result = RandomWalk(executions=50, seed=3).run(checker.space())
        assert result.found_bug

    def test_rejects_zero_executions(self):
        with pytest.raises(ValueError):
            RandomWalk(executions=0)


class TestEnabledThreadsHeuristic:
    def test_exhausts_small_space(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        best_first = EnabledThreadsHeuristic().run(checker.space())
        dfs = DepthFirstSearch().run(checker.space())
        assert best_first.completed
        assert set(best_first.context.states) == set(dfs.context.states)

    def test_respects_budget(self):
        checker = ChessChecker(toy.chain_program(3, 2))
        result = EnabledThreadsHeuristic().run(
            checker.space(), limits=SearchLimits(max_transitions=100)
        )
        assert not result.completed
        assert result.transitions == 100


class TestSearchContext:
    def test_states_by_bound_histogram_sums(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = checker.check()
        histogram = result.search.context.states_by_bound()
        assert sum(histogram.values()) == result.distinct_states

    def test_coverage_curve_monotone_to_one(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        curve = checker.check().search.context.coverage_curve()
        fractions = [f for _, f in curve]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    def test_history_is_monotone(self):
        checker = ChessChecker(toy.chain_program(2, 3))
        result = checker.check()
        history = result.search.history
        assert all(
            x1 < x2 and y1 <= y2
            for (x1, y1), (x2, y2) in zip(history, history[1:])
        )

    def test_bug_dedup_keeps_minimal_witness(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        result = checker.check(max_bound=2)  # sees the bug at 1 and 2
        lost = [b for b in result.bugs if "lost update" in b.message]
        assert len(lost) == 1
        assert lost[0].preemptions == 1

    def test_shared_context_accumulates_across_strategies(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        ctx = SearchContext()
        DepthFirstSearch(depth_bound=3).run(checker.space(), context=ctx)
        first = len(ctx.states)
        DepthFirstSearch().run(checker.space(), context=ctx)
        assert len(ctx.states) >= first

    def test_table1_maxima_recorded(self):
        checker = ChessChecker(toy.chain_program(2, 2))
        result = checker.check()
        ctx = result.search.context
        assert ctx.max_steps > 0
        assert ctx.max_blocking > 0
        assert ctx.max_preemptions >= 1
