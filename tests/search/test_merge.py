"""SearchResult.merge: folding disjoint explorations together."""

from __future__ import annotations

import pytest

from repro import BugKind, BugReport, SearchContext, SearchLimits, SearchResult, ThreadId


def make_result(
    states=None,
    bugs=(),
    executions=0,
    transitions=0,
    completed=True,
    stop_reason="exhausted state space",
    extras=None,
    history=(),
):
    ctx = SearchContext(SearchLimits())
    ctx.states = dict(states or {})
    for bug in bugs:
        ctx.bugs[bug.signature] = bug
    ctx.executions = executions
    ctx.transitions = transitions
    ctx.history = list(history)
    return SearchResult(
        strategy="icb",
        completed=completed,
        stop_reason=stop_reason,
        context=ctx,
        extras=dict(extras or {}),
    )


def tid(*path, label=""):
    return ThreadId(tuple(path), label)


def bug(kind=BugKind.ASSERTION, message="boom", preemptions=0, schedule=()):
    return BugReport(
        kind=kind, message=message, preemptions=preemptions, schedule=tuple(schedule)
    )


class TestMerge:
    def test_sums_and_unions(self):
        a = make_result(states={1: 0, 2: 1}, executions=3, transitions=30)
        b = make_result(states={2: 0, 3: 2}, executions=4, transitions=40)
        merged = SearchResult.merge([a, b])
        assert merged.executions == 7
        assert merged.transitions == 70
        assert merged.context.states == {1: 0, 2: 0, 3: 2}

    def test_bug_dedup_keeps_minimal_preemptions(self):
        worse = bug(preemptions=2, schedule=(tid(0), tid(1)))
        better = bug(preemptions=1, schedule=(tid(1), tid(0)))
        merged = SearchResult.merge([make_result(bugs=[worse]), make_result(bugs=[better])])
        assert len(merged.bugs) == 1
        assert merged.first_bug.preemptions == 1

    def test_bug_dedup_tie_break_is_order_independent(self):
        x = bug(preemptions=1, schedule=(tid(0), tid(1)))
        y = bug(preemptions=1, schedule=(tid(1), tid(0)))
        one = SearchResult.merge([make_result(bugs=[x]), make_result(bugs=[y])])
        two = SearchResult.merge([make_result(bugs=[y]), make_result(bugs=[x])])
        assert one.first_bug.identity == two.first_bug.identity
        assert one.first_bug.identity == x.identity  # lexicographically smaller

    def test_distinct_defects_both_survive(self):
        race = bug(kind=BugKind.DATA_RACE, message="race on x", preemptions=2)
        dead = bug(kind=BugKind.DEADLOCK, message="deadlock", preemptions=1)
        merged = SearchResult.merge([make_result(bugs=[race]), make_result(bugs=[dead])])
        assert len(merged.bugs) == 2
        assert merged.first_bug.kind == BugKind.DEADLOCK  # fewest preemptions first

    def test_completed_and_stop_reason_defaults(self):
        ok = make_result()
        stopped = make_result(completed=False, stop_reason="execution budget 5 reached")
        merged = SearchResult.merge([ok, stopped])
        assert not merged.completed
        assert merged.stop_reason == "execution budget 5 reached"
        assert SearchResult.merge([ok, ok]).completed

    def test_explicit_overrides(self):
        merged = SearchResult.merge(
            [make_result()], strategy="icb-parallel", completed=False, stop_reason="x"
        )
        assert merged.strategy == "icb-parallel"
        assert not merged.completed
        assert merged.stop_reason == "x"

    def test_completed_bound_takes_minimum(self):
        a = make_result(extras={"completed_bound": 2})
        b = make_result(extras={"completed_bound": 1})
        assert SearchResult.merge([a, b]).extras["completed_bound"] == 1
        c = make_result(extras={"completed_bound": None})
        assert SearchResult.merge([a, c]).extras["completed_bound"] is None

    def test_history_concatenates_with_offsets(self):
        a = make_result(executions=2, history=[(1, 5), (2, 9)])
        b = make_result(executions=2, history=[(1, 4), (2, 12)])
        merged = SearchResult.merge([a, b])
        assert [e for e, _ in merged.history] == [1, 2, 3, 4]
        distinct = [s for _, s in merged.history]
        assert distinct == sorted(distinct)  # forced monotone

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            SearchResult.merge([])
