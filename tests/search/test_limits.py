"""SearchLimits budgets: serial termination and field preservation."""

from __future__ import annotations

from repro import ChessChecker, SearchLimits
from repro.programs.bluetooth import bluetooth


class TestWithStopOnFirstBug:
    def test_preserves_every_field(self):
        base = SearchLimits(max_executions=7, max_transitions=11, max_seconds=1.5)
        stopped = base.with_stop_on_first_bug()
        assert stopped.stop_on_first_bug
        assert stopped.max_executions == 7
        assert stopped.max_transitions == 11
        assert stopped.max_seconds == 1.5
        # The original is untouched (SearchLimits is frozen).
        assert not base.stop_on_first_bug

    def test_can_clear_the_flag(self):
        limits = SearchLimits(stop_on_first_bug=True).with_stop_on_first_bug(False)
        assert not limits.stop_on_first_bug


class TestSerialBudgets:
    def test_transition_budget_terminates_icb(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            limits=SearchLimits(max_transitions=200)
        )
        assert not result.search.completed
        assert "transition budget" in result.search.stop_reason
        assert result.transitions == 200

    def test_execution_budget_terminates_icb(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            limits=SearchLimits(max_executions=10)
        )
        assert not result.search.completed
        assert "execution budget" in result.search.stop_reason
        assert result.executions == 10

    def test_time_budget_terminates_icb(self):
        result = ChessChecker(bluetooth(buggy=True)).check(
            limits=SearchLimits(max_seconds=0.0)
        )
        assert not result.search.completed
        assert "time budget" in result.search.stop_reason


class TestFindBugPreservesCallerLimits:
    """find_bug must not rebuild limits by hand (regression guard)."""

    def test_transition_cap_respected(self):
        # The minimal bluetooth bug needs more than 50 transitions to
        # reach; with the cap preserved, find_bug must come back empty.
        bug = ChessChecker(bluetooth(buggy=True)).find_bug(
            limits=SearchLimits(max_transitions=50)
        )
        assert bug is None

    def test_bug_found_when_budget_allows(self):
        bug = ChessChecker(bluetooth(buggy=True)).find_bug(
            limits=SearchLimits(max_transitions=5000)
        )
        assert bug is not None
        assert bug.preemptions == 1
