"""The stateless HTTP front-end and its client: routing, strict wire
validation at the boundary, idempotent submits, and the client's
bounded jittered retry loop."""

from __future__ import annotations

import json

import pytest

from repro.net.client import ServiceClient, ServiceClientError
from repro.net.http_api import HttpFrontend, ServiceAPI
from repro.net.wire import WIRE_FORMAT, WIRE_VERSION, envelope, submit_to_wire
from repro.obs import Instrumentation
from repro.service.daemon import CheckingService


@pytest.fixture()
def api(tmp_path):
    service = CheckingService(tmp_path / "svc")
    return ServiceAPI(service, daemon_id="test-daemon")


def post_submit(api, body):
    return api.handle("POST", "/v1/jobs", json.dumps(body).encode("utf-8"))


# -- dispatch ----------------------------------------------------------------


def test_healthz_reports_liveness(api):
    status, body = api.handle("GET", "/v1/healthz", None)
    assert status == 200
    assert body["ok"] is True
    assert body["daemon"] == "test-daemon"
    assert body["format"] == WIRE_FORMAT and body["version"] == WIRE_VERSION


def test_unknown_paths_are_404(api):
    for path in ("/", "/v2/healthz", "/v1/nope", "/v1/jobs/x/y"):
        status, body = api.handle("GET", path, None)
        assert status == 404, path
        assert "error" in body


def test_wrong_method_is_405(api):
    status, _ = api.handle("POST", "/v1/results/job-000001", None)
    assert status == 405


@pytest.mark.parametrize(
    "raw",
    [
        b"",
        b"not json",
        json.dumps({"spec": "toy:stats-race"}).encode(),  # no envelope
        json.dumps(
            {"format": WIRE_FORMAT, "version": 99, "spec": "x"}
        ).encode(),
        json.dumps(envelope({"spec": "x", "bogus": 1})).encode(),
    ],
)
def test_malformed_submits_are_400_with_a_message(api, raw):
    status, body = api.handle("POST", "/v1/jobs", raw or None)
    assert status == 400
    assert body["error"]["message"]


def test_submit_then_fetch_then_dedup(api):
    status, body = post_submit(api, submit_to_wire("toy:stats-race", max_bound=1))
    assert status == 200
    job = body["job"]
    assert job["id"] == "job-000001"
    assert body["deduplicated"] is False
    assert len(job["identity"]) == 64
    # Identical active work deduplicates; the wire says so.
    status, again = post_submit(api, submit_to_wire("toy:stats-race", max_bound=1))
    assert again["job"]["id"] == job["id"]
    assert again["deduplicated"] is True
    status, listing = api.handle("GET", "/v1/jobs", None)
    assert [j["id"] for j in listing["jobs"]] == [job["id"]]
    status, one = api.handle("GET", f"/v1/jobs/{job['id']}", None)
    assert one["job"]["status"] == "queued"


def test_unknown_job_and_pending_result_statuses(api):
    status, body = api.handle("GET", "/v1/jobs/job-000099", None)
    assert status == 404
    assert "unknown job id" in body["error"]["message"]
    post_submit(api, submit_to_wire("toy:stats-race", max_bound=1))
    status, body = api.handle("GET", "/v1/results/job-000001", None)
    assert status == 409
    assert "is queued; no result yet" in body["error"]["message"]
    status, body = api.handle("GET", "/v1/results/job-000099", None)
    assert status == 404


def test_sync_endpoints_validate_identifiers(api):
    status, _ = api.handle("GET", "/v1/cache/not-a-key", None)
    assert status == 400
    status, _ = api.handle("GET", "/v1/cache/" + "0" * 64, None)
    assert status == 404
    status, _ = api.handle("GET", "/v1/traces/..%2Fescape", None)
    assert status == 400
    status, body = api.handle("GET", "/v1/cache", None)
    assert status == 200 and body["keys"] == []
    status, body = api.handle("GET", "/v1/traces", None)
    assert status == 200 and body["names"] == []


def test_requests_are_counted_by_obs(tmp_path):
    obs = Instrumentation()
    api = ServiceAPI(CheckingService(tmp_path / "svc"), obs=obs)
    api.handle("GET", "/v1/healthz", None)
    api.handle("GET", "/v1/jobs/job-000099", None)
    assert obs.metrics.counters["http_requests"] == 2
    status, stats = api.handle("GET", "/v1/stats", None)
    assert stats["counters"]["http_requests"] == 2


# -- the live server and its client ------------------------------------------


@pytest.fixture()
def frontend(tmp_path):
    service = CheckingService(tmp_path / "svc")
    front = HttpFrontend(ServiceAPI(service, daemon_id="live"), port=0).start()
    yield front
    front.close()


def test_client_round_trip_over_real_http(frontend):
    client = ServiceClient(frontend.url, timeout=5.0)
    assert client.healthz()["daemon"] == "live"
    job = client.submit("toy:stats-race", max_bound=1)
    assert job["id"] == "job-000001"
    # Resubmit (as after a lost response): same job, not a duplicate.
    assert client.submit("toy:stats-race", max_bound=1)["id"] == job["id"]
    assert [j["id"] for j in client.jobs()] == [job["id"]]
    assert client.job(job["id"])["status"] == "queued"
    stats = client.stats()
    assert stats["jobs"] == {"queued": 1}
    # The service behind the API runs the job; the result appears.
    frontend.api.service.serve(once=True)
    assert client.job(job["id"])["status"] == "done"
    result = client.results(job["id"])
    assert result["found_bug"] is True
    assert client.wait(job["id"])["status"] == "done"


def test_client_errors_carry_the_servers_message(frontend):
    client = ServiceClient(frontend.url, timeout=5.0)
    with pytest.raises(ServiceClientError) as excinfo:
        client.job("job-000099")
    assert excinfo.value.status == 404
    assert "unknown job id" in str(excinfo.value)
    client.submit("toy:stats-race", max_bound=1)
    with pytest.raises(ServiceClientError) as excinfo:
        client.results("job-000001")
    assert excinfo.value.status == 409
    assert "no result yet" in str(excinfo.value)


def test_client_retries_connection_failures_with_jittered_backoff(monkeypatch):
    # Nothing listens on this port (bind-then-close reserves a dead one).
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    sleeps = []
    monkeypatch.setattr("repro.net.client.time.sleep", sleeps.append)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=1.0,
                           retries=3, backoff=0.1)
    with pytest.raises(ServiceClientError) as excinfo:
        client.healthz()
    assert "after 4 attempt(s)" in str(excinfo.value)
    assert len(sleeps) == 3
    # Exponential base delays 0.1, 0.2, 0.4 scaled by jitter in [0.5, 1).
    for base, actual in zip((0.1, 0.2, 0.4), sleeps):
        assert base * 0.5 <= actual < base


def test_client_does_not_retry_4xx(frontend, monkeypatch):
    sleeps = []
    monkeypatch.setattr("repro.net.client.time.sleep", sleeps.append)
    client = ServiceClient(frontend.url, retries=3)
    with pytest.raises(ServiceClientError):
        client.job("job-000099")
    assert sleeps == []  # a 404 is a fact, not a transient
