"""The fleet acceptance tests: two daemons sharing one service root
complete every job exactly once -- including when one of them is
SIGKILLed mid-run -- and the merged results are byte-identical to a
single-daemon run of the same submissions (modulo provenance)."""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import repro
from repro.net import FleetDaemon, ServiceClient
from repro.service import CheckingService
from repro.service.jobs import JOURNAL_NAME, JobQueue

#: (spec, bound) submissions: distinct work keys, no stop-on-first-bug,
#: so neither cross-job caching nor the corpus fast path can make the
#: fleet and single-daemon explorations diverge.
QUICK_JOBS = [
    ("toy:stats-race", 1),
    ("toy:racy-counter", 1),
    ("toy:uaf", 1),
    ("toy:atomic-counter", 1),
    ("toy:deadlock", 1),
    ("toy:stats-assert", 1),
]

#: Long enough that a promptly-delivered SIGKILL lands mid-search.
KILL_JOBS = [
    ("wsq:pop-race", 2),
    ("dryad:use-after-free", 1),
    ("bluetooth", 2),
    ("wsq:steal-stale-tail", 2),
]

#: Result keys recording *how* the answer was produced (served from
#: cache, replayed corpus witness, resumed from a checkpoint) rather
#: than what it is; everything else must match byte for byte.
PROVENANCE = ("cache_hit", "corpus_fastpath", "resumed")


def canonical_results(root):
    """job id -> canonical result bytes, provenance stripped."""
    out = {}
    for path in sorted((pathlib.Path(root) / "results").glob("*.json")):
        payload = json.loads(path.read_text())
        for key in PROVENANCE:
            payload.pop(key, None)
        out[payload["job"]] = json.dumps(payload, sort_keys=True)
    return out


def single_daemon_results(root, jobs):
    service = CheckingService(root)
    for spec, bound in jobs:
        service.queue.submit(spec, max_bound=bound)
    service.serve(once=True)
    return canonical_results(root)


def test_two_daemons_one_root_every_job_exactly_once(tmp_path):
    root = tmp_path / "fleet"
    alpha = FleetDaemon(root, daemon_id="alpha", http_port=0).start()
    beta = FleetDaemon(root, daemon_id="beta").start()
    try:
        client = ServiceClient(alpha.url, timeout=5.0)
        ids = [
            client.submit(spec, max_bound=bound)["id"]
            for spec, bound in QUICK_JOBS
        ]
        threads = [
            threading.Thread(target=daemon.serve, kwargs={"once": True})
            for daemon in (alpha, beta)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "a daemon failed to drain the queue"
        records = {r["id"]: r for r in client.jobs()}
        assert sorted(records) == sorted(ids)
        for job_id in ids:
            record = records[job_id]
            # Exactly once: one honoured claim, one honoured completion.
            assert record["status"] == "done", record
            assert record["attempts"] == 1
            assert record["fence"] == 1
            assert (root / "results" / f"{job_id}.json").exists()
    finally:
        alpha.close()
        beta.close()
    # Both daemons ran under uncontended once-mode: between them every
    # job was claimed, and the merged answers equal a solo run's.
    assert canonical_results(root) == single_daemon_results(
        tmp_path / "solo", QUICK_JOBS
    )


# -- the crash acceptance test (fresh interpreters, real HTTP) ---------------


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    # Checkpoints bind to the hash seed (state fingerprints use it);
    # a takeover resumes another process's checkpoint, so pin it.
    env["PYTHONHASHSEED"] = "0"
    return env


def _start_daemon(root, daemon_id):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(root),
            "--fleet", "--http", "0", "--daemon-id", daemon_id,
            "--lease-ttl", "1", "--poll-interval", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_env(),
        start_new_session=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on http://"), line
    return proc, line.split("listening on ", 1)[1]


def _kill(proc):
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()


def test_sigkilled_daemon_is_taken_over_without_double_execution(tmp_path):
    root = tmp_path / "fleet"
    alpha, alpha_url = _start_daemon(root, "alpha")
    beta, beta_url = _start_daemon(root, "beta")
    victim_job = None
    try:
        client = ServiceClient(alpha_url, timeout=10.0)
        ids = [
            client.submit(spec, max_bound=bound)["id"]
            for spec, bound in KILL_JOBS
        ]
        # SIGKILL beta the moment it is seen running a job.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            running = [
                r for r in client.jobs()
                if r["status"] == "running" and r["owner"] == "beta"
            ]
            if running:
                victim_job = running[0]["id"]
                break
            time.sleep(0.02)
        assert victim_job is not None, "beta never claimed a job"
        _kill(beta)
        # Alpha must expire beta's lease, take the job over, resume it
        # from the shared checkpoint, and finish everything.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            records = {r["id"]: r for r in client.jobs()}
            if all(records[i]["status"] == "done" for i in ids):
                break
            assert all(records[i]["status"] != "failed" for i in ids)
            time.sleep(0.1)
        records = {r["id"]: r for r in client.jobs()}
        assert all(records[i]["status"] == "done" for i in ids), records
    finally:
        _kill(beta)
        _kill(alpha)

    events = [
        json.loads(line)
        for line in (root / JOURNAL_NAME).read_text().splitlines()
    ]
    # The takeover is in the journal: beta's lease on the victim job
    # expired and the next claim carried a higher fence.
    expiries = [
        e for e in events
        if e["event"] == "lease_expired" and e["id"] == victim_job
    ]
    assert expiries, "no lease takeover was journalled"
    assert "lease of beta expired" in expiries[0]["error"]
    victim = JobQueue(root).get(victim_job)
    assert victim.status == "done"
    assert victim.fence >= 2 and victim.attempts >= 2
    # Exactly once: a SIGKILLed owner cannot acknowledge, so every job
    # has exactly one honoured completion in the journal.
    completions = {}
    for event in events:
        if event["event"] == "completed":
            completions[event["id"]] = completions.get(event["id"], 0) + 1
    assert completions == {job_id: 1 for job_id in completions}
    assert set(completions) == {job.id for job in JobQueue(root).jobs()}
    # And the merged fleet results are byte-identical (modulo
    # provenance: the victim's resumed flag) to a solo run's.
    assert canonical_results(root) == single_daemon_results(
        tmp_path / "solo", KILL_JOBS
    )


def test_completion_pushes_the_entry_to_peers(tmp_path):
    """Push-on-complete: the moment a daemon finishes a job, its peers
    hold the cache entry -- before any anti-entropy sweep runs."""
    from repro.obs import Instrumentation
    from repro.net.sync import job_cache_key

    cold = FleetDaemon(
        tmp_path / "cold", daemon_id="cold", http_port=0, sync_interval=1e9
    ).start()
    try:
        obs = Instrumentation()
        warm = FleetDaemon(
            tmp_path / "warm",
            daemon_id="warm",
            peers=[cold.url],
            obs=obs,
            sync_interval=1e9,  # no sweeps: only the push can deliver
        ).start()
        warm.service.queue.submit("toy:stats-race", max_bound=1)
        assert warm.serve(once=True) == 1
        job = warm.service.queue.jobs()[0]
        key = job_cache_key(job)
        mirrored = cold.service.cache.path_for(key)
        assert mirrored.exists()
        assert (
            mirrored.read_text()
            == warm.service.cache.path_for(key).read_text()
        )
        # The delivery is visible in `repro stats`: the counter, its
        # summary line, and the peer's /v1/stats counters block.
        assert obs.metrics.counters["cache_pushes"] == 1
        assert "cache pushes" in obs.metrics.snapshot().summary()
    finally:
        cold.close()
