"""The CLI's remote paths: ``repro submit/status/results --server``
against a live front-end in fresh interpreters, including the clear
non-zero-exit errors for unknown job ids and unreachable daemons."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.net.http_api import HttpFrontend, ServiceAPI
from repro.service.daemon import CheckingService


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONHASHSEED"] = "0"
    return env


def _run(*args, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=_env(),
    )
    if check:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


@pytest.fixture()
def frontend(tmp_path):
    service = CheckingService(tmp_path / "svc")
    front = HttpFrontend(ServiceAPI(service, daemon_id="cli"), port=0).start()
    yield front
    front.close()


def test_submit_status_results_over_server(frontend):
    url = frontend.url
    job_id = _run("submit", "--server", url, "toy:stats-race",
                  "--bound", "1").stdout.strip()
    assert job_id == "job-000001"
    # Resubmitting over the wire re-lands on the same job.
    assert _run("submit", "--server", url, "toy:stats-race",
                "--bound", "1").stdout.strip() == job_id
    status = json.loads(_run("status", "--server", url, "--json").stdout)
    assert [job["status"] for job in status] == ["queued"]
    frontend.api.service.serve(once=True)
    one = json.loads(_run("status", "--server", url, job_id, "--json").stdout)
    assert [job["status"] for job in one] == ["done"]
    payload = json.loads(_run("results", "--server", url, job_id).stdout)
    assert payload["job"] == job_id
    assert payload["found_bug"] is True


def test_unknown_job_over_server_is_a_clear_error(frontend):
    url = frontend.url
    proc = _run("status", "--server", url, "job-000099", check=False)
    assert proc.returncode == 1
    assert "error:" in proc.stderr and "unknown job id" in proc.stderr
    proc = _run("results", "--server", url, "job-000099", check=False)
    assert proc.returncode == 1
    assert "error:" in proc.stderr and "unknown job id" in proc.stderr


def test_pending_result_over_server_is_a_clear_error(frontend):
    url = frontend.url
    job_id = _run("submit", "--server", url, "toy:stats-race",
                  "--bound", "1").stdout.strip()
    proc = _run("results", "--server", url, job_id, check=False)
    assert proc.returncode == 1
    assert f"job {job_id} is queued; no result yet" in proc.stderr


def test_unreachable_server_is_a_clear_error():
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    proc = _run("submit", "--server", f"http://127.0.0.1:{port}",
                "toy:stats-race", "--retries", "0", "--timeout", "1",
                check=False)
    assert proc.returncode == 1
    assert "error:" in proc.stderr
