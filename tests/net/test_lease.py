"""Lease-fenced claims: journal order arbitrates races, fencing
tokens make completion exactly-once, expiry hands dead daemons' work
over without losing or duplicating it."""

from __future__ import annotations

import time

from repro.net.lease import Lease, LeaseManager, LeaseRenewer
from repro.service.jobs import JobQueue


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def manager(queue, daemon, clock, ttl=10.0):
    return LeaseManager(queue, daemon, ttl=ttl, clock=clock)


def test_claim_takes_the_best_job_under_a_fenced_lease(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    low = queue.submit("toy:racy-counter")
    high = queue.submit("bluetooth", priority=5)
    job, lease = manager(queue, "alpha", clock).claim()
    assert job.id == high.id
    assert job.status == "running"
    assert job.owner == "alpha"
    assert job.fence == 1 and lease.fence == 1
    assert job.lease_expires == clock.now + 10.0
    # The other job is untouched and claimable by a peer.
    other, _ = manager(queue, "beta", clock).claim()
    assert other.id == low.id and other.owner == "beta"


def test_claim_race_is_arbitrated_by_journal_order(tmp_path):
    queue = JobQueue(tmp_path)
    job = queue.submit("bluetooth")
    # Both daemons computed fence 1 and appended; the journal decides.
    queue.append_claim(job.id, "alpha", 1, 2000.0)
    queue.append_claim(job.id, "beta", 1, 2000.0)
    record = queue.get(job.id)
    assert record.owner == "alpha"
    assert record.fence == 1
    assert record.attempts == 1  # the losing claim folded to a no-op
    # The loser's LeaseManager notices by re-folding.
    assert not manager(queue, "beta", FakeClock()).owns(
        Lease(job.id, "beta", 1, 2000.0)
    )


def test_expired_lease_is_taken_over_with_a_higher_fence(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    job = queue.submit("bluetooth")
    alpha = manager(queue, "alpha", clock, ttl=5.0)
    beta = manager(queue, "beta", clock, ttl=5.0)
    _, alpha_lease = alpha.claim()
    # While alpha is alive nothing expires.
    assert beta.expire_stale() == []
    clock.advance(6.0)
    expired = beta.expire_stale()
    assert [j.id for j in expired] == [job.id]
    assert queue.get(job.id).status == "queued"
    record, beta_lease = beta.claim()
    assert record.owner == "beta" and record.fence == 2
    # The resurrected alpha finishes its stale run: the fenced
    # completion folds to a no-op and beta still owns the job.
    assert alpha.complete(alpha_lease, result_path="stale.json") is False
    after = queue.get(job.id)
    assert after.status == "running" and after.owner == "beta"
    # Beta's current-fence completion is the one that lands.
    assert beta.complete(beta_lease, result_path="good.json") is True
    final = queue.get(job.id)
    assert final.status == "done"
    assert final.result_path == "good.json"


def test_renew_pushes_the_deadline_and_fails_after_takeover(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    queue.submit("bluetooth")
    alpha = manager(queue, "alpha", clock, ttl=5.0)
    beta = manager(queue, "beta", clock, ttl=5.0)
    job, lease = alpha.claim()
    clock.advance(4.0)
    assert alpha.renew(lease) is True
    assert queue.get(job.id).lease_expires == clock.now + 5.0
    # A renewal outruns expiry: 4s later the original deadline has
    # passed but the renewed one has not.
    clock.advance(4.0)
    assert beta.expire_stale() == []
    # Past the renewed deadline the job is taken over, after which
    # alpha's renewals fail and it knows to stand down.
    clock.advance(2.0)
    assert [j.id for j in beta.expire_stale()] == [job.id]
    beta.claim()
    assert alpha.renew(lease) is False
    assert alpha.owns(lease) is False


def test_fenced_failure_respects_takeover(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    job = queue.submit("bluetooth")
    alpha = manager(queue, "alpha", clock, ttl=5.0)
    beta = manager(queue, "beta", clock, ttl=5.0)
    _, alpha_lease = alpha.claim()
    clock.advance(6.0)
    beta.expire_stale()
    _, beta_lease = beta.claim()
    # Alpha's stale fenced failure cannot clobber beta's run...
    alpha.fail(alpha_lease, "stale crash", requeue=False)
    assert queue.get(job.id).status == "running"
    # ...but beta's own failure verdict lands.
    beta.fail(beta_lease, "real crash", requeue=False)
    assert queue.get(job.id).status == "failed"
    assert queue.get(job.id).error == "real crash"


def test_legacy_unleased_jobs_are_never_expired(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    job = queue.submit("bluetooth")
    queue.claim()  # a plain single-daemon "started", no lease
    clock.advance(1e6)
    assert manager(queue, "beta", clock).expire_stale() == []
    assert queue.get(job.id).status == "running"


def test_expiry_event_with_stale_fence_cannot_clobber_a_new_claim(tmp_path):
    queue = JobQueue(tmp_path)
    clock = FakeClock()
    job = queue.submit("bluetooth")
    alpha = manager(queue, "alpha", clock, ttl=5.0)
    alpha.claim()
    clock.advance(6.0)
    beta = manager(queue, "beta", clock, ttl=5.0)
    beta.expire_stale()
    beta.claim()
    # A slow third daemon appends the expiry it observed long ago,
    # carrying the old fence: the fold must ignore it.
    queue.append_expiry(job.id, 1, "gamma", error="lease of alpha expired")
    record = queue.get(job.id)
    assert record.status == "running"
    assert record.owner == "beta" and record.fence == 2


def test_lease_renewer_keeps_a_real_time_lease_alive(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit("bluetooth")
    alpha = LeaseManager(queue, "alpha", ttl=0.3)
    beta = LeaseManager(queue, "beta", ttl=0.3)
    job, lease = alpha.claim()
    with LeaseRenewer(alpha, lease) as renewer:
        time.sleep(0.8)  # several ttls; unrenewed it would lapse
        assert beta.expire_stale() == []
        assert alpha.owns(lease)
    assert renewer.lost is False


def test_lease_renewer_flags_a_lost_lease(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit("bluetooth")
    alpha = LeaseManager(queue, "alpha", ttl=0.3)
    job, lease = alpha.claim()
    with LeaseRenewer(alpha, lease) as renewer:
        # A peer breaks the lease under us (as after a long stall).
        queue.append_expiry(job.id, lease.fence, "beta", error="expired")
        deadline = time.monotonic() + 5.0
        while not renewer.lost and time.monotonic() < deadline:
            time.sleep(0.02)
    assert renewer.lost is True
