"""Cross-host cache and trace sync: the shared cache-key vocabulary,
pull-on-miss turning a peer's finished work into a local cache hit,
and idle anti-entropy convergence."""

from __future__ import annotations

import json

import pytest

from repro.net.http_api import HttpFrontend, ServiceAPI
from repro.net.sync import CacheSync, job_cache_key
from repro.obs import Instrumentation
from repro.service.cache import RESULT_CACHE_SUFFIX
from repro.service.daemon import CheckingService
from repro.service.jobs import Job
from repro.trace.format import TRACE_SUFFIX

SPEC = "toy:stats-race"


def warm_service(root):
    """A service that already checked SPEC (cache + witness trace)."""
    service = CheckingService(root)
    job = service.queue.submit(SPEC, max_bound=1)
    service.serve(once=True)
    assert service.queue.get(job.id).status == "done"
    return service


@pytest.fixture()
def warm_peer(tmp_path):
    front = HttpFrontend(
        ServiceAPI(warm_service(tmp_path / "a"), daemon_id="warm"), port=0
    ).start()
    yield front
    front.close()


def test_job_cache_key_speaks_the_checkers_vocabulary(tmp_path):
    service = warm_service(tmp_path / "svc")
    job = service.queue.jobs()[0]
    key = job_cache_key(job)
    # The daemon's own run cached its result under exactly this key.
    assert key is not None
    assert service.cache.path_for(key).exists()
    # Unresolvable specs yield no key rather than an error.
    assert job_cache_key(Job(id="x", spec="no:such-program")) is None


def test_pull_on_miss_installs_the_peers_entry(warm_peer, tmp_path):
    cold = CheckingService(tmp_path / "b")
    obs = Instrumentation()
    sync = CacheSync(cold, peers=[warm_peer.url], obs=obs)
    job = cold.queue.submit(SPEC, max_bound=1)
    key = sync.pull_for_job(job)
    assert key == job_cache_key(job)
    path = cold.cache.path_for(key)
    assert path.exists()
    assert json.loads(path.read_text())["key"] == key
    assert obs.metrics.counters["cache_sync_hits"] == 1
    # Already warm: a second pull is a no-op.
    assert sync.pull_for_job(job) is None
    # The pulled entry makes the local run a pure cache hit.
    cold.serve(once=True)
    record = cold.queue.get(job.id)
    assert record.status == "done" and record.cache_hit is True


def test_anti_entropy_converges_and_is_idempotent(warm_peer, tmp_path):
    cold = CheckingService(tmp_path / "b")
    sync = CacheSync(cold, peers=[warm_peer.url])
    warm = warm_peer.api.service
    want_keys = {
        p.name[: -len(RESULT_CACHE_SUFFIX)]
        for p in warm.cache.root.iterdir()
        if p.name.endswith(RESULT_CACHE_SUFFIX)
    }
    want_traces = {
        p.name for p in warm.traces_dir.iterdir()
        if p.name.endswith(TRACE_SUFFIX)
    }
    assert want_keys and want_traces  # the warm run produced both
    pulled = sync.anti_entropy()
    assert pulled == {"results": len(want_keys), "traces": len(want_traces)}
    assert {
        p.name[: -len(RESULT_CACHE_SUFFIX)]
        for p in cold.cache.root.iterdir()
        if p.name.endswith(RESULT_CACHE_SUFFIX)
    } == want_keys
    # Content-addressed stores converge: the sweep is idempotent.
    assert sync.anti_entropy() == {"results": 0, "traces": 0}


def test_synced_bytes_are_identical_to_the_peers(warm_peer, tmp_path):
    cold = CheckingService(tmp_path / "b")
    CacheSync(cold, peers=[warm_peer.url]).anti_entropy()
    warm = warm_peer.api.service
    for path in warm.cache.root.iterdir():
        mirrored = cold.cache.root / path.name
        assert json.loads(mirrored.read_text()) == json.loads(path.read_text())
    for path in warm.traces_dir.iterdir():
        mirrored = cold.traces_dir / path.name
        assert json.loads(mirrored.read_text()) == json.loads(path.read_text())


def test_a_dead_peer_is_not_an_error(tmp_path):
    cold = CheckingService(tmp_path / "b")
    sync = CacheSync(cold, peers=["http://127.0.0.1:9"])  # discard port
    job = cold.queue.submit(SPEC, max_bound=1)
    assert sync.pull_for_job(job) is None
    assert sync.anti_entropy() == {"results": 0, "traces": 0}


def test_foreign_or_mismatched_entries_are_rejected(tmp_path):
    cold = CheckingService(tmp_path / "b")
    sync = CacheSync(cold)
    key = "ab" * 32
    assert sync._store_entry(key, {"format": "wrong", "key": key}, "peer") is False
    assert sync._store_entry(key, "not a dict", "peer") is False
    assert sync._store_trace("../escape" + TRACE_SUFFIX, {}, "peer") is False
    assert not cold.cache.path_for(key).exists()


class TestPushOnComplete:
    def cold_frontend(self, tmp_path):
        return HttpFrontend(
            ServiceAPI(CheckingService(tmp_path / "cold"), daemon_id="cold"),
            port=0,
        ).start()

    def test_fresh_entry_lands_on_the_peer(self, tmp_path):
        warm = warm_service(tmp_path / "warm")
        front = self.cold_frontend(tmp_path)
        try:
            obs = Instrumentation()
            sync = CacheSync(warm, peers=[front.url], obs=obs)
            job = warm.queue.jobs()[0]
            key = job_cache_key(job)
            assert sync.push_on_complete(job) == 1
            mirrored = front.api.service.cache.path_for(key)
            assert mirrored.exists()
            assert json.loads(mirrored.read_text()) == json.loads(
                warm.cache.path_for(key).read_text()
            )
            assert obs.metrics.counters["cache_pushes"] == 1
        finally:
            front.close()

    def test_push_is_idempotent(self, tmp_path):
        warm = warm_service(tmp_path / "warm")
        front = self.cold_frontend(tmp_path)
        try:
            sync = CacheSync(warm, peers=[front.url])
            job = warm.queue.jobs()[0]
            # A re-push re-offers the same content-addressed bytes;
            # the peer reports it already had them, delivery still
            # counts as accepted.
            assert sync.push_on_complete(job) == 1
            assert sync.push_on_complete(job) == 1
        finally:
            front.close()

    def test_nothing_to_push_is_a_quiet_zero(self, tmp_path):
        warm = warm_service(tmp_path / "warm")
        job = warm.queue.jobs()[0]
        # No peers configured.
        assert CacheSync(warm).push_on_complete(job) == 0
        # Unresolvable spec: no key to speak of.
        front = self.cold_frontend(tmp_path)
        try:
            sync = CacheSync(warm, peers=[front.url])
            assert sync.push_on_complete(Job(id="x", spec="no:such")) == 0
        finally:
            front.close()

    def test_a_dead_peer_never_fails_the_push(self, tmp_path):
        warm = warm_service(tmp_path / "warm")
        sync = CacheSync(warm, peers=["http://127.0.0.1:9"])
        assert sync.push_on_complete(warm.queue.jobs()[0]) == 0

    def test_peer_rejects_mismatched_pushes(self, warm_peer, tmp_path):
        from repro.net.client import ServiceClient, ServiceClientError

        client = ServiceClient(warm_peer.url, retries=0)
        key = "ab" * 32
        with pytest.raises(ServiceClientError, match="not a result-cache"):
            client.push_cache_entry(key, {"format": "wrong", "key": key})
        with pytest.raises(ServiceClientError, match="malformed cache key"):
            client.push_cache_entry("nope", {"format": "wrong", "key": "nope"})
