"""The versioned wire format: strict envelopes, submit-body schema
validation, and the content-addressed job identity that makes wire
resubmits idempotent."""

from __future__ import annotations

import pytest

from repro.service.jobs import Job
from repro.net.wire import (
    WIRE_FORMAT,
    WIRE_VERSION,
    WireError,
    check_envelope,
    envelope,
    error_body,
    job_to_wire,
    submit_from_wire,
    submit_to_wire,
)


def test_envelope_stamps_format_and_version():
    body = envelope({"x": 1})
    assert body["format"] == WIRE_FORMAT
    assert body["version"] == WIRE_VERSION
    assert body["x"] == 1
    assert check_envelope(body) is body


@pytest.mark.parametrize(
    "bad",
    [
        "not an object",
        {},
        {"format": "something-else", "version": WIRE_VERSION},
        {"format": WIRE_FORMAT, "version": WIRE_VERSION + 1},
        {"format": WIRE_FORMAT},
    ],
)
def test_check_envelope_rejects_foreign_bodies(bad):
    with pytest.raises(WireError):
        check_envelope(bad)


def test_error_body_carries_message_and_status():
    body = error_body("boom", 404)
    assert check_envelope(body)["error"] == {"message": "boom", "status": 404}


def test_submit_round_trip():
    body = submit_to_wire(
        "wsq:pop-race",
        priority=3,
        max_bound=2,
        workers=2,
        stop_on_first_bug=True,
        max_executions=100,
        state_caching=True,
    )
    kwargs = submit_from_wire(body)
    assert kwargs == {
        "spec": "wsq:pop-race",
        "priority": 3,
        "max_bound": 2,
        "workers": 2,
        "stop_on_first_bug": True,
        "max_executions": 100,
        "max_transitions": None,
        "state_caching": True,
    }


def test_submit_defaults_round_trip_minimal():
    kwargs = submit_from_wire(submit_to_wire("toy:stats-race"))
    assert kwargs["spec"] == "toy:stats-race"
    assert kwargs["max_bound"] is None
    assert kwargs["stop_on_first_bug"] is False


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda b: b.pop("spec"), "missing required field 'spec'"),
        (lambda b: b.update(spec=7), "field 'spec' must be str"),
        (lambda b: b.update(priority="high"), "field 'priority' must be int"),
        (lambda b: b.update(max_bound=True), "field 'max_bound' must be int?"),
        (lambda b: b.update(stop_on_first_bug=1), "must be bool"),
        (lambda b: b.update(bogus=1), "unknown field 'bogus'"),
    ],
)
def test_submit_schema_violations_name_the_offender(mutate, fragment):
    body = submit_to_wire("toy:stats-race")
    mutate(body)
    with pytest.raises(WireError) as excinfo:
        submit_from_wire(body)
    assert fragment in str(excinfo.value)


def test_job_to_wire_carries_the_content_address():
    job = Job(id="job-000007", spec="bluetooth", max_bound=2, seq=7)
    data = job_to_wire(job)
    assert data["id"] == "job-000007"
    assert data["identity"] == job.identity()
    assert len(data["identity"]) == 64


def test_identity_names_the_work_not_the_submission():
    a = Job(id="a", spec="bluetooth", max_bound=2, priority=0, seq=1)
    b = Job(id="b", spec="bluetooth", max_bound=2, priority=9, seq=5)
    c = Job(id="c", spec="bluetooth", max_bound=1)
    # Same work, different submission: same address.
    assert a.identity() == b.identity()
    # Different knobs are different work.
    assert a.identity() != c.identity()
