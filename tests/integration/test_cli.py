"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_builtins(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("bluetooth", "wsq", "dryad:use-after-free", "toy:deadlock"):
            assert name in out


class TestCheck:
    def test_clean_program_exits_zero(self, capsys):
        code = main(["check", "toy:dekker", "--bound", "1"])
        assert code == 0
        assert "0 bug(s)" in capsys.readouterr().out

    def test_buggy_program_exits_nonzero(self, capsys):
        code = main(["check", "toy:atomic-counter", "--stop-on-first-bug"])
        assert code == 1
        assert "lost update" in capsys.readouterr().out

    def test_bound_guarantee_printed(self, capsys):
        main(["check", "toy:dekker", "--bound", "1"])
        assert "at most 1 preemption" in capsys.readouterr().out

    def test_strategy_selection(self, capsys):
        code = main(
            ["check", "toy:racy-counter", "--strategy", "random",
             "--executions", "50", "--stop-on-first-bug"]
        )
        assert code == 1

    def test_policy_and_race_flags(self, capsys):
        code = main(
            ["check", "toy:racy-counter", "--no-race-detection", "--bound", "0"]
        )
        assert code == 0  # without race detection nothing fails at bound 0

    def test_unknown_program_errors(self):
        with pytest.raises(SystemExit):
            main(["check", "no-such-program"])

    def test_external_factory(self, capsys):
        code = main(
            ["check", "repro.programs.toy:lock_order_deadlock",
             "--stop-on-first-bug"]
        )
        assert code == 1
        assert "deadlock" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_trace(self, capsys):
        code = main(["explain", "toy:atomic-counter"])
        assert code == 1
        out = capsys.readouterr().out
        assert "preempting steps marked *" in out
        assert "preemptions: 1" in out

    def test_explain_clean_program(self, capsys):
        code = main(["explain", "toy:dekker", "--bound", "1"])
        assert code == 0
        assert "no bug found" in capsys.readouterr().out

    def test_explain_with_workers_replays_merged_witness(self, capsys):
        # Under --workers the witness comes back from worker processes;
        # explain replays it through the trace subsystem, never by
        # re-searching serially.
        code = main(["explain", "toy:atomic-counter", "--workers", "2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "replay: reproduced" in out
        assert "preempting steps marked *" in out

    def test_explain_persists_trace_dir(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main(["explain", "toy:atomic-counter", "--trace-dir", str(corpus)])
        assert code == 1
        assert list(corpus.glob("*.trace.json"))


class TestTrace:
    def save(self, tmp_path, capsys):
        out = tmp_path / "counter.trace.json"
        assert main(["trace", "save", "toy:atomic-counter", str(out)]) == 0
        capsys.readouterr()
        return out

    def test_save_reports_summary(self, tmp_path, capsys):
        out = tmp_path / "counter.trace.json"
        assert main(["trace", "save", "toy:atomic-counter", str(out)]) == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "saved" in printed
        assert "1 preemption(s)" in printed

    def test_save_without_bug_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "clean.trace.json"
        code = main(["trace", "save", "toy:dekker", "--bound", "1", str(out)])
        assert code == 1
        assert not out.exists()
        assert "no bug found" in capsys.readouterr().out

    def test_replay_reproduces(self, tmp_path, capsys):
        saved = self.save(tmp_path, capsys)
        assert main(["trace", "replay", str(saved)]) == 0
        assert "replay: reproduced" in capsys.readouterr().out

    def test_replay_against_wrong_program_exits_nonzero(self, tmp_path, capsys):
        saved = self.save(tmp_path, capsys)
        code = main(["trace", "replay", str(saved), "--program", "toy:deadlock"])
        assert code == 1
        assert "schedule mismatch (fingerprint)" in capsys.readouterr().out

    def test_replay_rejects_malformed_file(self, tmp_path):
        junk = tmp_path / "junk.trace.json"
        junk.write_text("{broken")
        with pytest.raises(SystemExit, match="bad trace file"):
            main(["trace", "replay", str(junk)])

    def test_minimize_writes_and_still_reproduces(self, tmp_path, capsys):
        saved = self.save(tmp_path, capsys)
        minimized = tmp_path / "counter.min.trace.json"
        assert main(["trace", "minimize", str(saved), "--out", str(minimized)]) == 0
        out = capsys.readouterr().out
        assert "minimized" in out and str(minimized) in out
        assert minimized.exists()
        assert main(["trace", "replay", str(minimized)]) == 0

    def test_minimize_refuses_stale_trace(self, tmp_path, capsys):
        saved = self.save(tmp_path, capsys)
        with pytest.raises(SystemExit, match="refusing to minimize"):
            main(["trace", "minimize", str(saved), "--program", "toy:deadlock"])


class TestCorpus:
    def test_check_trace_dir_feeds_corpus_run(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main(
            ["check", "toy:atomic-counter", "--stop-on-first-bug",
             "--trace-dir", str(corpus)]
        )
        assert code == 1
        assert list(corpus.glob("*.trace.json"))
        capsys.readouterr()
        assert main(["corpus", "run", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert "REPRODUCED" in out

    def test_empty_corpus_exits_nonzero(self, tmp_path, capsys):
        assert main(["corpus", "run", str(tmp_path)]) == 1
        assert "no *.trace.json files" in capsys.readouterr().out

    def test_failing_trace_exits_nonzero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["check", "toy:atomic-counter", "--stop-on-first-bug",
              "--trace-dir", str(corpus)])
        (corpus / "junk.trace.json").write_text("{broken")
        capsys.readouterr()
        assert main(["corpus", "run", str(corpus)]) == 1
        assert "ERROR" in capsys.readouterr().out
