"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_builtins(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("bluetooth", "wsq", "dryad:use-after-free", "toy:deadlock"):
            assert name in out


class TestCheck:
    def test_clean_program_exits_zero(self, capsys):
        code = main(["check", "toy:dekker", "--bound", "1"])
        assert code == 0
        assert "0 bug(s)" in capsys.readouterr().out

    def test_buggy_program_exits_nonzero(self, capsys):
        code = main(["check", "toy:atomic-counter", "--stop-on-first-bug"])
        assert code == 1
        assert "lost update" in capsys.readouterr().out

    def test_bound_guarantee_printed(self, capsys):
        main(["check", "toy:dekker", "--bound", "1"])
        assert "at most 1 preemption" in capsys.readouterr().out

    def test_strategy_selection(self, capsys):
        code = main(
            ["check", "toy:racy-counter", "--strategy", "random",
             "--executions", "50", "--stop-on-first-bug"]
        )
        assert code == 1

    def test_policy_and_race_flags(self, capsys):
        code = main(
            ["check", "toy:racy-counter", "--no-race-detection", "--bound", "0"]
        )
        assert code == 0  # without race detection nothing fails at bound 0

    def test_unknown_program_errors(self):
        with pytest.raises(SystemExit):
            main(["check", "no-such-program"])

    def test_external_factory(self, capsys):
        code = main(
            ["check", "repro.programs.toy:lock_order_deadlock",
             "--stop-on-first-bug"]
        )
        assert code == 1
        assert "deadlock" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_trace(self, capsys):
        code = main(["explain", "toy:atomic-counter"])
        assert code == 1
        out = capsys.readouterr().out
        assert "preempting steps marked *" in out
        assert "preemptions: 1" in out

    def test_explain_clean_program(self, capsys):
        code = main(["explain", "toy:dekker", "--bound", "1"])
        assert code == 0
        assert "no bug found" in capsys.readouterr().out
