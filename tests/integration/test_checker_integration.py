"""End-to-end integration: facade, replay, explain, cross-checker."""

from __future__ import annotations

import pytest

from repro import (
    BugKind,
    ChessChecker,
    ExecutionConfig,
    Program,
    SearchLimits,
    check_program,
    find_minimal_bug,
)
from repro.programs import toy
from repro.zing import ZingChecker, ZingModel, acquire, atomic, release


class TestFacade:
    def test_check_program_one_call(self):
        result = check_program(toy.locked_counter(), max_bound=2)
        assert not result.found_bug
        assert result.program == toy.locked_counter().name

    def test_find_minimal_bug_one_call(self):
        bug = find_minimal_bug(toy.atomic_counter_assert())
        assert bug is not None and bug.preemptions == 1

    def test_summary_mentions_guarantee(self):
        result = check_program(toy.locked_counter(), max_bound=1)
        assert "at most 1 preemption" in result.summary()

    def test_summary_lists_bugs(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        result = checker.check(max_bound=1, limits=SearchLimits(stop_on_first_bug=True))
        assert "lost update" in result.summary()

    def test_strategy_and_bound_are_exclusive(self):
        from repro import DepthFirstSearch

        with pytest.raises(ValueError):
            ChessChecker(toy.locked_counter()).check(
                strategy=DepthFirstSearch(), max_bound=1
            )


class TestWitnessReplay:
    def test_replay_reaches_the_bug(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        bug = checker.find_bug()
        execution = checker.replay(bug)
        assert execution.failed
        assert execution.bugs[0].signature == bug.signature
        assert execution.preemptions == bug.preemptions

    def test_explain_marks_preempting_steps(self):
        checker = ChessChecker(toy.atomic_counter_assert())
        bug = checker.find_bug()
        text = checker.explain(bug)
        assert "preempting steps marked *" in text
        starred = [line for line in text.splitlines() if line.startswith("*")]
        assert len(starred) == bug.preemptions

    def test_deadlock_witness_replays(self):
        checker = ChessChecker(toy.lock_order_deadlock())
        bug = checker.find_bug()
        execution = checker.replay(bug)
        assert execution.deadlocked


class TestMinimalityAcrossPrograms:
    """ICB's first witness has minimal preemptions; a DFS witness of
    the same bug generally does not."""

    def test_dfs_witness_not_necessarily_minimal(self):
        from repro import DepthFirstSearch

        program = toy.atomic_counter_assert(n_threads=2, increments=2)
        checker = ChessChecker(program)
        icb_bug = checker.find_bug()
        dfs = DepthFirstSearch().run(
            checker.space(), limits=SearchLimits(stop_on_first_bug=True)
        )
        assert dfs.found_bug
        assert icb_bug.preemptions <= dfs.first_bug.preemptions


class TestCrossChecker:
    """The same algorithm modelled natively and in ZING agrees."""

    class ZingCounter(ZingModel):
        name = "counter-zing"
        thread_labels = ("a", "b")

        def __init__(self, locked):
            self.locked = locked

        def initial_globals(self):
            return {"lock": None, "n": 0, "finished": 0}

        def program(self, index):
            def load(ctx):
                ctx.l["tmp"] = ctx.g["n"]

            def store(ctx):
                ctx.g["n"] = ctx.l["tmp"] + 1
                ctx.g["finished"] += 1
                if ctx.g["finished"] == 2:
                    ctx.require(ctx.g["n"] == 2, "lost update")

            body = [atomic(load), atomic(store)]
            if self.locked:
                return [acquire("lock")] + body + [release("lock")]
            return body

    def native_counter(self, locked):
        def setup(w):
            lock = w.mutex("lock")
            n = w.atomic("n", 0)
            finished = w.atomic("finished", 0)

            def t():
                if locked:
                    yield lock.acquire()
                tmp = yield n.read()
                yield n.write(tmp + 1)
                done = yield finished.add(1)
                if done == 2:
                    from repro import check

                    check((yield n.read()) == 2, "lost update")
                if locked:
                    yield lock.release()

            return {"a": t, "b": t}

        return Program("counter-native", setup)

    @pytest.mark.parametrize("locked", [True, False], ids=["locked", "unlocked"])
    def test_verdicts_agree(self, locked):
        native = ChessChecker(self.native_counter(locked)).find_bug(max_bound=2)
        zing = ZingChecker(self.ZingCounter(locked)).find_bug(max_bound=2)
        assert (native is None) == (zing is None)
        if native is not None:
            assert native.preemptions == zing.preemptions == 1

    def test_same_bug_kind(self):
        native = ChessChecker(self.native_counter(False)).find_bug(max_bound=2)
        zing = ZingChecker(self.ZingCounter(False)).find_bug(max_bound=2)
        assert native.kind is zing.kind is BugKind.ASSERTION


class TestConfigurationMatrix:
    """The checker behaves sensibly across engine configurations."""

    @pytest.mark.parametrize("strict", [False, True], ids=["default", "strict"])
    def test_locked_counter_clean_under_race_modes(self, strict):
        config = ExecutionConfig(strict_races=strict)
        result = ChessChecker(toy.locked_counter(), config).check(max_bound=1)
        assert not result.found_bug

    def test_every_access_policy_finds_same_minimal_bug(self):
        from repro import SchedulingPolicy

        config = ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)
        bug = ChessChecker(toy.atomic_counter_assert(), config).find_bug(max_bound=2)
        assert bug is not None and bug.preemptions == 1
