"""Fixtures shared by the trace-subsystem tests."""

from __future__ import annotations

import pytest

from repro import ChessChecker
from repro.trace.format import TraceRecord

from ._family import family


@pytest.fixture(scope="session")
def base_trace() -> TraceRecord:
    """The recorded witness every mutation test replays.

    Session-scoped: :class:`TraceRecord` is immutable, and finding the
    bug once keeps the mutation matrix cheap.
    """
    program = family("base")
    checker = ChessChecker(program)
    bug = checker.find_bug(max_bound=2)
    assert bug is not None and bug.preemptions == 1
    return TraceRecord.from_bug(program, checker.config, bug)
