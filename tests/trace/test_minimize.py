"""Schedule minimization: shrinks, never regresses, still reproduces."""

from __future__ import annotations

import pytest

from repro import ChessChecker
from repro.core.execution import Execution, ExecutionConfig
from repro.trace.format import TraceRecord
from repro.trace.minimize import MinimizationError, minimize_trace
from repro.trace.replay import ReplayOutcome, replay_trace

from ._family import family


def inflated_trace():
    """A deliberately wasteful witness of the family's lost update.

    The hand-driven schedule ping-pongs between the workers (two
    preemptions) where one suffices; the engine's own account of the
    execution keeps the record consistent with what actually ran.
    """
    program = family("base")
    execution = Execution(program, ExecutionConfig())
    main = next(iter(execution.threads))
    for _ in range(3):  # start, spawn w0, spawn w1
        execution.execute(main)
    w0, w1 = sorted(t for t in execution.threads if t != main)
    pingpong = (w0, w0, w1, w1, w0, w0, w1, w1)  # start+read / write+exit
    for tid in pingpong + (main, main, main):  # join, join, failing read
        execution.execute(tid)
    assert execution.failed, "the inflated schedule must still expose the bug"
    bug = execution.bugs[0]
    assert bug.preemptions == 2
    return TraceRecord.from_bug(program, ExecutionConfig(), bug)


class TestShrinking:
    def test_preemption_lowering_reaches_the_minimum(self):
        trace = inflated_trace()
        result = minimize_trace(trace, family("base"))
        assert result.original_preemptions == 2
        assert result.preemptions == 1  # round-robin passes, so 1 is minimal
        assert result.steps <= result.original_steps
        assert result.improved
        assert result.trace.minimized

    def test_minimized_trace_still_reproduces(self):
        result = minimize_trace(inflated_trace(), family("base"))
        report = replay_trace(result.trace, family("base"))
        assert report.outcome is ReplayOutcome.REPRODUCED
        assert report.bug.identity == result.trace.identity

    def test_identity_follows_the_new_witness(self):
        trace = inflated_trace()
        result = minimize_trace(trace, family("base"))
        assert result.trace.identity != trace.identity
        assert result.trace.bug.kind is trace.bug.kind
        assert result.trace.bug.message == trace.bug.message

    def test_bluetooth_witness_shrinks(self):
        from repro.programs.bluetooth import bluetooth

        program = bluetooth(buggy=True)
        checker = ChessChecker(program)
        bug = checker.find_bug(max_bound=2)
        trace = TraceRecord.from_bug(program, checker.config, bug)
        result = minimize_trace(trace, bluetooth(buggy=True))
        assert result.steps <= result.original_steps
        assert result.preemptions <= result.original_preemptions
        assert result.improved  # the ICB witness carries droppable prefix work
        report = replay_trace(result.trace, bluetooth(buggy=True))
        assert report.outcome is ReplayOutcome.REPRODUCED


class TestGuarantees:
    def test_never_worse_even_with_no_budget(self, base_trace):
        result = minimize_trace(base_trace, family("base"), max_candidates=0)
        assert result.candidates_tried == 0
        assert result.steps == result.original_steps
        assert result.preemptions == result.original_preemptions
        assert result.trace.minimized

    def test_already_minimal_witness_stays_put(self, base_trace):
        result = minimize_trace(base_trace, family("base"))
        assert result.preemptions <= base_trace.preemptions
        assert result.steps <= len(base_trace.schedule)
        report = replay_trace(result.trace, family("base"))
        assert report.outcome is ReplayOutcome.REPRODUCED

    def test_summary_reports_before_and_after(self):
        result = minimize_trace(inflated_trace(), family("base"))
        summary = result.summary()
        assert "->" in summary
        assert str(result.original_steps) in summary
        assert str(result.preemptions) in summary


class TestRefusals:
    def test_vanished_trace_refused(self, base_trace):
        with pytest.raises(MinimizationError, match="refusing to minimize"):
            minimize_trace(base_trace, family("fixed"))

    def test_mismatched_program_refused(self, base_trace):
        with pytest.raises(MinimizationError):
            minimize_trace(base_trace, family("extra-thread"))
