"""The versioned trace schema: lossless round-trips, strict validation."""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.core.execution import ExecutionConfig, RaceDetection, SchedulingPolicy
from repro.core.thread import ThreadId
from repro.errors import BugKind
from repro.trace.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    TRACE_SUFFIX,
    ExpectedBug,
    ProgramFingerprint,
    TraceFormatError,
    TraceRecord,
    config_from_json,
    config_to_json,
    sequence_to_schedule,
)

from ._family import family


def handmade(name: str = "hand-made", **overrides) -> TraceRecord:
    """A small fully-synthetic record for schema-level tests."""
    record = TraceRecord(
        program=ProgramFingerprint(name=name, structure="0" * 16),
        config=ExecutionConfig(),
        schedule=(
            ThreadId.from_path((0,), "main"),
            ThreadId.from_path((0, 1), "w1"),
            ThreadId.from_path((0, 0), "w0"),
            ThreadId.from_path((0,), "main"),
        ),
        preemptions=1,
        bug=ExpectedBug(
            kind=BugKind.ASSERTION, message="boom", thread=(0,), step_index=3
        ),
    )
    return dataclasses.replace(record, **overrides) if overrides else record


class TestRoundTrip:
    def test_synthetic_record_survives_dumps_loads(self):
        record = handmade(spec="pkg.mod:factory", minimized=True)
        loaded = TraceRecord.loads(record.dumps())
        assert loaded == record
        assert loaded.spec == "pkg.mod:factory"
        assert loaded.minimized

    def test_thread_labels_survive(self):
        # ThreadId equality ignores labels, so check them explicitly:
        # the format must be lossless, not merely identity-preserving.
        loaded = TraceRecord.loads(handmade().dumps())
        assert [t.label for t in loaded.schedule] == ["main", "w1", "w0", "main"]
        assert [t.path for t in loaded.schedule] == [(0,), (0, 1), (0, 0), (0,)]

    def test_found_bug_survives_dumps_loads(self, base_trace):
        loaded = TraceRecord.loads(base_trace.dumps())
        assert loaded == base_trace
        assert loaded.identity == base_trace.identity
        assert loaded.config == base_trace.config
        assert [t.label for t in loaded.schedule] == [
            t.label for t in base_trace.schedule
        ]

    def test_non_default_config_round_trips(self):
        config = ExecutionConfig(
            policy=SchedulingPolicy.EVERY_ACCESS,
            race_detection=RaceDetection.NONE,
            strict_races=True,
            races_are_fatal=False,
            deadlock_is_bug=False,
            max_accesses_per_step=7,
            free_conflicts=not ExecutionConfig().free_conflicts,
        )
        assert config_from_json(config_to_json(config)) == config

    def test_fingerprint_is_stable_and_structure_sensitive(self):
        assert ProgramFingerprint.of(family("base")) == ProgramFingerprint.of(
            family("fixed")
        )
        base = ProgramFingerprint.of(family("base"))
        extra = ProgramFingerprint.of(family("extra-thread"))
        assert base.name == extra.name and base.structure != extra.structure


class TestIdentityAndFilenames:
    def test_identity_mirrors_bug_report(self, base_trace):
        assert base_trace.identity == (
            base_trace.bug.kind,
            tuple(t.path for t in base_trace.schedule),
        )

    def test_digest_depends_on_witness(self):
        record = handmade()
        shifted = dataclasses.replace(
            record, schedule=record.schedule + (ThreadId.from_path((0,)),)
        )
        assert record.digest() != shifted.digest()
        assert record.digest() == handmade().digest()

    def test_default_filename_is_sanitized(self):
        name = handmade(
            program=ProgramFingerprint(name="we ird/name", structure="0" * 16)
        ).default_filename()
        assert name.endswith(TRACE_SUFFIX)
        assert "/" not in name and " " not in name

    def test_summary_tags_minimized(self):
        assert "(minimized)" in handmade(minimized=True).summary()
        assert "(minimized)" not in handmade().summary()


class TestSaveLoad:
    def test_save_to_directory_uses_default_filename(self, tmp_path):
        record = handmade()
        path = record.save(tmp_path)
        assert path.parent == tmp_path and path.name == record.default_filename()
        assert TraceRecord.load(path) == record

    def test_resaving_overwrites(self, tmp_path):
        record = handmade()
        first = record.save(tmp_path)
        second = record.save(tmp_path)
        assert first == second
        assert list(tmp_path.iterdir()) == [first]

    def test_save_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.trace.json"
        assert handmade().save(target) == target and target.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            TraceRecord.load(tmp_path / "absent.trace.json")


def _set(*keys):
    """Mutator assigning a value at a (possibly nested) key path."""

    def apply(data, value):
        for key in keys[:-1]:
            data = data[key]
        data[keys[-1]] = value

    return apply


def _drop(key):
    def apply(data, _value):
        del data[key]

    return apply


CORRUPTIONS = [
    ("not-json", None, None),
    ("missing-format", _drop("format"), None),
    ("wrong-format", _set("format"), "other-tool"),
    ("future-version", _set("version"), FORMAT_VERSION + 1),
    ("bool-version", _set("version"), True),
    ("missing-program", _drop("program"), None),
    ("program-name-type", _set("program", "name"), 7),
    ("missing-config", _drop("config"), None),
    ("unknown-policy", _set("config", "policy"), "nonsense"),
    ("unknown-race-detection", _set("config", "race_detection"), "psychic"),
    ("config-scalar-type", _set("config", "races_are_fatal"), "yes"),
    ("threads-not-list", _set("threads"), {}),
    ("thread-entry-not-object", _set("threads"), [7]),
    ("thread-path-negative", _set("threads"), [{"path": [-1], "label": ""}]),
    ("thread-path-empty", _set("threads"), [{"path": [], "label": ""}]),
    ("thread-label-type", _set("threads"), [{"path": [0], "label": 3}]),
    ("schedule-index-out-of-range", _set("schedule"), [99]),
    ("schedule-bool-index", _set("schedule"), [True]),
    ("schedule-not-list", _set("schedule"), "0123"),
    ("negative-preemptions", _set("preemptions"), -1),
    ("missing-bug", _drop("bug"), None),
    ("unknown-bug-kind", _set("bug", "kind"), "gremlin"),
    ("bug-message-type", _set("bug", "message"), None),
    ("bug-thread-malformed", _set("bug", "thread"), ["x"]),
    ("spec-type", _set("spec"), 5),
    ("minimized-type", _set("minimized"), "yes"),
]


class TestStrictValidation:
    def test_reference_document_is_valid(self):
        # Guard: the corruption matrix below mutates a valid document.
        assert TraceRecord.from_json(handmade().to_json()) == handmade()

    @pytest.mark.parametrize(
        "mutate,value", [c[1:] for c in CORRUPTIONS], ids=[c[0] for c in CORRUPTIONS]
    )
    def test_malformed_documents_rejected(self, mutate, value):
        if mutate is None:
            with pytest.raises(TraceFormatError, match="not valid JSON"):
                TraceRecord.loads("{broken")
            return
        data = copy.deepcopy(handmade().to_json())
        mutate(data, value)
        with pytest.raises(TraceFormatError):
            TraceRecord.from_json(data)

    def test_non_object_document_rejected(self):
        with pytest.raises(TraceFormatError, match="JSON object"):
            TraceRecord.from_json([1, 2, 3])

    def test_format_constants_in_document(self):
        data = handmade().to_json()
        assert data["format"] == FORMAT_NAME
        assert data["version"] == FORMAT_VERSION


class TestHelpers:
    def test_sequence_to_schedule(self):
        schedule = sequence_to_schedule([(0,), (0, 1)])
        assert schedule == (ThreadId((0,)), ThreadId((0, 1)))

    def test_expected_bug_matches_is_signature_level(self, base_trace):
        from repro.errors import BugReport

        witness = BugReport(
            kind=base_trace.bug.kind,
            message=base_trace.bug.message,
            thread=ThreadId.from_path(base_trace.bug.thread),
            schedule=(),  # a different witness of the same defect
        )
        assert base_trace.bug.matches(witness)
        other = dataclasses.replace(witness, message="different defect")
        assert not base_trace.bug.matches(other)
