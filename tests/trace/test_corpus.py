"""The directory-of-traces regression corpus."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.execution import ExecutionConfig
from repro.core.program import Program
from repro.core.thread import ThreadId
from repro.errors import BugKind, ReproError
from repro.trace.corpus import TraceCorpus, resolve_trace_program
from repro.trace.format import ExpectedBug, ProgramFingerprint, TraceRecord

from ._family import family


class TestSaveAndEnumerate:
    def test_save_is_content_addressed(self, base_trace, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        first = corpus.save(base_trace)
        second = corpus.save(base_trace)
        assert first == second
        assert corpus.paths() == [first]
        assert len(corpus) == 1
        assert corpus.load_all() == [base_trace]

    def test_missing_directory_is_empty(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "never-created")
        assert corpus.paths() == []
        assert len(corpus) == 0
        assert corpus.run().ok  # vacuously; the CLI refuses empty corpora

    def test_only_trace_files_are_picked_up(self, base_trace, tmp_path):
        (tmp_path / "notes.txt").write_text("not a trace")
        (tmp_path / "data.json").write_text("{}")
        corpus = TraceCorpus(tmp_path)
        saved = corpus.save(base_trace)
        assert corpus.paths() == [saved]


class TestRun:
    def test_reproduced_corpus_is_ok(self, base_trace, tmp_path):
        corpus = TraceCorpus(tmp_path)
        corpus.save(base_trace)
        report = corpus.run(resolve=lambda trace: family("base"))
        assert report.ok
        assert report.failures == []
        assert "REPRODUCED" in report.summary()
        assert "1 trace(s), 0 failure(s)" in report.summary()

    def test_vanished_bug_fails_the_run(self, base_trace, tmp_path):
        corpus = TraceCorpus(tmp_path)
        corpus.save(base_trace)
        report = corpus.run(resolve=lambda trace: family("fixed"))
        assert not report.ok
        assert len(report.failures) == 1
        assert "VANISHED" in report.summary()

    def test_mismatch_detail_is_shown(self, base_trace, tmp_path):
        corpus = TraceCorpus(tmp_path)
        corpus.save(base_trace)
        report = corpus.run(resolve=lambda trace: family("locked"))
        assert not report.ok
        assert "schedule mismatch (not-enabled)" in report.summary()

    def test_malformed_file_is_an_error_entry(self, tmp_path):
        (tmp_path / "junk.trace.json").write_text("{broken")
        report = TraceCorpus(tmp_path).run()
        assert not report.ok
        assert report.entries[0].error is not None
        assert "ERROR" in report.summary()

    def test_unresolvable_program_is_an_error_entry(self, base_trace, tmp_path):
        # ``trace-family`` records no spec and is not a built-in.
        corpus = TraceCorpus(tmp_path)
        corpus.save(base_trace)
        report = corpus.run()
        assert not report.ok
        assert "cannot resolve" in report.summary()

    def test_one_bad_trace_does_not_abort_the_rest(self, base_trace, tmp_path):
        corpus = TraceCorpus(tmp_path)
        corpus.save(base_trace)
        (tmp_path / "junk.trace.json").write_text("{broken")
        report = corpus.run(resolve=lambda trace: family("base"))
        assert len(report.entries) == 2
        assert len(report.failures) == 1


def synthetic_trace(spec=None, name="synthetic"):
    return TraceRecord(
        program=ProgramFingerprint(name=name, structure="0" * 16),
        config=ExecutionConfig(),
        schedule=(ThreadId((0,)),),
        preemptions=0,
        bug=ExpectedBug(kind=BugKind.ASSERTION, message="x", thread=None, step_index=0),
        spec=spec,
    )


class TestResolve:
    def test_builtin_spec(self):
        program = resolve_trace_program(synthetic_trace(spec="bluetooth"))
        assert isinstance(program, Program)

    def test_module_factory_spec(self):
        trace = synthetic_trace(spec="repro.programs.toy:lock_order_deadlock")
        assert isinstance(resolve_trace_program(trace), Program)

    def test_bad_factory_spec(self):
        trace = synthetic_trace(spec="repro.programs.toy:no_such_factory")
        with pytest.raises(ReproError, match="cannot rebuild"):
            resolve_trace_program(trace)

    def test_non_program_factory_spec(self):
        trace = synthetic_trace(spec="concurrent.futures:Future")
        with pytest.raises(ReproError, match="did not produce a Program"):
            resolve_trace_program(trace)

    def test_builtin_name_fallback(self):
        from repro.programs import resolve_builtin

        bluetooth = resolve_builtin("bluetooth")
        trace = dataclasses.replace(
            synthetic_trace(), program=ProgramFingerprint.of(bluetooth)
        )
        resolved = resolve_trace_program(trace)
        assert resolved.name == bluetooth.name

    def test_unresolvable_raises(self, base_trace):
        with pytest.raises(ReproError, match="cannot resolve"):
            resolve_trace_program(base_trace)
