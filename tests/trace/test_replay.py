"""Replay classification: one test per outcome and mismatch flavor.

Satellite of the trace subsystem's contract: replaying a stale trace
against a mutated program (extra thread, reordered/extra accesses,
changed sync ops, removed code) must classify cleanly -- never crash
out of the engine -- and ``strict=True`` turns the classification into
a raised :class:`~repro.errors.ScheduleMismatch`.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.thread import ThreadId
from repro.errors import BugKind, ScheduleMismatch
from repro.trace.replay import ReplayOutcome, explain_trace, replay_trace

from ._family import family


class TestReproduced:
    def test_same_program_reproduces(self, base_trace):
        report = replay_trace(base_trace, family("base"))
        assert report.outcome is ReplayOutcome.REPRODUCED
        assert report.reproduced
        assert report.bug is not None
        assert report.bug.identity == base_trace.identity
        assert report.steps_replayed == len(base_trace.schedule)
        assert report.mismatch is None

    def test_explain_renders_annotated_trace(self, base_trace):
        text = explain_trace(base_trace, family("base"))
        assert "replay: reproduced" in text
        assert "trace (preempting steps marked *):" in text
        assert "lost update" in text


class TestVanished:
    def test_fixed_program_vanishes(self, base_trace):
        report = replay_trace(base_trace, family("fixed"))
        assert report.outcome is ReplayOutcome.VANISHED
        assert not report.reproduced
        assert report.bug is None
        assert "without a bug" in report.describe()


class TestBugChanged:
    def test_new_race_reported_instead(self, base_trace):
        # Extra unsynchronized data accesses keep the step alignment
        # (sync-only big steps) but fire a data race mid-replay.
        report = replay_trace(base_trace, family("racy"))
        assert report.outcome is ReplayOutcome.BUG_CHANGED
        assert report.bug is not None
        assert report.bug.kind is BugKind.DATA_RACE
        assert "observed instead" in report.describe()


class TestScheduleMismatch:
    def test_extra_thread_changes_fingerprint(self, base_trace):
        report = replay_trace(base_trace, family("extra-thread"))
        assert report.outcome is ReplayOutcome.SCHEDULE_MISMATCH
        assert report.mismatch is not None
        assert report.mismatch.flavor == "fingerprint"
        assert report.execution is None  # detected before any step ran
        assert "structure changed" in report.mismatch.describe()

    def test_unknown_thread(self, base_trace):
        tampered = dataclasses.replace(
            base_trace, schedule=(ThreadId((9,)),) + base_trace.schedule
        )
        report = replay_trace(tampered, family("base"))
        assert report.outcome is ReplayOutcome.SCHEDULE_MISMATCH
        assert report.mismatch.flavor == "unknown-thread"
        assert report.mismatch.step_index == 0
        assert report.mismatch.scheduled == (9,)

    def test_changed_sync_ops_leave_thread_not_enabled(self, base_trace):
        # Wrapping the read-modify-write in a mutex means the recorded
        # preemption lands while the sibling worker holds the lock.
        report = replay_trace(base_trace, family("locked"))
        assert report.outcome is ReplayOutcome.SCHEDULE_MISMATCH
        assert report.mismatch.flavor == "not-enabled"
        assert report.mismatch.step_index >= 0
        assert report.mismatch.scheduled is not None
        assert report.mismatch.scheduled not in report.mismatch.enabled
        assert f"at step {report.mismatch.step_index}" in report.mismatch.describe()

    def test_early_termination(self, base_trace):
        report = replay_trace(base_trace, family("truncated"))
        assert report.outcome is ReplayOutcome.SCHEDULE_MISMATCH
        assert report.mismatch.flavor == "early-termination"
        assert report.steps_replayed < len(base_trace.schedule)

    @pytest.mark.parametrize("variant", ["extra-thread", "locked", "truncated"])
    def test_strict_raises_instead_of_classifying(self, base_trace, variant):
        with pytest.raises(ScheduleMismatch):
            replay_trace(base_trace, family(variant), strict=True)

    def test_strict_unknown_thread_raises(self, base_trace):
        tampered = dataclasses.replace(
            base_trace, schedule=(ThreadId((9,)),) + base_trace.schedule
        )
        with pytest.raises(ScheduleMismatch) as exc:
            replay_trace(tampered, family("base"), strict=True)
        assert exc.value.flavor == "unknown-thread"

    def test_fingerprint_check_can_be_skipped(self, base_trace):
        # The extra root thread never needs to run: with the structure
        # check disabled the old witness still drives the bug home.
        report = replay_trace(base_trace, family("extra-thread"), check_fingerprint=False)
        assert report.outcome is ReplayOutcome.REPRODUCED

    def test_mismatch_report_still_explains(self, base_trace):
        text = replay_trace(base_trace, family("locked")).explain()
        assert "schedule mismatch (not-enabled)" in text
        assert "trace (preempting steps marked *):" in text  # partial replay shown
