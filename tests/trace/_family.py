"""A family of deliberate mutations around one buggy base program.

The trace tests record one witness (the ``base`` variant's lost-update
assertion, one preemption) and replay it against mutated siblings.
Each mutation is chosen to hit exactly one replay classification:

``fixed``
    Same thread structure and step alignment, but the assertion is
    removed: the schedule replays fully and the bug ``VANISHED``.
``racy``
    Workers additionally touch an unsynchronized data variable inside
    the same big step (the sync-only policy batches data accesses, so
    step alignment is preserved): a ``DATA_RACE`` fires mid-replay
    instead of the recorded assertion -- ``BUG_CHANGED``.
``locked``
    The read-modify-write is wrapped in a mutex (changed sync ops):
    the first worker's recorded step now acquires the lock, so the
    preempted-to worker is blocked where the recording says it ran --
    ``SCHEDULE_MISMATCH`` flavor ``not-enabled``.
``truncated``
    Main no longer reads or asserts the total, so the program
    terminates while the schedule still has steps --
    ``SCHEDULE_MISMATCH`` flavor ``early-termination``.
``extra-thread``
    An extra root thread changes the program fingerprint --
    ``SCHEDULE_MISMATCH`` flavor ``fingerprint`` before any step runs.
"""

from __future__ import annotations

from repro import Program, check
from repro.core.effects import join, sched_yield, spawn

VARIANTS = ("base", "fixed", "racy", "locked", "truncated", "extra-thread")


def family(variant: str = "base") -> Program:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")

    def setup(w):
        counter = w.atomic("counter", 0)
        gate = w.mutex("gate")
        scratch = w.var("scratch", 0)

        def worker():
            if variant == "locked":
                yield gate.acquire()
            value = yield counter.read()
            if variant == "racy":
                seen = yield scratch.read()
                yield scratch.write(seen + 1)
            yield counter.write(value + 1)
            if variant == "locked":
                yield gate.release()

        def main():
            first = yield spawn(worker, name="w0")
            second = yield spawn(worker, name="w1")
            yield join(first)
            if variant == "truncated":
                return  # never joins w1, reads or asserts: ends early
            yield join(second)
            total = yield counter.read()
            if variant != "fixed":
                check(total == 2, "lost update")

        threads = {"main": main}
        if variant == "extra-thread":

            def bystander():
                yield sched_yield()

            threads["bystander"] = bystander
        return threads

    return Program("trace-family", setup)
