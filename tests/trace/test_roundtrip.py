"""The acceptance property: find -> save -> reload -> REPRODUCED.

Every built-in buggy benchmark round-trips through the on-disk format:
the reloaded trace replays to ``REPRODUCED`` with a
:attr:`~repro.errors.BugReport.identity` identical to the bug the
search found.  A guard test pins the benchmark list to the registry so
a newly added buggy built-in cannot silently dodge the property, and
one test drives the CLI in a fresh interpreter to prove the round trip
crosses process boundaries.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro import ChessChecker, SearchLimits
from repro.programs import builtin_registry, resolve_builtin
from repro.trace.corpus import resolve_trace_program
from repro.trace.format import TraceRecord
from repro.trace.replay import ReplayOutcome, replay_trace

#: Every buggy built-in, mapped to a bound sufficient for its Table-2
#: defect (mirrors tests/programs/test_benchmarks.py).
BUGGY_BOUNDS = {
    "bluetooth": 2,
    "wsq:pop-race": 2,
    "wsq:steal-stale-tail": 2,
    "wsq:pop-lost-restore": 1,
    "ape:init-race": 0,
    "ape:early-return": 0,
    "ape:stats-race": 1,
    "ape:double-take": 2,
    "dryad:missing-handler": 0,
    "dryad:use-after-free": 1,
    "dryad:refcount-race": 1,
    "dryad:close-sem-race": 1,
    "dryad:double-free": 1,
    "toy:racy-counter": 0,
    "toy:atomic-counter": 1,
    "toy:deadlock": 1,
    "toy:uaf": 0,
    "toy:stats-race": 0,
    "toy:stats-assert": 1,
    "toy:stats-deadlock": 1,
}

#: Built-ins expected to be correct (certified, not round-tripped).
CORRECT = {
    "bluetooth:fixed",
    "filesystem",
    "wsq",
    "ape",
    "dryad",
    "toy:dekker",
    "toy:peterson",
    "toy:chain",
}


def test_every_builtin_is_classified():
    # If this fails, a new built-in was added: give it a round-trip
    # entry in BUGGY_BOUNDS or declare it CORRECT.
    assert set(builtin_registry()) == set(BUGGY_BOUNDS) | CORRECT


@pytest.mark.parametrize("spec", sorted(BUGGY_BOUNDS))
def test_round_trip_reproduces_with_identical_identity(spec, tmp_path):
    program = resolve_builtin(spec)
    checker = ChessChecker(program)
    bug = checker.find_bug(
        max_bound=BUGGY_BOUNDS[spec], limits=SearchLimits(max_seconds=300)
    )
    assert bug is not None, spec

    trace = TraceRecord.from_bug(program, checker.config, bug, spec=spec)
    path = trace.save(tmp_path)
    loaded = TraceRecord.load(path)
    assert loaded == trace

    report = replay_trace(loaded, resolve_trace_program(loaded))
    assert report.outcome is ReplayOutcome.REPRODUCED, (spec, report.describe())
    assert report.bug.identity == bug.identity
    assert report.bug.identity == loaded.identity
    assert report.bug.preemptions == bug.preemptions


def test_round_trip_crosses_process_boundaries(tmp_path):
    program = resolve_builtin("bluetooth")
    checker = ChessChecker(program)
    bug = checker.find_bug(max_bound=2)
    path = TraceRecord.from_bug(
        program, checker.config, bug, spec="bluetooth"
    ).save(tmp_path)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "trace", "replay", str(path)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "replay: reproduced" in proc.stdout
