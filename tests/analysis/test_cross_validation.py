"""Cross-validation: the static results bound the dynamic behaviour.

Two soundness obligations, checked over *every* builtin program:

* every shared access observed dynamically is covered by the static
  access summary (``summary.covers``); and
* every data race the dynamic detector reports involves a variable
  that appears among the static race candidates (the candidate set is
  a superset of the real races).

These are the properties the search reduction and the prioritizer
lean on, so they are exercised against the whole benchmark registry
rather than hand-picked examples.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import pytest

from repro import ChessChecker, EffectKind, ExecutionConfig, SearchLimits
from repro.analysis import analyze, analyze_program
from repro.monitors import Monitor, monitor_factory
from repro.programs import builtin_registry
from repro.races import race_variable_from_message

ALL_SPECS = sorted(builtin_registry())


def _is_checkable(name: Optional[str]) -> bool:
    """Real program variables only: skip internals and anonymous slots."""
    return name is not None and not name.startswith("$") and "#" not in name


class AccessCollector(Monitor):
    """Records every ``(kind, variable)`` pair any execution performs."""

    seen: Set[Tuple[str, str]] = set()

    def on_step(self, execution, record) -> None:
        for kind, name in record.accesses:
            if _is_checkable(name):
                AccessCollector.seen.add((kind.value, name))


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_dynamic_accesses_are_statically_covered(spec):
    program = builtin_registry()[spec]()
    summary = analyze_program(program)

    AccessCollector.seen = set()
    config = ExecutionConfig(monitors=(monitor_factory(AccessCollector),))
    checker = ChessChecker(program, config)
    checker.check(max_bound=1, limits=SearchLimits(max_executions=300))

    assert AccessCollector.seen, f"{spec}: no shared accesses observed"
    missed = [
        (kind, var)
        for kind, var in sorted(AccessCollector.seen)
        if not summary.covers(EffectKind(kind), var)
    ]
    assert not missed, f"{spec}: dynamic accesses missing from summary: {missed}"


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_dynamic_races_are_static_candidates(spec):
    program = builtin_registry()[spec]()
    analysis = analyze(program)
    candidate_vars = {c.variable for c in analysis.candidates}

    checker = ChessChecker(program)
    result = checker.check(max_bound=2, limits=SearchLimits(max_executions=2000))

    raced: List[str] = []
    for bug in result.bugs:
        variable = race_variable_from_message(bug.message)
        if variable is not None and _is_checkable(variable):
            raced.append(variable)

    missed = sorted(set(raced) - candidate_vars)
    assert not missed, f"{spec}: dynamic races not predicted statically: {missed}"
