"""Unit tests for the static lock-order graph and its cycles."""

from __future__ import annotations

from repro.analysis import LockOrderGraph, analyze_program
from repro.programs import toy


class TestEdges:
    def test_abba_produces_both_edges(self):
        summary = analyze_program(toy.lock_order_deadlock())
        graph = LockOrderGraph.from_summary(summary)
        assert ("A", "B") in graph.edges
        assert ("B", "A") in graph.edges
        assert graph.contributors[("A", "B")] == ("fwd",)
        assert graph.contributors[("B", "A")] == ("bwd",)

    def test_single_lock_has_no_edges(self):
        summary = analyze_program(toy.locked_counter())
        graph = LockOrderGraph.from_summary(summary)
        assert graph.edges == frozenset()


class TestCycles:
    def test_abba_cycle_detected_and_canonical(self):
        summary = analyze_program(toy.lock_order_deadlock())
        cycles = LockOrderGraph.from_summary(summary).cycles()
        assert len(cycles) == 1
        cycle = cycles[0]
        assert cycle.locks == ("A", "B")  # rotated to smallest first
        assert cycle.threads == ("bwd", "fwd")
        assert "potential deadlock" in cycle.describe()
        assert "A -> B -> A" in cycle.describe()

    def test_consistent_order_has_no_cycle(self):
        # Same two locks, both threads acquire A before B: acyclic.
        from repro import Program

        def setup(w):
            lock_a = w.mutex("A")
            lock_b = w.mutex("B")
            value = w.var("value", 0)

            def worker(delta):
                yield lock_a.acquire()
                yield lock_b.acquire()
                current = yield value.read()
                yield value.write(current + delta)
                yield lock_b.release()
                yield lock_a.release()

            return [("t0", worker, (1,)), ("t1", worker, (-1,))]

        summary = analyze_program(Program("ordered", setup))
        graph = LockOrderGraph.from_summary(summary)
        assert ("A", "B") in graph.edges
        assert graph.cycles() == ()

    def test_stats_deadlock_keeps_its_cycle(self):
        summary = analyze_program(toy.stats_deadlock())
        assert len(LockOrderGraph.from_summary(summary).cycles()) == 1
