"""The lint findings, one intentional violation per fixture."""

from __future__ import annotations

from repro.analysis import (
    analyze,
    format_baseline,
    lint_program,
    load_baseline,
)

from .fixtures import (
    double_acquire_program,
    never_set_event_program,
    unreleased_lock_program,
)


def findings_for(program):
    analysis = analyze(program)
    return analysis.findings


def codes(findings):
    return [f.code for f in findings]


class TestFindings:
    def test_unreleased_lock(self):
        findings = findings_for(unreleased_lock_program())
        assert codes(findings) == ["unreleased-lock"]
        finding = findings[0]
        assert finding.subject == "sloppy:lock"
        assert "sloppy" in finding.message and "lock" in finding.message

    def test_double_acquire(self):
        findings = findings_for(double_acquire_program())
        assert codes(findings) == ["double-acquire"]
        assert findings[0].subject == "stuck:lock"
        assert "self-deadlock" in findings[0].message

    def test_wait_never_set(self):
        findings = findings_for(never_set_event_program())
        assert codes(findings) == ["wait-never-set"]
        assert findings[0].subject == "waiter:go"
        # `other` IS signalled; only `go` may be flagged.
        assert all("other" not in f.subject for f in findings)

    def test_lock_cycle_via_facade(self):
        from repro.programs import toy

        findings = findings_for(toy.lock_order_deadlock())
        assert codes(findings) == ["lock-cycle"]
        assert "potential deadlock" in findings[0].message

    def test_clean_program_has_no_findings(self):
        from repro.programs import toy

        assert findings_for(toy.locked_counter()) == ()

    def test_lint_program_builds_graph_when_omitted(self):
        from repro.analysis import analyze_program
        from repro.programs import toy

        summary = analyze_program(toy.lock_order_deadlock())
        assert codes(lint_program(summary)) == ["lock-cycle"]


class TestBaseline:
    def test_round_trip(self):
        findings = findings_for(unreleased_lock_program()) + findings_for(
            double_acquire_program()
        )
        text = format_baseline(findings)
        assert text.startswith("#")
        fingerprints = load_baseline(text)
        assert fingerprints == {f.fingerprint for f in findings}

    def test_load_skips_comments_and_blanks(self):
        parsed = load_baseline("# comment\n\nprog:code:subject\n")
        assert parsed == {"prog:code:subject"}

    def test_fingerprint_is_stable_identity(self):
        finding = findings_for(double_acquire_program())[0]
        assert finding.fingerprint == "double-acquire:double-acquire:stuck:lock"
