"""Intentional-violation programs for the static-analysis tests.

Each factory exhibits exactly one anomaly the lint pass must flag (and
one defeats the analyzer entirely, forcing the TOP fallback).  They
live outside the builtin registry on purpose: the registry's programs
feed the committed lint baseline, while these exist to *be* findings.
"""

from __future__ import annotations

from repro import Program


def unreleased_lock_program() -> Program:
    """A thread that exits while still holding its mutex."""

    def setup(w):
        lock = w.mutex("lock")
        value = w.var("value", 0)

        def sloppy():
            yield lock.acquire()
            yield value.write(1)
            # BUG (lint): falls off the end without releasing.

        def polite():
            yield lock.acquire()
            yield value.write(2)
            yield lock.release()

        return {"sloppy": sloppy, "polite": polite}

    return Program("unreleased-lock", setup)


def double_acquire_program() -> Program:
    """A thread that re-acquires a non-re-entrant mutex it holds."""

    def setup(w):
        lock = w.mutex("lock")
        value = w.var("value", 0)

        def stuck():
            yield lock.acquire()
            yield lock.acquire()  # BUG (lint): guaranteed self-deadlock.
            yield value.write(1)
            yield lock.release()

        return {"stuck": stuck}

    return Program("double-acquire", setup)


def never_set_event_program() -> Program:
    """A thread waiting on an event no thread ever signals."""

    def setup(w):
        go = w.event("go")
        other = w.event("other")
        value = w.var("value", 0)

        def waiter():
            yield go.wait()  # BUG (lint): nothing ever sets `go`.
            yield value.write(1)

        def signaller():
            yield other.set()

        return {"waiter": waiter, "signaller": signaller}

    return Program("never-set-event", setup)


def opaque_program() -> Program:
    """A racy program whose thread bodies defeat the AST analyzer.

    The bodies are compiled from a source string via ``exec``, so
    ``inspect.getsource`` cannot recover their ASTs and every summary
    must fall back to TOP -- disabling the reduction while the dynamic
    checkers still find the race.
    """

    source = (
        "def _make(counter):\n"
        "    def worker():\n"
        "        value = yield counter.read()\n"
        "        yield counter.write(value + 1)\n"
        "    return worker\n"
    )
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - deliberate, to defeat getsource

    def setup(w):
        counter = w.var("counter", 0)
        worker = namespace["_make"](counter)
        return {"t0": worker, "t1": worker}

    return Program("opaque", setup)
