"""Unit tests for the per-thread access summaries."""

from __future__ import annotations

from repro import EffectKind, Program
from repro.analysis import analyze, analyze_program
from repro.programs import toy, workstealqueue

from .fixtures import opaque_program


def summaries_by_label(summary):
    return {t.label: t for t in summary.threads}


class TestLockedCounter:
    def test_accesses_carry_must_locksets(self):
        summary = analyze_program(toy.locked_counter())
        worker = summaries_by_label(summary)["main/worker"]
        assert not worker.top
        data = [a for a in worker.accesses if a.variable == "counter"]
        assert data, "worker must touch the counter"
        assert all("lock" in a.must_locks for a in data)
        assert any(a.is_write for a in data)

    def test_no_exit_unreleased(self):
        summary = analyze_program(toy.locked_counter())
        for thread in summary.threads:
            assert not thread.exit_unreleased


class TestProvenLocal:
    def test_chain_counters_are_local(self):
        analysis = analyze(toy.chain_program(n_threads=2, steps=2))
        assert analysis.reduction_enabled
        assert {"c0", "c1"} <= analysis.proven_local

    def test_shared_variable_is_not_local(self):
        analysis = analyze(toy.racy_counter())
        assert "counter" not in analysis.proven_local

    def test_spawned_bodies_count_as_multiple_instances(self):
        # atomic_counter_assert spawns its workers from one function:
        # the analyzer folds them into one multi-instance summary, so
        # nothing that body touches can be proven thread-local.
        analysis = analyze(toy.atomic_counter_assert())
        assert "counter" not in analysis.proven_local


class TestCoverage:
    def test_covers_every_static_access(self):
        summary = analyze_program(toy.stats_race())
        assert summary.covers(EffectKind.WRITE, "stat")
        assert summary.covers(EffectKind.ATOMIC_ADD, "ops0")
        assert not summary.covers(EffectKind.WRITE, "nonexistent")

    def test_workstealqueue_analyzes_without_top(self):
        # The hardest builtin: generator methods on a shared object
        # invoked via `yield from`, loops, and heap fields.
        summary = analyze_program(workstealqueue.work_steal_queue())
        assert not summary.any_top


class TestTopFallback:
    def test_opaque_bodies_become_top(self):
        summary = analyze_program(opaque_program())
        assert summary.any_top
        for thread in summary.threads:
            assert thread.top
            assert thread.top_reason

    def test_top_disables_reduction_and_localness(self):
        analysis = analyze(opaque_program())
        assert not analysis.reduction_enabled
        assert analysis.proven_local == frozenset()

    def test_top_thread_covers_everything(self):
        summary = analyze_program(opaque_program())
        assert summary.covers(EffectKind.WRITE, "counter")
        assert summary.covers(EffectKind.READ, "anything-at-all")


class TestAnalyzerRobustness:
    def test_host_exceptions_do_not_defeat_the_analysis(self):
        # Abstract interpretation never runs the body, so host-level
        # failures (here a guaranteed KeyError) cannot crash it; the
        # accesses after the faulting statement are still collected.
        def setup(w):
            counter = w.var("counter", 0)
            table = {}

            def worker():
                table["k"] += 1  # raises at run time: KeyError
                yield counter.write(1)

            return {"t": worker}

        summary = analyze_program(Program("hostile", setup))
        thread = summary.threads[0]
        assert not thread.top
        assert any(a.variable == "counter" and a.is_write for a in thread.accesses)

    def test_internal_analyzer_errors_degrade_to_top(self, monkeypatch):
        # A bug in the analyzer itself must degrade to TOP -- never to
        # a silently wrong (unsound) summary.
        from repro.analysis import summary as summary_mod

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected analyzer bug")

        monkeypatch.setattr(summary_mod._Interpreter, "_run_callable", explode)
        result = analyze_program(Program("victim", _trivial_setup))
        for thread in result.threads:
            assert thread.top
            assert "analyzer error" in thread.top_reason
            assert "injected analyzer bug" in thread.top_reason


def _trivial_setup(w):
    value = w.var("value", 0)

    def worker():
        yield value.write(1)

    return {"t": worker}
