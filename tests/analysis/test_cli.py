"""CLI coverage for ``repro analyze``, ``repro lint`` and ``check --analysis``."""

from __future__ import annotations

import pytest

from repro.cli import main

FIXTURES = "tests.analysis.fixtures"


class TestAnalyze:
    def test_single_program(self, capsys):
        assert main(["analyze", "toy:stats-race"]) == 0
        out = capsys.readouterr().out
        assert "stats-race" in out
        assert "ops0" in out

    def test_module_factory_spec(self, capsys):
        assert main(["analyze", f"{FIXTURES}:opaque_program"]) == 0
        out = capsys.readouterr().out
        assert "TOP" in out

    def test_all_builtins(self, capsys):
        assert main(["analyze", "--all"]) == 0
        out = capsys.readouterr().out
        # One block per builtin, blank-line separated.
        assert "program: bluetooth" in out
        assert "program: wsq" in out
        assert "program: stats-race" in out

    def test_program_and_all_conflict(self):
        with pytest.raises(SystemExit):
            main(["analyze", "toy:chain", "--all"])

    def test_neither_program_nor_all(self):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_unknown_program_suggests_alternatives(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "toy:stats-rac"])
        message = str(excinfo.value)
        assert "unknown program" in message
        assert "did you mean" in message
        assert "toy:stats-race" in message

    def test_module_flag_analyzes_invivo_program(self, capsys):
        spec = "examples.invivo.hidden_state:make_program"
        assert main(["analyze", "--module", spec]) == 0
        out = capsys.readouterr().out
        assert "invivo-hidden-state" in out
        assert "stats.scratch-1" in out
        assert "hidden-state" in out

    def test_module_flag_conflicts_with_program(self):
        with pytest.raises(SystemExit, match="not a combination"):
            main(
                [
                    "analyze",
                    "toy:chain",
                    "--module",
                    "examples.invivo.hidden_state:make_program",
                ]
            )

    def test_module_flag_requires_factory_spec(self):
        with pytest.raises(SystemExit, match="module:factory"):
            main(["analyze", "--module", "examples.invivo.hidden_state"])


class TestLint:
    def test_findings_exit_nonzero(self, capsys):
        code = main(["lint", f"{FIXTURES}:double_acquire_program"])
        captured = capsys.readouterr()
        assert code == 1
        assert "double-acquire" in captured.out
        assert "not in the baseline" in captured.err

    def test_clean_program_exits_zero(self, capsys):
        assert main(["lint", "toy:racy-counter"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        spec = f"{FIXTURES}:unreleased_lock_program"
        assert main(["lint", spec, "--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()

        assert main(["lint", spec, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out
        assert "all baselined" in out

    def test_missing_baseline_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", "toy:chain", "--baseline", str(tmp_path / "nope.txt")])

    def test_unknown_program_suggests_alternatives(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "toy:stats-rac"])
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "toy:stats-race" in message

    def test_module_flag_lints_invivo_program(self, capsys):
        code = main(
            ["lint", "--module", "examples.invivo.hidden_state:make_program"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "hidden-state" in captured.out
        assert "Stats.total" in captured.out

    def test_module_flag_clean_program_exits_zero(self, capsys):
        code = main(
            ["lint", "--module", "examples.invivo.hidden_state:make_fixed"]
        )
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_module_flag_respects_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        spec = "examples.invivo.hidden_state:make_program"
        assert (
            main(["lint", "--module", spec, "--update-baseline", str(baseline)])
            == 0
        )
        assert "hidden-state" in baseline.read_text()
        capsys.readouterr()
        assert main(["lint", "--module", spec, "--baseline", str(baseline)]) == 0
        assert "all baselined" in capsys.readouterr().out


class TestCheckAnalysis:
    def test_buggy_program_still_fails(self):
        # --analysis must not mask the assertion failure.
        code = main(["check", "toy:stats-race", "--analysis", "--bound", "1"])
        assert code != 0

    def test_clean_program_passes(self):
        code = main(["check", "toy:chain", "--analysis", "--bound", "1"])
        assert code == 0

    def test_analysis_with_workers_is_rejected(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["check", "toy:chain", "--analysis", "--workers", "2"])
