"""Unit tests for the Eraser-style static race candidates."""

from __future__ import annotations

from repro.analysis import analyze, analyze_program, race_candidates
from repro.programs import toy

from .fixtures import opaque_program


def candidate_variables(program):
    return {c.variable for c in analyze(program).candidates}


class TestCandidates:
    def test_unlocked_counter_is_a_candidate(self):
        candidates = analyze(toy.racy_counter()).candidates
        assert any(
            c.variable == "counter" and {c.first_thread, c.second_thread} == {"w0", "w1"}
            for c in candidates
        )

    def test_locked_counter_has_no_candidates(self):
        assert candidate_variables(toy.locked_counter()) == set()

    def test_atomic_variables_never_race(self):
        # Every shared access in the chain program is atomic.
        assert candidate_variables(toy.chain_program()) == set()

    def test_read_only_sharing_is_not_a_candidate(self):
        from repro import Program

        def setup(w):
            config = w.var("config", 42)

            def reader():
                yield config.read()

            return {"r0": reader, "r1": reader}

        assert candidate_variables(Program("readers", setup)) == set()

    def test_top_pairs_with_every_data_variable(self):
        summary = analyze_program(opaque_program())
        candidates = race_candidates(summary)
        assert any(c.variable == "counter" for c in candidates)

    def test_describe_mentions_both_threads(self):
        candidates = analyze(toy.racy_counter()).candidates
        text = candidates[0].describe()
        assert "race candidate" in text
        assert "counter" in text


class TestMultiInstance:
    def test_spawned_body_races_with_itself(self):
        # racy_counter's workers are distinct root threads; build a
        # variant where one body is spawned twice so the self-candidate
        # path is exercised.
        from repro import Program, spawn

        def setup(w):
            counter = w.var("counter", 0)

            def worker():
                value = yield counter.read()
                yield counter.write(value + 1)

            def main():
                yield spawn(worker, name="a")
                yield spawn(worker, name="b")

            return {"main": main}

        candidates = analyze(Program("self-race", setup)).candidates
        assert any(
            c.variable == "counter" and c.first_thread == c.second_thread
            for c in candidates
        )
