"""The analysis-driven reduction: fewer transitions, identical bugs.

The acceptance property from the issue: with ``analysis=`` enabled the
checker must find the *identical* bug set (same ``BugReport.identity``,
i.e. the same witness schedules) while exploring strictly fewer
transitions, on at least three builtins.  The TOP fallback and the
soundness guard are exercised here too.
"""

from __future__ import annotations

import pytest

from repro import (
    ChessChecker,
    ExecutionConfig,
    IterativeContextBounding,
    RaceCandidatePrioritizer,
    RaceDetection,
)
from repro.analysis import analyze
from repro.programs import builtin_registry, toy
from repro.search.pct import PCTScheduler

from .fixtures import opaque_program

REDUCIBLE_SPECS = [
    "toy:chain",
    "toy:stats-race",
    "toy:stats-assert",
    "toy:stats-deadlock",
]


def identities(result):
    return sorted(bug.identity for bug in result.bugs)


@pytest.mark.parametrize("spec", REDUCIBLE_SPECS)
def test_reduction_preserves_bugs_and_prunes(spec):
    program_factory = builtin_registry()[spec]

    baseline = ChessChecker(program_factory()).check(max_bound=1)
    reduced = ChessChecker(program_factory()).check(max_bound=1, analysis=True)

    assert identities(reduced) == identities(baseline)
    assert reduced.transitions < baseline.transitions, (
        f"{spec}: expected a strict reduction, got "
        f"{reduced.transitions} vs {baseline.transitions}"
    )
    assert reduced.search.extras["analysis_pruned"] > 0


class TestTopFallback:
    def test_opaque_program_still_finds_the_race(self):
        # The bodies defeat the AST analyzer, so the analysis is TOP,
        # nothing is pruned -- and the dynamic checker must still see
        # the race exactly as it would without the analysis.
        program = opaque_program()
        analysis = analyze(program)
        assert not analysis.reduction_enabled

        result = ChessChecker(opaque_program()).check(max_bound=1, analysis=True)
        assert result.found_bug
        assert any("data race" in b.message for b in result.bugs)
        assert result.search.extras["analysis_pruned"] == 0

        baseline = ChessChecker(opaque_program()).check(max_bound=1)
        assert identities(result) == identities(baseline)
        assert result.transitions == baseline.transitions


class TestSoundnessGuard:
    def test_no_pruning_without_race_detection(self):
        # Under the SYNC_ONLY policy a big step performs data accesses
        # the pending effect does not reveal; skipping deferrals is
        # then only sound relative to race detection.  With detection
        # off the guard must keep every deferral.
        config = ExecutionConfig(race_detection=RaceDetection.NONE)
        checker = ChessChecker(toy.stats_race(), config)
        result = checker.check(max_bound=1, analysis=True)
        assert result.search.extras["analysis_pruned"] == 0

    def test_no_pruning_when_races_are_not_fatal(self):
        config = ExecutionConfig(races_are_fatal=False)
        checker = ChessChecker(toy.stats_race(), config)
        result = checker.check(max_bound=1, analysis=True)
        assert result.search.extras["analysis_pruned"] == 0


class TestErrorPaths:
    def test_analysis_for_wrong_program_is_rejected(self):
        wrong = analyze(toy.racy_counter())
        checker = ChessChecker(toy.stats_race())
        with pytest.raises(ValueError, match="racy-counter"):
            checker.check(max_bound=1, analysis=wrong)

    def test_analysis_with_parallel_workers_is_rejected(self):
        checker = ChessChecker(toy.stats_race())
        with pytest.raises(ValueError, match="parallel workers"):
            checker.check(max_bound=1, workers=2, analysis=True)


class TestPrioritizer:
    def test_prioritized_icb_finds_the_same_bugs(self):
        program = toy.stats_race()
        analysis = analyze(program)
        assert analysis.hot_variables, "stats-race must have a race candidate"

        strategy = IterativeContextBounding(
            max_bound=1, prioritizer=RaceCandidatePrioritizer(analysis)
        )
        result = ChessChecker(toy.stats_race()).check(strategy=strategy)
        baseline = ChessChecker(toy.stats_race()).check(max_bound=1)
        # The prioritizer reorders work *within* a bound swap; the set
        # of explored executions -- hence of bugs -- is unchanged.
        assert identities(result) == identities(baseline)

    def test_pct_with_analysis_still_finds_the_race(self):
        program = toy.racy_counter()
        strategy = PCTScheduler(
            depth=2, executions=200, seed=3, analysis=analyze(program)
        )
        result = ChessChecker(toy.racy_counter()).check(strategy=strategy)
        assert result.found_bug
