"""``invivo.monkeypatch``: substituting ``threading`` inside target
modules, and the shim's supported/unsupported surface."""

from __future__ import annotations

import sys
import threading
import types

import pytest

from repro import ChessChecker
from repro.errors import BugKind
from repro.invivo import InvivoError, InvivoProgram, monkeypatch
from repro.invivo import adapters


def scratch_module(name="scratch_target"):
    """A module that imports threading both ways, like real code."""
    mod = types.ModuleType(name)
    mod.threading = threading
    mod.Lock = threading.Lock
    mod.Event = threading.Event
    mod.deque = list  # an unrelated name the patcher must leave alone
    return mod


class TestApplyRestore:
    def test_apply_substitutes_both_import_styles(self):
        mod = scratch_module()
        patch = monkeypatch(mod).apply()
        try:
            # `import threading` now resolves primitives to adapters...
            assert mod.threading.Lock is adapters.Lock
            assert mod.threading.Condition is adapters.Condition
            # ...as do names imported directly...
            assert mod.Lock is adapters.Lock
            assert mod.Event is adapters.Event
            # ...and unrelated names are untouched.
            assert mod.deque is list
        finally:
            patch.restore()

    def test_restore_puts_the_originals_back(self):
        mod = scratch_module()
        patch = monkeypatch(mod)
        patch.apply()
        patch.restore()
        assert mod.threading is threading
        assert mod.Lock is threading.Lock
        assert mod.Event is threading.Event

    def test_apply_is_idempotent(self):
        mod = scratch_module()
        patch = monkeypatch(mod)
        patch.apply()
        patch.apply()  # second apply is a no-op, not a double-save
        patch.restore()
        assert mod.threading is threading and mod.Lock is threading.Lock

    def test_context_manager_form(self):
        mod = scratch_module()
        with monkeypatch(mod):
            assert mod.Lock is adapters.Lock
        assert mod.Lock is threading.Lock

    def test_string_targets_resolve_through_sys_modules(self):
        mod = scratch_module("scratch_by_name")
        sys.modules["scratch_by_name"] = mod
        try:
            with monkeypatch("scratch_by_name"):
                assert mod.Lock is adapters.Lock
            assert mod.Lock is threading.Lock
        finally:
            del sys.modules["scratch_by_name"]

    def test_needs_at_least_one_module(self):
        with pytest.raises(InvivoError, match="at least one"):
            monkeypatch()


class TestShimSurface:
    def test_unsupported_primitives_fail_loudly(self):
        mod = scratch_module()
        with monkeypatch(mod):
            for name in ("Thread", "Timer", "Barrier"):
                with pytest.raises(InvivoError, match=f"threading.{name}"):
                    getattr(mod.threading, name)

    def test_everything_else_delegates_to_real_threading(self):
        mod = scratch_module()
        with monkeypatch(mod):
            assert mod.threading.current_thread is threading.current_thread
            assert mod.threading.local is threading.local
            assert mod.threading.TIMEOUT_MAX == threading.TIMEOUT_MAX


class TestEndToEnd:
    def test_patched_module_is_checkable(self):
        # A module written against plain `threading`, checked without
        # editing it: the monkeypatch makes its Lock an adapter, and
        # the classic check-then-act race surfaces at one preemption.
        src = types.ModuleType("patched_counter")
        code = """
import threading

def make_state():
    return {"lock": threading.Lock(), "count": [0], "winners": [0]}

def bump_once(state):
    if state["count"][0] == 0:        # check
        with state["lock"]:
            state["count"][0] += 1    # act: double-increment race
            state["winners"][0] += 1
    assert state["winners"][0] <= 1, "two threads won the check-then-act"
"""
        exec(compile(code, "<patched_counter>", "exec"), src.__dict__)

        def setup():
            state = src.make_state()
            return [
                ("a", src.bump_once, (state,)),
                ("b", src.bump_once, (state,)),
            ]

        program = InvivoProgram(
            "patched-counter", setup, patch=monkeypatch(src)
        )
        bug = ChessChecker(program).find_bug(max_bound=1)
        assert bug is not None
        assert bug.kind is BugKind.ASSERTION
