"""The seeded-bug example family under ``examples/invivo``.

Each example module exports ``make_program`` (the seeded bug),
``make_fixed`` (the repaired variant) and ``EXPECTED`` (the bug kind
and the preemption bound that exposes it).  The acceptance contract:
the bug is found deterministically at exactly its documented bound,
its identity is stable across independent searches, the fixed variant
certifies clean past that bound, and a saved witness replays to
REPRODUCED against a freshly built program.
"""

from __future__ import annotations

import importlib

import pytest

from repro import ChessChecker
from repro.trace.format import TraceRecord
from repro.trace.replay import ReplayOutcome, replay_trace

EXAMPLES = [
    "examples.invivo.bounded_queue",
    "examples.invivo.lazy_singleton",
    "examples.invivo.barrier_misuse",
    "examples.invivo.hidden_state",
]


def example(name):
    return importlib.import_module(name)


@pytest.mark.parametrize("name", EXAMPLES)
class TestSeededBugs:
    def test_bug_found_at_documented_bound(self, name):
        mod = example(name)
        bug = ChessChecker(mod.make_program()).find_bug(
            max_bound=mod.EXPECTED["bound"]
        )
        assert bug is not None
        assert bug.kind.value == mod.EXPECTED["kind"]
        assert bug.preemptions == mod.EXPECTED["bound"]

    def test_bug_needs_its_documented_bound(self, name):
        mod = example(name)
        if mod.EXPECTED["bound"] == 0:
            pytest.skip("a bound-0 bug has no tighter bound to contrast")
        bug = ChessChecker(mod.make_program()).find_bug(
            max_bound=mod.EXPECTED["bound"] - 1
        )
        assert bug is None

    def test_identity_is_stable_across_searches(self, name):
        mod = example(name)
        first = ChessChecker(mod.make_program()).find_bug(
            max_bound=mod.EXPECTED["bound"]
        )
        second = ChessChecker(mod.make_program()).find_bug(
            max_bound=mod.EXPECTED["bound"]
        )
        assert first is not None and second is not None
        assert first.identity == second.identity

    def test_fixed_variant_certifies_clean(self, name):
        mod = example(name)
        result = ChessChecker(mod.make_fixed()).check(
            max_bound=mod.EXPECTED["bound"] + 1
        )
        assert not result.bugs

    def test_witness_replays_to_reproduced(self, name):
        mod = example(name)
        program = mod.make_program()
        checker = ChessChecker(program)
        bug = checker.find_bug(max_bound=mod.EXPECTED["bound"])
        record = TraceRecord.from_bug(
            program, checker.config, bug, spec=f"{name}:make_program"
        )
        # Replay against a *fresh* program built from the recorded
        # spec: what `repro trace replay` does in a new interpreter.
        fresh = importlib.import_module(name).make_program()
        report = replay_trace(record, fresh)
        assert report.outcome is ReplayOutcome.REPRODUCED
        assert report.bug is not None
        assert report.bug.identity == bug.identity

    def test_witness_vanishes_on_the_fixed_variant(self, name):
        mod = example(name)
        program = mod.make_program()
        checker = ChessChecker(program)
        bug = checker.find_bug(max_bound=mod.EXPECTED["bound"])
        record = TraceRecord.from_bug(program, checker.config, bug)
        report = replay_trace(record, mod.make_fixed())
        assert not report.reproduced
