"""Tests for ``repro.invivo``: model checking real threading code."""
