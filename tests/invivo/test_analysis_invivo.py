"""In-vivo static analysis: soundness, reduction equivalence, lint.

:mod:`repro.analysis.invivo` abstractly interprets the *source* of
real thread callables, so in-vivo programs get the same static
summaries as the DSL.  These tests pin its contracts over every
``examples/invivo`` program (buggy and fixed variants):

* soundness -- every shared access observed dynamically is covered by
  the static summary, and every dynamic race variable appears among
  the static race candidates;
* reduction equivalence -- ``check(analysis=True)`` reports the
  identical ``BugReport.identity`` set while never exploring more
  transitions, and prunes strictly (``analysis_pruned > 0``) on at
  least one program;
* the hidden-state lint -- plain attributes written by more than one
  checked thread are flagged with fingerprints stable across fresh
  interpreters; and
* no silent TOP -- when a body defeats the analyzer, the summary
  records *why* and the reason travels on the ``analysis_completed``
  event.
"""

from __future__ import annotations

import importlib
import os
import pathlib
import subprocess
import sys
from typing import Optional, Set, Tuple

import pytest

from repro import (
    ChessChecker,
    EffectKind,
    ExecutionConfig,
    Monitor,
    SearchLimits,
    monitor_factory,
)
from repro.analysis import analyze, analyze_program, lint_program
from repro.invivo import InvivoProgram
from repro.obs import Instrumentation
from repro.races import race_variable_from_message

EXAMPLES = [
    "examples.invivo.bounded_queue",
    "examples.invivo.lazy_singleton",
    "examples.invivo.barrier_misuse",
    "examples.invivo.hidden_state",
]

VARIANTS = [
    (name, factory)
    for name in EXAMPLES
    for factory in ("make_program", "make_fixed")
]

VARIANT_IDS = [f"{name.rsplit('.', 1)[1]}:{factory}" for name, factory in VARIANTS]

HIDDEN_STATE = "examples.invivo.hidden_state"


def build(name: str, factory: str) -> InvivoProgram:
    return getattr(importlib.import_module(name), factory)()


def _is_checkable(name: Optional[str]) -> bool:
    """Real program variables only: skip internals and anonymous slots."""
    return name is not None and not name.startswith("$") and "#" not in name


class AccessCollector(Monitor):
    """Records every ``(kind, variable)`` pair any execution performs."""

    seen: Set[Tuple[str, str]] = set()

    def on_step(self, execution, record) -> None:
        for kind, name in record.accesses:
            if _is_checkable(name):
                AccessCollector.seen.add((kind.value, name))


class TestSoundness:
    """The static facts bound the dynamic behaviour (cross-validation)."""

    @pytest.mark.parametrize("name,factory", VARIANTS, ids=VARIANT_IDS)
    def test_dynamic_accesses_are_statically_covered(self, name, factory):
        summary = analyze_program(build(name, factory))
        assert not summary.any_top, [
            (t.label, t.top_reason) for t in summary.threads if t.top
        ]

        AccessCollector.seen = set()
        config = ExecutionConfig(monitors=(monitor_factory(AccessCollector),))
        ChessChecker(build(name, factory), config).check(
            max_bound=1, limits=SearchLimits(max_executions=200)
        )

        # Programs whose synchronization is entirely monkeypatched
        # (anonymous adapters) can observe zero *named* accesses; the
        # superset obligation still holds for whatever was seen.
        missed = [
            (kind, var)
            for kind, var in sorted(AccessCollector.seen)
            if not summary.covers(EffectKind(kind), var)
        ]
        assert not missed, f"dynamic accesses missing from summary: {missed}"

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_dynamic_races_are_static_candidates(self, name):
        analysis = analyze(build(name, "make_program"))
        candidate_vars = {c.variable for c in analysis.candidates}

        result = ChessChecker(build(name, "make_program")).check(
            max_bound=1, limits=SearchLimits(max_executions=2000)
        )
        raced = {
            variable
            for bug in result.bugs
            for variable in [race_variable_from_message(bug.message)]
            if variable is not None and _is_checkable(variable)
        }
        missed = sorted(raced - candidate_vars)
        assert not missed, f"dynamic races not predicted statically: {missed}"


class TestReductionEquivalence:
    """``analysis=True`` never changes the verdict, only the work."""

    @pytest.mark.parametrize("name,factory", VARIANTS, ids=VARIANT_IDS)
    def test_identical_bug_identities(self, name, factory):
        mod = importlib.import_module(name)
        bound = mod.EXPECTED["bound"]
        baseline = ChessChecker(build(name, factory)).check(max_bound=bound)
        reduced = ChessChecker(build(name, factory)).check(
            max_bound=bound, analysis=True
        )
        assert sorted(b.identity for b in reduced.bugs) == sorted(
            b.identity for b in baseline.bugs
        )
        assert reduced.transitions <= baseline.transitions

    def test_hidden_state_prunes_strictly(self):
        # The acceptance witness: an in-vivo program that explores
        # strictly fewer transitions under the reduction.  The private
        # Atomic scratch slots are proven thread-local, so ICB skips
        # deferring a preemption at each of their operations.
        baseline = ChessChecker(build(HIDDEN_STATE, "make_program")).check(
            max_bound=1
        )
        reduced = ChessChecker(build(HIDDEN_STATE, "make_program")).check(
            max_bound=1, analysis=True
        )
        assert reduced.search.extras["analysis_pruned"] > 0
        assert reduced.transitions < baseline.transitions
        assert sorted(b.identity for b in reduced.bugs) == sorted(
            b.identity for b in baseline.bugs
        )

    def test_proven_local_covers_the_scratch_slots(self):
        analysis = analyze(build(HIDDEN_STATE, "make_program"))
        assert analysis.reduction_enabled
        assert {"stats.scratch-1", "stats.scratch-2"} <= analysis.proven_local


class TestHiddenStateLint:
    """Plain attributes shared across checked threads are flagged."""

    def test_seeded_race_is_flagged(self):
        summary = analyze_program(build(HIDDEN_STATE, "make_program"))
        findings = [
            f for f in lint_program(summary) if f.code == "hidden-state"
        ]
        assert [f.subject for f in findings] == ["Stats.total"]
        assert (
            findings[0].fingerprint
            == "invivo-hidden-state:hidden-state:Stats.total"
        )

    def test_fixed_variant_lints_clean(self):
        summary = analyze_program(build(HIDDEN_STATE, "make_fixed"))
        assert lint_program(summary) == ()

    def test_lazy_singleton_registry_is_flagged(self):
        # The double-checked-locking example keeps its bookkeeping in
        # plain attributes; both variants are (correctly) flagged, and
        # the CI baseline documents them as known findings.
        summary = analyze_program(
            build("examples.invivo.lazy_singleton", "make_program")
        )
        subjects = {
            f.subject
            for f in lint_program(summary)
            if f.code == "hidden-state"
        }
        assert subjects == {"Registry._creations", "Registry._instance"}

    def test_single_writer_is_not_flagged(self):
        # One writing thread is fine: the lint fires only when more
        # than one checked thread instance writes the plain state.
        from repro.invivo import Event

        class Counter:
            def __init__(self) -> None:
                self.n = 0

        def setup():
            counter = Counter()
            done = Event(name="done")

            def writer():
                counter.n = 1
                done.set()

            def reader():
                done.wait()

            return {"writer": writer, "reader": reader}

        summary = analyze_program(InvivoProgram("invivo-single-writer", setup))
        assert not summary.any_top
        assert not [
            f for f in lint_program(summary) if f.code == "hidden-state"
        ]

    def test_fingerprints_are_stable_across_interpreters(self):
        # Baselines live in git, so fingerprints must not depend on
        # hash randomization or any other per-process state.
        root = pathlib.Path(__file__).resolve().parents[2]
        code = (
            "from examples.invivo.hidden_state import make_program\n"
            "from repro.analysis import analyze_program, lint_program\n"
            "for f in lint_program(analyze_program(make_program())):\n"
            "    print(f.fingerprint)\n"
        )
        outputs = []
        for seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                [str(root / "src"), str(root)]
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(root),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert "invivo-hidden-state:hidden-state:Stats.total" in outputs[0]


class TestTopFallback:
    """Unanalyzable bodies degrade loudly, never silently."""

    @staticmethod
    def _opaque_program() -> InvivoProgram:
        class Box:
            def __init__(self) -> None:
                self.value = 0

        def setup():
            def builder():
                Box()

            return {"builder": builder}

        return InvivoProgram("invivo-opaque", setup)

    def test_top_records_a_reason(self):
        analysis = analyze(self._opaque_program())
        assert analysis.summary.any_top
        (thread,) = analysis.summary.threads
        assert thread.top
        assert "construction" in thread.top_reason
        assert not analysis.reduction_enabled

    def test_analysis_completed_event_carries_the_reasons(self):
        events = []

        class Recorder:
            def handle(self, event):
                events.append(event)

            def close(self):
                pass

        obs = Instrumentation()
        obs.bus.subscribe(Recorder())
        ChessChecker(self._opaque_program()).check(
            max_bound=0, analysis=True, obs=obs
        )
        completed = [e for e in events if e.kind == "analysis_completed"]
        assert len(completed) == 1
        assert completed[0].top_threads == 1
        assert "builder: " in completed[0].top_reasons
        assert obs.metrics.counters.get("analysis_top_threads") == 1
