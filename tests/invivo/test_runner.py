"""The cooperative runner: OS-thread hygiene, handshake failure modes,
and the misuse guardrails of the in-vivo harness itself."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ChessChecker, Execution, SearchLimits
from repro.errors import BugKind, ProgramDefinitionError
from repro.invivo import (
    Condition,
    Event,
    InvivoError,
    InvivoProgram,
    Lock,
    Shared,
)


def invivo_threads():
    """Live OS threads the runner created (named ``invivo:...``)."""
    return [
        t for t in threading.enumerate() if t.name.startswith("invivo:")
    ]


def wait_for_cleanup(deadline: float = 5.0) -> None:
    """Abandoned user threads unwind asynchronously; give them a beat."""
    end = time.monotonic() + deadline
    while invivo_threads() and time.monotonic() < end:
        time.sleep(0.01)


def make_blocky_program():
    """A program whose search abandons mid-run threads constantly."""

    def setup():
        gate = Event(name="gate")
        hits = Shared(0, name="hits")

        def opener():
            gate.set()
            hits.set(hits.get() + 1)

        def waiter():
            gate.wait()
            hits.set(hits.get() + 1)

        return {"waiter": waiter, "opener": opener}

    return InvivoProgram("blocky", setup)


class TestThreadHygiene:
    def test_no_os_threads_leak_after_a_search(self):
        program = make_blocky_program()
        ChessChecker(program).check(
            max_bound=2, limits=SearchLimits(max_executions=50)
        )
        wait_for_cleanup()
        assert invivo_threads() == []

    def test_abandoned_threads_are_accounted(self):
        # stop_on_first_bug on a racy program discards executions
        # mid-run; every such discard must show up in the stats, and
        # every started thread must be either finished or abandoned.
        program = make_blocky_program()
        bug = ChessChecker(program).find_bug(max_bound=1)
        assert bug is not None and bug.kind is BugKind.DATA_RACE
        stats = program.invivo_stats
        assert stats["threads"] > 0
        assert stats["handshakes"] > 0
        assert 0 < stats["abandoned"] <= stats["threads"]
        wait_for_cleanup()
        assert invivo_threads() == []

    def test_discarding_an_execution_midway_unwinds_threads(self):
        # close() on a half-driven execution (what the engine does
        # when a schedule is pruned) must not leak the parked thread.
        execution = Execution(make_blocky_program())
        execution.execute(execution.enabled_threads()[0])
        del execution
        wait_for_cleanup()
        assert invivo_threads() == []

    def test_thread_parked_in_cv_wait_unwinds_on_discard(self):
        # Regression: CondVar.waiters once stored ThreadState objects,
        # so a bridge parked in cv.wait() was reachable from the world
        # via its *own* stack (perform -> ctx -> world -> waiters ->
        # generator) and could never be collected -- the OS thread
        # kept itself alive forever.  Waiters hold thread ids now.
        def setup():
            lock = Lock(name="m")
            cond = Condition(lock, name="cv")

            def sleeper():
                with cond:
                    cond.wait()

            def poker():
                with cond:
                    cond.notify()

            return {"sleeper": sleeper, "poker": poker}

        execution = Execution(InvivoProgram("parked-waiter", setup))
        # Drive the sleeper until it parks inside cv.wait (START,
        # acquire, cv-wait), then discard the execution mid-run.
        tid = next(t for t in execution.enabled_threads() if "sleeper" in str(t))
        for _ in range(3):
            execution.execute(tid)
        del execution
        wait_for_cleanup()
        assert invivo_threads() == []


class TestHandshakeTimeout:
    def test_blocking_outside_the_adapters_is_reported(self):
        # A user thread that parks on a *real* primitive never reaches
        # the handshake; the engine must diagnose it rather than hang.
        real_gate = threading.Event()

        def setup():
            def stuck():
                real_gate.wait()

            return {"stuck": stuck}

        program = InvivoProgram(
            "stuck", setup, handshake_timeout=0.2
        )
        execution = Execution(program).run_round_robin()
        assert execution.failed
        [bug] = execution.bugs
        assert bug.kind is BugKind.UNCAUGHT_EXCEPTION
        assert "did not reach a synchronization operation" in str(bug)
        real_gate.set()  # let the real thread unwind
        wait_for_cleanup()


class TestHarnessMisuse:
    def test_adapters_need_an_active_execution(self):
        with pytest.raises(InvivoError, match="no in-vivo execution"):
            Lock()

    def test_setup_may_create_but_not_operate(self):
        def setup():
            lock = Lock(name="m")
            lock.acquire()  # too early: no controlled thread yet

            def worker():
                pass

            return {"worker": worker}

        with pytest.raises(InvivoError, match="inside a checked"):
            InvivoProgram("eager", setup).instantiate()

    def test_generator_setup_is_rejected(self):
        def setup():
            yield "worker", (lambda: None)

        with pytest.raises(ProgramDefinitionError, match="generator"):
            InvivoProgram("gen", setup).instantiate()

    def test_nested_instantiation_is_rejected(self):
        inner = InvivoProgram("inner", lambda: {"t": (lambda: None)})

        def setup():
            inner.instantiate()
            return {"t": (lambda: None)}

        with pytest.raises(InvivoError, match="one at a time"):
            InvivoProgram("outer", setup).instantiate()

    def test_condition_rejects_foreign_locks(self):
        from repro.invivo import Condition, RLock

        def setup():
            Condition(RLock(name="r"))
            return {"t": (lambda: None)}

        with pytest.raises(InvivoError, match="invivo.Lock"):
            InvivoProgram("bad-cv", setup).instantiate()

    def test_semaphore_argument_validation(self):
        def setup():
            from repro.invivo import Semaphore

            with pytest.raises(ValueError):
                Semaphore(-1)
            sem = Semaphore(1, name="s")

            def worker():
                with pytest.raises(ValueError):
                    sem.release(0)

            return {"worker": worker}

        Execution(InvivoProgram("sem-args", setup)).run_round_robin()


class TestObservability:
    def test_run_stats_surface_through_obs(self):
        from repro.obs import Instrumentation

        obs = Instrumentation()
        program = make_blocky_program()
        ChessChecker(program).check(
            max_bound=1, limits=SearchLimits(max_executions=20), obs=obs
        )
        assert obs.metrics.counters["invivo_runs"] == 1
        assert obs.metrics.gauges["invivo_threads"] == program.invivo_stats["threads"]
        assert "invivo:" in obs.metrics.snapshot().summary()

    def test_dsl_programs_emit_no_invivo_metrics(self):
        from repro.obs import Instrumentation
        from repro import Program

        def setup(w):
            flag = w.atomic("flag", 0)

            def t():
                yield flag.write(1)

            return {"t": t}

        obs = Instrumentation()
        ChessChecker(Program("plain", setup)).check(max_bound=1, obs=obs)
        assert "invivo_runs" not in obs.metrics.counters
        assert "invivo:" not in obs.metrics.snapshot().summary()
