"""CLI surface added with the in-vivo subsystem: ``check --module``,
the did-you-mean hint on unknown program names, and witness save /
replay for module-factory programs."""

from __future__ import annotations

import pytest

from repro.cli import main

QUEUE = "examples.invivo.bounded_queue:make_program"
SINGLETON = "examples.invivo.lazy_singleton:make_program"


class TestCheckModule:
    def test_module_factory_is_checkable(self, capsys):
        code = main(["check", "--module", QUEUE, "--stop-on-first-bug"])
        assert code == 1
        assert "uncaught-exception" in capsys.readouterr().out

    def test_fixed_factory_exits_zero(self, capsys):
        code = main(
            ["check", "--module",
             "examples.invivo.bounded_queue:make_fixed", "--bound", "1"]
        )
        assert code == 0
        assert "0 bug(s)" in capsys.readouterr().out

    def test_program_and_module_are_exclusive(self):
        with pytest.raises(SystemExit, match="not both"):
            main(["check", "toy:dekker", "--module", QUEUE])

    def test_one_of_them_is_required(self):
        with pytest.raises(SystemExit, match="PROGRAM"):
            main(["check"])

    def test_module_must_name_a_factory(self):
        with pytest.raises(SystemExit, match="module:factory"):
            main(["check", "--module", "examples.invivo.bounded_queue"])

    def test_missing_module_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="cannot import"):
            main(["check", "--module", "no.such.module:make_program"])

    def test_missing_factory_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="no attribute"):
            main(["check", "--module",
                  "examples.invivo.bounded_queue:make_nothing"])


class TestDidYouMean:
    def test_close_misspelling_gets_a_hint(self):
        with pytest.raises(SystemExit) as err:
            main(["check", "bluetooh"])
        message = str(err.value)
        assert "unknown program 'bluetooh'" in message
        assert "did you mean:" in message and "bluetooth" in message

    def test_hopeless_names_get_no_hint(self):
        with pytest.raises(SystemExit) as err:
            main(["check", "zzzzqqqq"])
        assert "did you mean" not in str(err.value)


class TestTraceRoundTrip:
    def test_save_and_replay_a_module_witness(self, tmp_path, capsys):
        out = tmp_path / "singleton.trace.json"
        code = main(
            ["trace", "save", "--module", SINGLETON, str(out), "--bound", "1"]
        )
        assert code == 0
        assert out.exists()
        capsys.readouterr()
        code = main(["trace", "replay", str(out)])
        assert code == 0
        assert "reproduced" in capsys.readouterr().out

    def test_flag_interspersed_save_still_parses(self, tmp_path):
        # argparse cannot bind a positional that follows interspersed
        # flags to a second optional positional slot; the CLI rescues
        # exactly this form because it is the documented idiom.
        out = tmp_path / "queue.trace.json"
        code = main(
            ["trace", "save", "--module", QUEUE, "--bound", "1", str(out)]
        )
        assert code == 0
        assert out.exists()
