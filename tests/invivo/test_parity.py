"""Adapter/DSL parity: every invivo adapter operation reaches the
engine as the same :class:`EffectKind` sequence the equivalent DSL
program yields.

The kitchen-sink pair below builds the *same* program twice -- once
with real callables over invivo adapters, once as DSL generators over
the core shared objects, using identical object names and thread
labels -- and asserts the two round-robin executions record identical
``(thread, kind, target)`` access sequences step for step.  This is
what makes every downstream layer (race detection, ICB bounds,
fingerprints, witness traces) mean the same thing for in-vivo code as
for the DSL.

The cross-validation half pins how ``repro.analysis`` composes: the
in-vivo analyzer (:mod:`repro.analysis.invivo`) interprets the real
callables' source, so the kitchen sink analyzes without TOP and its
summary must cover the dynamic trace -- the same soundness obligation
the DSL twin carries.  Opting in to the analysis reduction must never
hide a bug.
"""

from __future__ import annotations

from repro import ChessChecker, Execution, Program
from repro.analysis import analyze_program
from repro.core.sync import CondVar
from repro.errors import BugKind
from repro.invivo import (
    Atomic,
    BoundedSemaphore,
    Condition,
    Event,
    InvivoProgram,
    Lock,
    RLock,
    Semaphore,
    Shared,
)


def access_trace(program):
    """The flattened (thread, kind, target) access sequence of the
    preemption-free execution."""
    execution = Execution(program).run_round_robin()
    assert not execution.failed, execution.error
    return [
        (str(record.tid), kind.value, name)
        for record in execution.step_records
        for kind, name in record.accesses
    ]


def make_invivo_kitchen_sink():
    """One thread exercising every adapter operation, plus a condition
    waiter, written as real callables."""

    def setup():
        lock = Lock(name="m")
        rlock = RLock(name="r")
        event = Event(name="e")
        sem = Semaphore(2, name="s")
        cv = Condition(Lock(name="cv.m"), name="cv")
        data = Shared(0, name="d")
        counter = Atomic(0, name="a")

        def worker():
            lock.acquire()
            lock.release()
            assert lock.acquire(blocking=False)
            lock.locked()
            lock.release()
            with rlock:
                rlock.acquire()
                rlock.release()
            assert rlock.acquire(blocking=False)
            rlock.release()
            event.is_set()
            event.set()
            event.wait()
            event.clear()
            sem.acquire()
            assert sem.acquire(blocking=False)
            sem.release(2)
            data.set(data.get() + 1)
            counter.set(counter.get() + 1)
            counter.add(2)
            counter.cas(3, 4)
            counter.exchange(0)
            with cv:
                cv.notify()
                cv.notify_all()

        def waiter():
            with cv:
                cv.wait()

        return {"waiter": waiter, "worker": worker}

    return InvivoProgram("kitchen-sink", setup)


def make_dsl_kitchen_sink():
    """The same program as DSL generators over the core objects."""

    def setup(w):
        lock = w.mutex("m")
        rlock = w.critical_section("r")
        event = w.event("e", initial=False)
        sem = w.semaphore("s", initial=2)
        cvm = w.mutex("cv.m")
        cv = CondVar(w, "cv")
        data = w.var("d", 0)
        counter = w.atomic("a", 0)

        def worker():
            yield lock.acquire()
            yield lock.release()
            assert (yield lock.try_acquire())
            yield lock.poll()
            yield lock.release()
            yield rlock.enter()
            yield rlock.enter()
            yield rlock.leave()
            yield rlock.leave()
            assert (yield rlock.try_enter())
            yield rlock.leave()
            yield event.poll()
            yield event.set()
            yield event.wait()
            yield event.reset()
            yield sem.acquire()
            assert (yield sem.try_acquire())
            yield sem.release(2)
            v = yield data.read()
            yield data.write(v + 1)
            c = yield counter.read()
            yield counter.write(c + 1)
            yield counter.add(2)
            yield counter.cas(3, 4)
            yield counter.exchange(0)
            yield cvm.acquire()
            yield cv.notify()
            yield cv.broadcast()
            yield cvm.release()

        def waiter():
            yield cvm.acquire()
            yield cv.wait(cvm)
            yield cvm.release()

        return {"waiter": waiter, "worker": worker}

    return Program("kitchen-sink", setup)


class TestKitchenSinkParity:
    def test_every_operation_matches_the_dsl(self):
        invivo_trace = access_trace(make_invivo_kitchen_sink())
        dsl_trace = access_trace(make_dsl_kitchen_sink())
        assert invivo_trace == dsl_trace

    def test_the_trace_is_nontrivial(self):
        # Guard against the parity assertion passing vacuously: the
        # run must actually exercise the whole adapter vocabulary.
        kinds = {kind for _, kind, _ in access_trace(make_invivo_kitchen_sink())}
        assert kinds >= {
            "acquire",
            "try-acquire",
            "release",
            "atomic-read",
            "wait",
            "signal",
            "reset",
            "sem-acquire",
            "sem-release",
            "read",
            "write",
            "atomic-write",
            "atomic-add",
            "cas",
            "exchange",
            "cv-wait",
            "cv-notify",
            "cv-broadcast",
        }

    def test_parity_is_deterministic(self):
        # Two fresh instantiations of the invivo program record the
        # same sequence: the run is repeatable, not just DSL-shaped.
        assert access_trace(make_invivo_kitchen_sink()) == access_trace(
            make_invivo_kitchen_sink()
        )


class TestBugParity:
    """Misuse is reported as the same bug kind in both worlds."""

    def test_nonowner_release_is_a_lock_error(self):
        def setup():
            lock = Lock(name="m")

            def rogue():
                lock.release()

            return {"rogue": rogue}

        bug = ChessChecker(InvivoProgram("rogue-release", setup)).find_bug(
            max_bound=0
        )
        assert bug is not None and bug.kind is BugKind.LOCK_ERROR

    def test_bounded_semaphore_overflow_is_a_lock_error(self):
        def invivo_setup():
            sem = BoundedSemaphore(1, name="s")

            def over():
                sem.release()

            return {"over": over}

        def dsl_setup(w):
            sem = w.semaphore("s", initial=1, maximum=1)

            def over():
                yield sem.release()

            return {"over": over}

        invivo_bug = ChessChecker(
            InvivoProgram("sem-overflow", invivo_setup)
        ).find_bug(max_bound=0)
        dsl_bug = ChessChecker(Program("sem-overflow", dsl_setup)).find_bug(
            max_bound=0
        )
        assert invivo_bug is not None and dsl_bug is not None
        assert invivo_bug.kind is dsl_bug.kind is BugKind.LOCK_ERROR


class TestAnalysisCrossValidation:
    """How the static analysis composes with in-vivo programs."""

    def test_dsl_twin_is_statically_covered(self):
        # The DSL twin is analyzable: its summary must cover every
        # dynamic access the kitchen-sink run performs (the usual
        # soundness obligation from tests/analysis).
        program = make_dsl_kitchen_sink()
        summary = analyze_program(program)
        execution = Execution(program).run_round_robin()
        for record in execution.step_records:
            for kind, name in record.accesses:
                if name is None or name.startswith("$") or "#" in name:
                    continue
                assert summary.covers(kind, name), (kind, name)

    def test_invivo_twin_is_statically_covered(self):
        # The in-vivo analyzer reads the callables' source: the same
        # program analyzes without TOP and carries the same soundness
        # obligation as its DSL twin.
        program = make_invivo_kitchen_sink()
        summary = analyze_program(program)
        assert not summary.any_top, [
            (t.label, t.top_reason) for t in summary.threads if t.top
        ]
        execution = Execution(make_invivo_kitchen_sink()).run_round_robin()
        for record in execution.step_records:
            for kind, name in record.accesses:
                if name is None or name.startswith("$") or "#" in name:
                    continue
                assert summary.covers(kind, name), (kind, name)

    def test_analysis_flag_is_safe_on_invivo_programs(self):
        # Opting in to the analysis reduction must not hide the bug.
        def setup():
            data = Shared(0, name="d")

            def bump():
                data.set(data.get() + 1)

            return {"a": bump, "b": bump}

        program = InvivoProgram("racy-bump", setup)
        bug = ChessChecker(program).find_bug(max_bound=1, analysis=True)
        assert bug is not None and bug.kind is BugKind.DATA_RACE
