"""Figure 6: coverage growth for Dryad channels.

Reproduces the paper's Figure 6: distinct states visited versus
executions explored on the Dryad channel library, for iterative
context bounding, unbounded DFS, and depth-bounded search at three
bounds (the paper's idfs-75/100/125, scaled to our driver's shorter
executions).

Expected shape, as in Figure 5: icb achieves the best coverage under
the fixed execution budget.
"""

from __future__ import annotations

from repro import ChessChecker, DepthFirstSearch, IterativeContextBounding
from repro.experiments.coverage import coverage_growth, history_series
from repro.experiments.reporting import render_curves, render_table
from repro.programs.dryad import dryad_channels

from _common import emit, run_once

BUDGET = 800
#: Depth bounds scaled to the Dryad model's execution lengths.
IDFS_BOUNDS = (20, 30, 40)


def run_fig6():
    strategies = {
        "icb": IterativeContextBounding(),
        "dfs": DepthFirstSearch(),
    }
    for bound in IDFS_BOUNDS:
        strategies[f"idfs-{bound}"] = DepthFirstSearch(depth_bound=bound)
    return coverage_growth(
        lambda: ChessChecker(dryad_channels(workers=2, data_items=1)).space(),
        strategies,
        max_executions=BUDGET,
        max_seconds=240,
    )


def test_fig6(benchmark):
    results = run_once(benchmark, run_fig6)
    series = history_series(results, sample_every=max(1, BUDGET // 200))
    chart = render_curves(
        series,
        width=70,
        height=18,
        log_y=True,
        title=f"Figure 6: Dryad coverage growth (budget {BUDGET} executions)",
        x_label="executions",
        y_label="distinct states",
    )
    finals = [
        [label, result.executions, result.distinct_states]
        for label, result in results.items()
    ]
    emit(
        "fig6",
        chart + "\n\n" + render_table(["strategy", "executions", "states"], finals),
    )

    states = {label: result.distinct_states for label, result in results.items()}
    for label in states:
        if label != "icb":
            assert states["icb"] > states[label], (label, states)
