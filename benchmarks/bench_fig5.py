"""Figure 5: coverage growth for APE.

Reproduces the paper's Figure 5: distinct states visited versus
executions explored on APE, for iterative context bounding, unbounded
DFS, and iterative depth-bounded search at three depth bounds (the
paper selected the bounds with maximum, median and minimum coverage;
its labels are idfs-100/150/200, scaled here to our driver's shorter
executions).

Expected shape: "context bounding is able to systematically achieve
better state space coverage, even in the first 1000 executions" --
icb's final coverage beats dfs and every idfs bound under the same
budget.
"""

from __future__ import annotations

from repro import ChessChecker, DepthFirstSearch, IterativeContextBounding
from repro.experiments.coverage import coverage_growth, history_series
from repro.experiments.reporting import render_curves, render_table
from repro.programs.ape import ape

from _common import emit, run_once

BUDGET = 1200
#: Depth bounds scaled to APE-model execution lengths (~45 steps).
IDFS_BOUNDS = (25, 35, 45)


def run_fig5():
    strategies = {
        "icb": IterativeContextBounding(),
        "dfs": DepthFirstSearch(),
    }
    for bound in IDFS_BOUNDS:
        strategies[f"idfs-{bound}"] = DepthFirstSearch(depth_bound=bound)
    return coverage_growth(
        lambda: ChessChecker(ape()).space(),
        strategies,
        max_executions=BUDGET,
        max_seconds=240,
    )


def test_fig5(benchmark):
    results = run_once(benchmark, run_fig5)
    series = history_series(results, sample_every=max(1, BUDGET // 200))
    chart = render_curves(
        series,
        width=70,
        height=18,
        log_y=True,
        title=f"Figure 5: APE coverage growth (budget {BUDGET} executions)",
        x_label="executions",
        y_label="distinct states",
    )
    finals = [
        [label, result.executions, result.distinct_states]
        for label, result in results.items()
    ]
    emit(
        "fig5",
        chart + "\n\n" + render_table(["strategy", "executions", "states"], finals),
    )

    states = {label: result.distinct_states for label, result in results.items()}
    for label in states:
        if label != "icb":
            assert states["icb"] > states[label], (label, states)
