"""Ablation: partial-order reduction (the paper's future work).

Section 5: partial-order reduction is "orthogonal and complementary to
the idea of context-bounding", and the conclusions call for
incorporating it.  This ablation measures the sleep-set reduction
(:class:`repro.search.por.SleepSetDFS`) against plain DFS on
EVERY_ACCESS state spaces: identical state coverage, dramatically fewer
transitions -- and contrasts both against the SYNC_ONLY scheduling
reduction of Section 3.1, which attacks the same redundancy from the
instrumentation side.
"""

from __future__ import annotations

from repro import (
    ChessChecker,
    DepthFirstSearch,
    ExecutionConfig,
    SchedulingPolicy,
    SleepSetDFS,
)
from repro.experiments.reporting import render_table
from repro.programs import toy
from repro.programs.filesystem import filesystem

from _common import emit, run_once

PROGRAMS = {
    "chain(3x2)": lambda: toy.chain_program(3, 2),
    "prodcons(2x2)": lambda: toy.producer_consumer(2, 2),
    "locked-counter": lambda: toy.locked_counter(2, 1),
    "filesystem(2t)": lambda: filesystem(threads=2, inodes=1, blocks=2),
}


def run_ablation():
    rows = []
    checks = []
    for name, factory in PROGRAMS.items():
        every = ExecutionConfig(policy=SchedulingPolicy.EVERY_ACCESS)
        plain = DepthFirstSearch().run(ChessChecker(factory(), every).space())
        por = SleepSetDFS().run(ChessChecker(factory(), every).space())
        sync = DepthFirstSearch().run(ChessChecker(factory()).space())
        rows.append(
            [
                name,
                plain.transitions,
                por.transitions,
                f"{plain.transitions / max(1, por.transitions):.0f}x",
                sync.transitions,
                len(plain.context.states),
                len(por.context.states),
            ]
        )
        checks.append((name, plain, por))
    return rows, checks


def test_ablation_por(benchmark):
    rows, checks = run_once(benchmark, run_ablation)
    emit(
        "ablation_por",
        render_table(
            [
                "program",
                "dfs transitions",
                "dfs+sleep transitions",
                "reduction",
                "sync-only dfs transitions",
                "dfs states",
                "dfs+sleep states",
            ],
            rows,
            title="Ablation: sleep-set partial-order reduction "
            "(EVERY_ACCESS policy, exhaustive)",
        ),
    )
    for name, plain, por in checks:
        assert plain.completed and por.completed, name
        # Soundness: identical state coverage.
        assert set(por.context.states) == set(plain.context.states), name
        # Effectiveness: at least 3x fewer transitions everywhere.
        assert por.transitions * 3 <= plain.transitions, name
