"""Parallel exploration throughput: executions/sec at 1, 2 and 4 workers.

The stateless search is embarrassingly parallel (every work item is a
replayable schedule prefix), so executions/sec should scale with
workers until the hardware runs out of cores.  This benchmark checks
the ``bluetooth`` and ``workstealqueue`` programs at fixed preemption
bounds -- a fixed workload, so the wall-clock ratio *is* the
throughput ratio -- and asserts:

* correctness: every worker count reports identical executions,
  distinct states and certified bound (the bound barrier at work);
* speedup: on hardware with at least 4 usable cores, 4 workers reach
  at least 1.5x the serial executions/sec on ``bluetooth``.  On
  smaller machines (e.g. a 1-core CI container) the speedup line is
  reported but not asserted: time-slicing one core cannot speed up a
  CPU-bound search, and asserting otherwise would only test the
  scheduler.
"""

from __future__ import annotations

import os
import time

from repro import ChessChecker
from repro.programs.bluetooth import bluetooth
from repro.programs.workstealqueue import work_steal_queue

from _common import emit, run_once

WORKER_COUNTS = (1, 2, 4)

#: (name, program factory, max_bound) -- bounds chosen so one serial
#: run takes seconds, enough work to amortize pool startup.
WORKLOADS = (
    ("bluetooth", lambda: bluetooth(buggy=True), 3),
    ("workstealqueue", work_steal_queue, 2),
)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure(factory, max_bound: int, workers: int):
    checker = ChessChecker(factory())
    start = time.perf_counter()
    result = checker.check(max_bound=max_bound, workers=workers)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_experiment():
    rows = []
    checks = {}
    for name, factory, max_bound in WORKLOADS:
        baseline_rate = None
        for workers in WORKER_COUNTS:
            result, elapsed = measure(factory, max_bound, workers)
            rate = result.executions / elapsed if elapsed else float("inf")
            if baseline_rate is None:
                baseline_rate = rate
            rows.append(
                (
                    name,
                    workers,
                    result.executions,
                    result.distinct_states,
                    result.certified_bound,
                    elapsed,
                    rate,
                    rate / baseline_rate,
                )
            )
            checks.setdefault((name, "executions"), set()).add(result.executions)
            checks.setdefault((name, "states"), set()).add(result.distinct_states)
            checks.setdefault((name, "bound"), set()).add(result.certified_bound)
    return rows, checks


def render(rows, cores: int) -> str:
    lines = [
        "Parallel frontier-sharded ICB: executions/sec by worker count",
        f"(usable cores: {cores})",
        "",
        f"{'program':<16} {'workers':>7} {'execs':>7} {'states':>7} "
        f"{'bound':>5} {'secs':>8} {'exec/s':>9} {'speedup':>8}",
    ]
    for name, workers, execs, states, bound, secs, rate, speedup in rows:
        lines.append(
            f"{name:<16} {workers:>7} {execs:>7} {states:>7} "
            f"{bound:>5} {secs:>8.2f} {rate:>9.0f} {speedup:>7.2f}x"
        )
    if cores < 4:
        lines.append(
            "\nspeedup not asserted: fewer than 4 usable cores, a CPU-bound "
            "search cannot beat time-slicing"
        )
    return "\n".join(lines)


def test_parallel_speedup(benchmark):
    rows, checks = run_once(benchmark, run_experiment)
    cores = usable_cores()
    emit("parallel_speedup", render(rows, cores))

    # Correctness is asserted on every machine: worker counts must
    # agree on what was explored and certified.
    for (name, quantity), values in checks.items():
        assert len(values) == 1, f"{name}: {quantity} varies across worker counts"

    if cores >= 4:
        bluetooth_rows = [r for r in rows if r[0] == "bluetooth"]
        by_workers = {r[1]: r[6] for r in bluetooth_rows}
        speedup4 = by_workers[4] / by_workers[1]
        assert speedup4 >= 1.5, f"4-worker speedup {speedup4:.2f}x below 1.5x"
