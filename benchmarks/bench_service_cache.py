"""The durable-service fast paths: cold vs warm-cache vs resumed.

Three regimes of the same exhaustive check, on three built-ins:

* **cold** -- a fresh search that populates the result cache;
* **warm** -- an identical resubmission served entirely from the
  cache (``extras["cache_hit"]``), exploring *zero* executions;
* **resumed** -- the search interrupted at roughly half its
  transitions by a ``SearchLimits`` budget (checkpointing as it
  goes), then completed from the checkpoint by a second checker.

Asserted shape:

* every regime reports identical executions, transitions, distinct
  states and certified bound (cache hits and resumes are exact, the
  property ``tests/service`` proves per-builtin);
* the warm run is a cache hit and explores nothing, so it is at
  least 10x faster than the cold run on every workload;
* the resumed *completion* run costs less wall clock than the cold
  run -- the work done before the interruption is not redone.
"""

from __future__ import annotations

import time

from repro import ChessChecker, ResultCache, SearchLimits
from repro.programs import resolve_builtin

from _common import emit, run_once

#: (spec, max_bound) -- the three service CI workloads: enough work
#: that cold wall clock is measurable, small enough to stay fast.
WORKLOADS = (
    ("dryad:use-after-free", 1),
    ("wsq:pop-race", 2),
    ("toy:stats-assert", 1),
)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _essence(result):
    return (
        result.executions,
        result.transitions,
        result.distinct_states,
        result.certified_bound,
    )


def _identities(result):
    # BugKind is not orderable; encode identities through kind.value.
    return sorted((b.kind.value,) + tuple(b.identity[1]) for b in result.bugs)


def run_experiment(tmp_path):
    rows = []
    for spec, bound in WORKLOADS:
        cache = ResultCache(tmp_path / spec.replace(":", "_"))

        cold, cold_secs = _timed(
            lambda: ChessChecker(resolve_builtin(spec)).check(
                max_bound=bound, cache=cache
            )
        )

        warm, warm_secs = _timed(
            lambda: ChessChecker(resolve_builtin(spec)).check(
                max_bound=bound, cache=cache
            )
        )

        ckpt = tmp_path / f"{spec.replace(':', '_')}.ckpt.json"
        cut = SearchLimits(max_transitions=max(5, cold.transitions // 2))
        ChessChecker(resolve_builtin(spec)).check(
            max_bound=bound, limits=cut, checkpoint=ckpt, checkpoint_stride=8
        )
        resumed, resumed_secs = _timed(
            lambda: ChessChecker(resolve_builtin(spec)).check(
                max_bound=bound, checkpoint=ckpt
            )
        )

        rows.append(
            {
                "spec": spec,
                "bound": bound,
                "cold": cold,
                "warm": warm,
                "resumed": resumed,
                "secs": {
                    "cold": cold_secs,
                    "warm": warm_secs,
                    "resumed": resumed_secs,
                },
            }
        )
    return rows


def render(rows) -> str:
    lines = [
        "Durable service fast paths: cold vs warm-cache vs resumed",
        "(warm = identical resubmission served from the result cache;",
        " resumed = completion of a run interrupted at ~half its transitions)",
        "",
        f"{'program':<22} {'bound':>5} {'execs':>7} {'states':>7} "
        f"{'cold s':>8} {'warm s':>8} {'resume s':>9} {'warm x':>7}",
    ]
    for row in rows:
        secs = row["secs"]
        speedup = secs["cold"] / secs["warm"] if secs["warm"] else float("inf")
        lines.append(
            f"{row['spec']:<22} {row['bound']:>5} {row['cold'].executions:>7} "
            f"{row['cold'].distinct_states:>7} {secs['cold']:>8.2f} "
            f"{secs['warm']:>8.4f} {secs['resumed']:>9.2f} {speedup:>6.0f}x"
        )
    return "\n".join(lines)


def test_service_cache(benchmark, tmp_path):
    rows = run_once(benchmark, lambda: run_experiment(tmp_path))
    emit("service_cache", render(rows))

    for row in rows:
        spec, secs = row["spec"], row["secs"]
        # Exactness: all three regimes report the same search.
        assert _essence(row["warm"]) == _essence(row["cold"]), spec
        assert _essence(row["resumed"]) == _essence(row["cold"]), spec
        cold_ids = _identities(row["cold"])
        assert _identities(row["warm"]) == cold_ids, spec
        assert _identities(row["resumed"]) == cold_ids, spec
        # The warm run is a pure cache read: no exploration at all.
        assert row["warm"].search.extras.get("cache_hit") is True, spec
        assert row["resumed"].search.extras.get("resumed") is True, spec
        assert secs["warm"] * 10 <= secs["cold"], (
            f"{spec}: warm cache {secs['warm']:.4f}s not 10x faster "
            f"than cold {secs['cold']:.2f}s"
        )
        # Resuming does not redo the pre-interruption work (1.25x
        # headroom absorbs timer noise on the sub-second workloads).
        assert secs["resumed"] <= secs["cold"] * 1.25, (
            f"{spec}: resume {secs['resumed']:.2f}s slower than a "
            f"cold run {secs['cold']:.2f}s"
        )
