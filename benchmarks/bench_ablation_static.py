"""Ablation: the static analysis-driven deferral pruning.

Beyond the paper: ``repro.analysis`` proves some variables thread-local
from the program text and ``check(analysis=True)`` then skips deferring
preemptions at accesses to them (see ``docs/analysis.md``).  This
ablation exhausts the same programs with the reduction off and on,
measuring executions, transitions, pruned deferrals and wall-clock —
and asserting the acceptance property: the identical bug set (same
``BugReport.identity``, i.e. the same minimal-preemption witness
schedules) with strictly fewer transitions.
"""

from __future__ import annotations

import time

from repro import ChessChecker, SearchLimits
from repro.experiments.reporting import render_table
from repro.programs import builtin_registry

from _common import emit, run_once

#: Programs with proven-local atomics at scheduling points -- the
#: shape the reduction targets (per-thread statistics counters beside
#: genuinely shared state).
PROGRAMS = [
    "toy:chain",
    "toy:stats-race",
    "toy:stats-assert",
    "toy:stats-deadlock",
]


def run_ablation():
    rows = []
    agreement = {}
    for spec in PROGRAMS:
        factory = builtin_registry()[spec]
        for analysis in (False, True):
            checker = ChessChecker(factory())
            started = time.monotonic()
            result = checker.check(
                max_bound=1,
                limits=SearchLimits(max_seconds=240),
                analysis=analysis,
            )
            elapsed = time.monotonic() - started
            pruned = result.search.extras.get("analysis_pruned", 0)
            rows.append(
                [
                    spec,
                    "on" if analysis else "off",
                    result.executions,
                    result.transitions,
                    pruned,
                    len(result.bugs),
                    f"{elapsed:.2f}s",
                ]
            )
            agreement.setdefault(spec, []).append(
                (
                    result.transitions,
                    pruned,
                    sorted(bug.identity for bug in result.bugs),
                )
            )
    return rows, agreement


def test_ablation_static(benchmark):
    rows, agreement = run_once(benchmark, run_ablation)
    emit(
        "ablation_static",
        render_table(
            ["program", "analysis", "executions", "transitions",
             "pruned", "bugs", "time"],
            rows,
            title="Ablation: static analysis-driven deferral pruning "
            "(ICB to bound 1)",
        ),
    )
    for spec, ((base_trans, _, base_ids), (red_trans, pruned, red_ids)) in (
        agreement.items()
    ):
        # Identical bug set, witness-for-witness.
        assert red_ids == base_ids, spec
        # Strictly fewer transitions, and the pruning counter explains it.
        assert red_trans < base_trans, (spec, red_trans, base_trans)
        assert pruned > 0, spec
