"""Theorem 1: context-bounded executions are polynomial in depth.

Validates the paper's combinatorial core result two ways:

* **soundness**: for small programs enumerated exhaustively, the number
  of executions with exactly c preemptions never exceeds the bound
  C(nk, c) * (nb + c)!;
* **shape**: as the per-thread step count k grows, the bound for fixed
  c grows polynomially (degree c) while the total number of executions
  grows explosively -- the reason context bounding scales with depth
  where depth bounding cannot.
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.programs import toy
from repro.theory import (
    count_by_preemptions,
    executions_with_preemptions_upper,
    total_executions_upper,
)

from _common import emit, run_once

#: (threads, per-thread ops) configurations enumerated exhaustively.
CONFIGS = [(2, 1), (2, 2), (2, 3), (3, 1)]


def run_theorem1():
    measured = []
    for n, steps in CONFIGS:
        program = toy.chain_program(n, steps)
        histogram = count_by_preemptions(program)
        k = steps + 2  # engine adds START and EXIT steps per thread
        b = 2  # START and EXIT are the context-ending steps
        rows = []
        for c, count in histogram.items():
            bound = executions_with_preemptions_upper(n, k, b, c)
            rows.append((c, count, bound))
        measured.append(((n, steps), rows, sum(histogram.values())))
    return measured


def test_theorem1(benchmark):
    measured = run_once(benchmark, run_theorem1)

    sections = []
    for (n, steps), rows, total in measured:
        table = render_table(
            ["preemptions c", "executions (enumerated)", "Theorem 1 bound"],
            rows,
            title=f"chain program: n={n} threads, {steps} ops each "
            f"(total executions {total}, unbounded bound "
            f"{total_executions_upper(n, steps + 2)})",
        )
        sections.append(table)
        for c, count, bound in rows:
            assert count <= bound, (n, steps, c, count, bound)

    # Polynomial versus exponential growth in k, for fixed c = 2.
    growth_rows = []
    for k in (5, 10, 20, 40):
        growth_rows.append(
            [
                k,
                executions_with_preemptions_upper(2, k, 1, 2),
                total_executions_upper(2, k),
            ]
        )
    growth = render_table(
        ["k (steps/thread)", "bound at c=2", "all executions"],
        growth_rows,
        title="growth in execution depth: polynomial (bounded) vs explosive",
    )
    sections.append(growth)
    emit("theorem1", "\n\n".join(sections))

    bounded = [row[1] for row in growth_rows]
    unbounded = [row[2] for row in growth_rows]
    # Doubling k scales the c=2 bound by < 5x but squares (and more)
    # the unbounded count.
    assert bounded[2] / bounded[1] < 5
    assert unbounded[2] / unbounded[1] > unbounded[1] / unbounded[0]
