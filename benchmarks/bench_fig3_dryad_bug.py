"""Figure 3: the Dryad use-after-free needs exactly one preemption.

Reproduces the paper's Figure 3 narrative: "The bug requires a context
switch to happen right before the call to EnterCriticalSection in
AlertApplication.  This is the only preempting context switch.  The
bug trace CHESS found involves 6 nonpreempting context switches."

What the benchmark measures and asserts:

* ICB finds the use-after-free with a witness containing **exactly one
  preempting** switch and several nonpreempting ones, *with a
  certificate*: bound 0 was exhausted first, so no preemption-free
  schedule exposes any bug.
* Witness quality of the baselines: random scheduling also stumbles on
  the bug, but its witnesses carry an order of magnitude more
  preemptions -- "most of the complexity of analyzing a concurrent
  error-trace arises from the interactions between the threads", and
  only ICB "naturally seeks to provide the simplest explanation".
  (On the original five-thread Dryad the paper additionally reports
  DFS failing to find the bug for hours; on our laptop-scale model DFS
  can get lucky, so the robust, asserted claim is witness minimality.
  EXPERIMENTS.md discusses this.)
"""

from __future__ import annotations

from statistics import mean

from repro import ChessChecker, DepthFirstSearch, RandomWalk, SearchLimits
from repro.experiments.reporting import render_table
from repro.programs.dryad import dryad_channels

from _common import emit, run_once


def program():
    return dryad_channels(variant="use-after-free", workers=2, data_items=1)


def random_witnesses(seeds=(0, 1, 2, 3, 4)):
    """Preemption counts of random scheduling's bug witnesses."""
    counts = []
    for seed in seeds:
        result = RandomWalk(executions=5000, seed=seed).run(
            ChessChecker(program()).space(),
            limits=SearchLimits(stop_on_first_bug=True, max_seconds=120),
        )
        if result.found_bug:
            counts.append(result.first_bug.preemptions)
    return counts


def run_fig3():
    checker = ChessChecker(program())
    icb = checker.check(max_bound=1, limits=SearchLimits(stop_on_first_bug=True))
    bug = icb.search.first_bug
    execution = checker.replay(bug)
    preempting = sum(1 for r in execution.step_records if r.preempting)
    switches = sum(1 for a, b in zip(bug.schedule, bug.schedule[1:]) if a != b)

    dfs = DepthFirstSearch().run(
        ChessChecker(program()).space(),
        limits=SearchLimits(
            max_executions=max(icb.executions * 4, 400),
            stop_on_first_bug=True,
            max_seconds=120,
        ),
    )
    return {
        "bug": bug,
        "icb_executions": icb.executions,
        "preempting": preempting,
        "nonpreempting": switches - preempting,
        "dfs_found": dfs.found_bug,
        "dfs_preemptions": dfs.first_bug.preemptions if dfs.found_bug else None,
        "random_preemptions": random_witnesses(),
    }


def test_fig3_dryad_bug(benchmark):
    outcome = run_once(benchmark, run_fig3)
    bug = outcome["bug"]
    randoms = outcome["random_preemptions"]
    rows = [
        ["bug kind", str(bug.kind)],
        ["ICB witness: preempting switches", outcome["preempting"]],
        ["ICB witness: nonpreempting switches", outcome["nonpreempting"]],
        ["ICB certificate", "no bug reachable with 0 preemptions"],
        ["ICB executions to find it", outcome["icb_executions"]],
        ["DFS found it / witness preemptions",
         f"{outcome['dfs_found']} / {outcome['dfs_preemptions']}"],
        ["random witnesses: preemption counts", randoms],
        ["random witnesses: mean preemptions",
         f"{mean(randoms):.1f}" if randoms else "-"],
    ]
    emit(
        "fig3_dryad_bug",
        render_table(
            ["measure", "value"],
            rows,
            title="Figure 3: the Dryad use-after-free (1 preemption)",
        )
        + "\n\n"
        + bug.describe(),
    )

    assert str(bug.kind) == "use-after-free"
    assert bug.preemptions == 1 and outcome["preempting"] == 1
    assert outcome["nonpreempting"] >= 3
    # Every baseline witness is at least as complex; random's are an
    # order of magnitude worse on average.
    if outcome["dfs_found"]:
        assert outcome["dfs_preemptions"] >= 1
    assert randoms, "random walk should stumble on the bug"
    assert all(count >= 1 for count in randoms)
    assert mean(randoms) >= 5
