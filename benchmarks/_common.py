"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment once under pytest-benchmark timing, renders the same
rows/series the paper reports, prints them, and writes them to
``benchmarks/results/<name>.txt`` so the artifacts persist after the
run.  Expected shapes (who wins, where the curves flatten) are asserted
so a regression in the reproduction fails the benchmark suite.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
