"""Fleet throughput: submit-to-result latency and cache-hit rate,
one daemon vs two, cold vs warm.

Four phases, each driving real ``repro serve --fleet --http`` daemon
processes through the HTTP client:

* **cold-1** -- one daemon, every job explored from scratch;
* **cold-2** -- a fresh root, the same jobs, two daemons sharing the
  journal under lease fencing: the makespan shrinks because distinct
  jobs really run in parallel (separate processes, one per claim);
* **warm-1** -- the same work resubmitted to the cold-1 root: every
  job is a result-cache hit, served without exploring anything;
* **warm-x** -- a fresh root whose daemon has the cold-1 daemon as a
  ``--peer``: pull-on-miss fetches each job's exact cache entry over
  HTTP, so a *different host* serves the whole batch from cache too.

Asserted shape:

* every phase completes every job exactly once (attempts == 1);
* cold phases hit the cache never, warm phases always;
* warm-1 is at least 5x faster end to end than cold-1;
* two cold daemons do not worsen *mean* submit-to-result latency:
  even on one core, short jobs stop queueing behind the long search
  and finish earlier.  (Makespan is reported but not asserted -- it
  is floored by the longest single job, and on a starved machine two
  competing daemons can stretch that job.)
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

import repro
from repro.net import ServiceClient

from _common import emit, run_once

#: (spec, bound) -- distinct work keys; a couple of meaty searches so
#: parallelism has something to parallelise, the rest quick.
WORKLOADS = (
    ("wsq:pop-race", 2),
    ("bluetooth", 2),
    ("dryad:use-after-free", 1),
    ("toy:stats-assert", 1),
    ("toy:atomic-counter", 1),
    ("toy:deadlock", 1),
)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONHASHSEED"] = "0"
    return env


def _start_daemon(root, daemon_id, peers=()):
    args = [
        sys.executable, "-m", "repro", "serve", str(root),
        "--fleet", "--http", "0", "--daemon-id", daemon_id,
        "--poll-interval", "0.05",
    ]
    for peer in peers:
        args += ["--peer", peer]
    proc = subprocess.Popen(
        args,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_env(),
        start_new_session=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on http://"), line
    return proc, line.split("listening on ", 1)[1]


def _kill(proc):
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()


def _drive(url, deadline=600.0):
    """Submit every workload, poll to completion; one phase's numbers."""
    client = ServiceClient(url, timeout=10.0)
    submitted = {}
    for spec, bound in WORKLOADS:
        t0 = time.perf_counter()
        job = client.submit(spec, max_bound=bound)
        submitted[job["id"]] = t0
    t_start = min(submitted.values())
    latency = {}
    end = time.monotonic() + deadline
    while len(latency) < len(submitted) and time.monotonic() < end:
        for record in client.jobs():
            job_id = record["id"]
            if job_id in submitted and job_id not in latency:
                if record["status"] == "done":
                    latency[job_id] = time.perf_counter() - submitted[job_id]
                assert record["status"] != "failed", record
        time.sleep(0.02)
    assert len(latency) == len(submitted), "phase did not drain"
    records = {r["id"]: r for r in client.jobs() if r["id"] in submitted}
    assert all(r["attempts"] == 1 for r in records.values())
    hits = sum(1 for r in records.values() if r["cache_hit"])
    return {
        "makespan": time.perf_counter() - t_start,
        "mean_latency": sum(latency.values()) / len(latency),
        "max_latency": max(latency.values()),
        "hit_rate": hits / len(records),
    }


def run_experiment(tmp_path):
    phases = {}
    warm_proc, warm_url = _start_daemon(tmp_path / "one", "solo")
    try:
        phases["cold-1"] = _drive(warm_url)
        phases["warm-1"] = _drive(warm_url)

        cross_proc, cross_url = _start_daemon(
            tmp_path / "cross", "cross", peers=[warm_url]
        )
        try:
            phases["warm-x"] = _drive(cross_url)
        finally:
            _kill(cross_proc)

        a, a_url = _start_daemon(tmp_path / "two", "alpha")
        b, _ = _start_daemon(tmp_path / "two", "beta")
        try:
            phases["cold-2"] = _drive(a_url)
        finally:
            _kill(a)
            _kill(b)
    finally:
        _kill(warm_proc)
    return phases


def render(phases) -> str:
    lines = [
        "Fleet throughput: submit-to-result latency over the HTTP API",
        f"({len(WORKLOADS)} jobs; cold = fresh root, warm = resubmission,",
        " warm-x = fresh root pulling a peer's cache; -N = daemon count)",
        "",
        f"{'phase':<8} {'daemons':>7} {'makespan s':>11} "
        f"{'mean lat s':>11} {'max lat s':>10} {'cache hits':>11}",
    ]
    daemons = {"cold-1": 1, "warm-1": 1, "warm-x": 1, "cold-2": 2}
    for name in ("cold-1", "cold-2", "warm-1", "warm-x"):
        row = phases[name]
        lines.append(
            f"{name:<8} {daemons[name]:>7} {row['makespan']:>11.2f} "
            f"{row['mean_latency']:>11.3f} {row['max_latency']:>10.3f} "
            f"{row['hit_rate']:>10.0%}"
        )
    speedup = phases["cold-1"]["mean_latency"] / phases["cold-2"]["mean_latency"]
    lines += ["", f"two-daemon mean-latency speedup over one (cold): {speedup:.2f}x"]
    return "\n".join(lines)


def test_fleet_throughput(benchmark, tmp_path):
    phases = run_once(benchmark, lambda: run_experiment(tmp_path))
    emit("fleet_throughput", render(phases))

    assert phases["cold-1"]["hit_rate"] == 0.0
    assert phases["cold-2"]["hit_rate"] == 0.0
    # Warm phases never explore: local resubmission and cross-host
    # pull-on-miss both serve the whole batch from cache.
    assert phases["warm-1"]["hit_rate"] == 1.0
    assert phases["warm-x"]["hit_rate"] == 1.0
    assert phases["warm-1"]["makespan"] * 5 <= phases["cold-1"]["makespan"]
    # A second daemon lets short jobs stop queueing behind the long
    # search, so mean latency must not regress (1.1x absorbs noise).
    assert (
        phases["cold-2"]["mean_latency"]
        <= phases["cold-1"]["mean_latency"] * 1.1
    )
