"""Table 2: bugs exposed per total context bound.

Reproduces the paper's Table 2: for each benchmark and each seeded
defect, ICB (with stop-at-first-bug) reports the minimal preemption
bound exposing it.  The paper's rows:

    Bluetooth               1 bug:   bound 1
    Work Stealing Queue     3 bugs:  bounds 1, 2, 2
    Transaction Manager     3 bugs:  bounds 2, 2, 3
    APE                     4 bugs:  bounds 0, 0, 1, 2
    Dryad Channels          5 bugs:  bounds 0, 1, 1, 1, 1

All sixteen bounds are asserted to match exactly.  Dryad runs with a
reduced driver (2 workers, 1 payload item) that provably preserves
every bound; EXPERIMENTS.md records the full five-thread measurements.
"""

from __future__ import annotations

from repro import ChessChecker
from repro.experiments.bugs import BugsByBoundExperiment, bug_bound_table
from repro.experiments.reporting import render_table
from repro.programs.ape import VARIANTS as APE_VARIANTS, ape
from repro.programs.bluetooth import bluetooth
from repro.programs.dryad import VARIANTS as DRYAD_VARIANTS, dryad_channels
from repro.programs.transaction_manager import (
    VARIANTS as TM_VARIANTS,
    transaction_manager,
)
from repro.programs.workstealqueue import VARIANTS as WSQ_VARIANTS, work_steal_queue
from repro.zing import ZingStateSpace

from _common import emit, run_once

#: program -> [(variant, space factory, caching)]
SUITES = {
    "Bluetooth": [
        ("stop-vs-work", lambda: ChessChecker(bluetooth(buggy=True)).space(), False),
    ],
    "Work Stealing Queue": [
        (v, (lambda v=v: ChessChecker(work_steal_queue(variant=v)).space()), False)
        for v in WSQ_VARIANTS
    ],
    "Transaction Manager": [
        (v, (lambda v=v: ZingStateSpace(transaction_manager(v))), True)
        for v in TM_VARIANTS
    ],
    "APE": [
        (v, (lambda v=v: ChessChecker(ape(variant=v)).space()), False)
        for v in APE_VARIANTS
    ],
    "Dryad Channels": [
        (
            v,
            (
                lambda v=v: ChessChecker(
                    dryad_channels(variant=v, workers=2, data_items=1)
                ).space()
            ),
            False,
        )
        for v in DRYAD_VARIANTS
    ],
}

#: The paper's Table 2 counts per bound column 0..3.
PAPER_ROWS = {
    "Bluetooth": [0, 1, 0, 0],
    "Work Stealing Queue": [0, 1, 2, 0],
    "Transaction Manager": [0, 0, 2, 1],
    "APE": [2, 1, 1, 0],
    "Dryad Channels": [1, 4, 0, 0],
}


def run_table2():
    experiment = BugsByBoundExperiment(max_bound=4, max_seconds_per_variant=600)
    for program, variants in SUITES.items():
        for variant, factory, caching in variants:
            experiment.run_variant(program, variant, factory, state_caching=caching)
    return experiment


def test_table2(benchmark):
    experiment = run_once(benchmark, run_table2)
    headers, rows = bug_bound_table(experiment, max_column=3)
    emit(
        "table2",
        render_table(
            headers,
            rows,
            title="Table 2: bugs exposed at each total context bound",
        ),
    )
    by_program = {row[0]: row for row in rows}
    for program, expected in PAPER_ROWS.items():
        row = by_program[program]
        assert row[1] == sum(expected), f"{program}: bug count"
        assert row[2:6] == expected, f"{program}: per-bound counts {row[2:6]}"
    # The caption of Table 2 says "14 bugs" but its rows sum to 16
    # (7 previously known + 9 previously unknown, per the paper's own
    # text); we reproduce the rows.
    total = sum(row[1] for row in rows)
    assert total == 16
