"""Figure 1: state coverage per context bound (work-stealing queue).

Reproduces the paper's Figure 1: the cumulative percentage of the
work-stealing queue's reachable state space covered by executions with
at most c preemptions.  The paper observes (i) full coverage at a
bound far below the maximum possible preemptions (11 vs >= 35 there),
and (ii) 90% coverage by about bound 8.

We run ICB to exhaustion with work-item caching (coverage per bound is
identical with and without caching; caching only prunes re-exploration
of already-visited work items).  Expected shape: steep early growth,
90% well before the final bound, full coverage at a single-digit bound
on our (smaller) driver, while random executions of the same program
exhibit preemption counts several times higher.
"""

from __future__ import annotations

import random

from repro import ChessChecker
from repro.experiments.coverage import coverage_by_bound
from repro.experiments.reporting import render_curves, render_table
from repro.programs.workstealqueue import work_steal_queue

from _common import emit, run_once


def max_random_preemptions(samples: int = 60, seed: int = 3) -> int:
    """How many preemptions unconstrained schedules typically carry."""
    space = ChessChecker(work_steal_queue()).space()
    rng = random.Random(seed)
    worst = 0
    for _ in range(samples):
        state = space.initial_state()
        while not space.is_terminal(state):
            enabled = space.enabled(state)
            state = space.execute(state, enabled[rng.randrange(len(enabled))])
        worst = max(worst, space.preemptions(state))
    return worst


def run_fig1():
    curve, result = coverage_by_bound(
        lambda: ChessChecker(work_steal_queue()).space(), state_caching=True
    )
    return curve, result, max_random_preemptions()


def test_fig1(benchmark):
    curve, result, random_max = run_once(benchmark, run_fig1)
    assert result.completed, "figure 1 needs the exhaustive search"

    rows = [[b, s, f"{f * 100:5.1f}"] for b, s, f in curve]
    table = render_table(
        ["Context Bound", "States", "% State Space Covered"],
        rows,
        title="Figure 1: coverage per context bound (work-stealing queue)",
    )
    chart = render_curves(
        {"coverage %": [(b, f * 100) for b, _, f in curve]},
        width=60,
        height=14,
        x_label="context bound",
        y_label="% state space",
    )
    emit(
        "fig1",
        f"{table}\n\n{chart}\n\nmax preemptions seen in random executions: "
        f"{random_max}; full coverage bound: {curve[-1][0]}",
    )

    fractions = [f for _, _, f in curve]
    # Monotone, complete, and front-loaded: >= 90% strictly before the
    # final bound, as in the paper.
    assert fractions[-1] == 1.0
    ninety = next(b for b, _, f in curve if f >= 0.90)
    assert ninety < curve[-1][0]
    # Bound-0 already covers a nontrivial slice (deep unbounded runs).
    assert fractions[0] > 0.01
    # Unconstrained schedules carry far more preemptions than full
    # coverage needs (the paper: >= 35 vs 11).
    assert random_max > curve[-1][0] // 2
