"""Witness minimization on the Table-2 CHESS witnesses.

For every seeded defect Table 2 exposes through the CHESS engine (the
transaction manager is a ZING model and has no schedule witness to
shrink), find the ICB witness at its Table-2 bound, run the trace
minimizer, and report steps / preemptions before -> after.  Two
invariants are asserted per row: minimization never increases either
axis, and the minimized trace still replays as ``REPRODUCED``.

ICB witnesses are already preemption-minimal, so the preemption column
mostly certifies "no regression"; the interesting column is steps,
where exhaustive search keeps whatever prefix work it happened to
explore first and the minimizer strips it.
"""

from __future__ import annotations

from repro import ChessChecker, SearchLimits
from repro.programs.ape import VARIANTS as APE_VARIANTS, ape
from repro.programs.bluetooth import bluetooth
from repro.programs.dryad import VARIANTS as DRYAD_VARIANTS, dryad_channels
from repro.programs.workstealqueue import VARIANTS as WSQ_VARIANTS, work_steal_queue
from repro.trace.format import TraceRecord
from repro.trace.minimize import minimize_trace
from repro.trace.replay import ReplayOutcome, replay_trace

from _common import emit, run_once

#: (program, variant, Table-2 bound, factory) for every CHESS witness.
SUITE = (
    [("Bluetooth", "stop-vs-work", 1, lambda: bluetooth(buggy=True))]
    + [
        ("Work Stealing Queue", v, 2, (lambda v=v: work_steal_queue(variant=v)))
        for v in WSQ_VARIANTS
    ]
    + [("APE", v, 2, (lambda v=v: ape(variant=v))) for v in APE_VARIANTS]
    + [
        (
            "Dryad Channels",
            v,
            1,
            (lambda v=v: dryad_channels(variant=v, workers=2, data_items=1)),
        )
        for v in DRYAD_VARIANTS
    ]
)


def run_minimize():
    rows = []
    for program_name, variant, bound, factory in SUITE:
        program = factory()
        checker = ChessChecker(program)
        bug = checker.find_bug(
            max_bound=bound, limits=SearchLimits(max_seconds=600)
        )
        assert bug is not None, (program_name, variant)
        trace = TraceRecord.from_bug(program, checker.config, bug)
        result = minimize_trace(trace, factory())
        assert result.steps <= result.original_steps, (program_name, variant)
        assert result.preemptions <= result.original_preemptions, (
            program_name,
            variant,
        )
        report = replay_trace(result.trace, factory())
        assert report.outcome is ReplayOutcome.REPRODUCED, (program_name, variant)
        rows.append((program_name, variant, result))
    return rows


def render(rows):
    header = (
        f"{'program':<22} {'variant':<18} {'steps':>12} {'preemptions':>12} "
        f"{'candidates':>10}"
    )
    lines = [
        "Witness minimization on the Table-2 CHESS witnesses",
        header,
        "-" * len(header),
    ]
    for program_name, variant, r in rows:
        steps = f"{r.original_steps} -> {r.steps}"
        preempt = f"{r.original_preemptions} -> {r.preemptions}"
        lines.append(
            f"{program_name:<22} {variant:<18} {steps:>12} {preempt:>12} "
            f"{r.candidates_tried:>10}"
        )
    shrunk = sum(1 for _, _, r in rows if r.improved)
    lines.append(f"{shrunk}/{len(rows)} witnesses shrunk; none regressed")
    return "\n".join(lines)


def test_minimize(benchmark):
    rows = run_once(benchmark, run_minimize)
    emit("minimize", render(rows))
    # The headline shape: minimization finds fat to trim on at least
    # some real witnesses while provably never regressing any.
    assert any(r.improved for _, _, r in rows)
