"""Figure 2: coverage growth on the work-stealing queue.

Reproduces the paper's Figure 2: distinct states visited (log scale)
as a function of executions explored, for five search strategies on
the work-stealing queue:

    icb     iterative context bounding
    dfs     unbounded depth-first search
    random  uniform random walk
    db:40   depth-first search with depth bound 40
    db:20   depth-first search with depth bound 20

(The depth bounds scale with our driver's execution length, which is
shorter than the original C# harness's.)

Expected shape, as in the paper: icb covers an order of magnitude more
states than dfs and both depth-bounded searches under the same
execution budget, and dominates them pointwise along the curve.

Known deviation (recorded in EXPERIMENTS.md): in the paper icb also
beats the random baseline; in this reproduction uniform random
scheduling covers somewhat more distinct states than icb on this
driver.  This matches later published findings on randomized
scheduling (e.g. probabilistic concurrency testing): a uniform
per-choice random scheduler is a strong coverage baseline, and the
paper's random-search implementation (unspecified) was evidently
weaker.  The benchmark reports random's curve and asserts only that
icb stays within a small constant factor of it while beating every
systematic baseline by an order of magnitude.
"""

from __future__ import annotations

from repro import (
    ChessChecker,
    DepthFirstSearch,
    IterativeContextBounding,
    RandomWalk,
)
from repro.experiments.coverage import coverage_growth, history_series
from repro.experiments.reporting import render_curves, render_table
from repro.programs.workstealqueue import work_steal_queue

from _common import emit, run_once

BUDGET = 4000


def run_fig2():
    return coverage_growth(
        lambda: ChessChecker(work_steal_queue()).space(),
        {
            "icb": IterativeContextBounding(),
            "dfs": DepthFirstSearch(),
            "random": RandomWalk(executions=BUDGET, seed=0),
            "db:40": DepthFirstSearch(depth_bound=40),
            "db:20": DepthFirstSearch(depth_bound=20),
        },
        max_executions=BUDGET,
        max_seconds=240,
    )


def test_fig2(benchmark):
    results = run_once(benchmark, run_fig2)
    series = history_series(results, sample_every=max(1, BUDGET // 200))
    chart = render_curves(
        series,
        width=70,
        height=18,
        log_y=True,
        title=f"Figure 2: states covered vs executions (budget {BUDGET})",
        x_label="executions",
        y_label="distinct states",
    )
    finals = [
        [label, result.executions, result.distinct_states]
        for label, result in results.items()
    ]
    table = render_table(["strategy", "executions", "distinct states"], finals)
    emit("fig2", f"{chart}\n\n{table}")

    states = {label: result.distinct_states for label, result in results.items()}
    # ICB dominates every systematic baseline by a wide margin.
    for label in ("dfs", "db:40", "db:20"):
        assert states["icb"] > 3 * states[label], (label, states)
    # Known deviation: random is a strong baseline here (see module
    # docstring); icb must stay within a small factor of it.
    assert states["icb"] > states["random"] / 4, states
    # And dominates dfs pointwise along the curve (same x grid).
    icb_curve = dict(results["icb"].history)
    dfs_curve = dict(results["dfs"].history)
    shared = sorted(set(icb_curve) & set(dfs_curve))
    assert shared
    ahead = sum(1 for x in shared if icb_curve[x] >= dfs_curve[x])
    assert ahead / len(shared) > 0.9
