"""Ablation: the Section 3.1 scheduling-point reduction.

The paper's CHESS "introduces context switches only at accesses to
synchronization variables, while ... check[ing] for data-races in each
execution.  As shown in Section 3.1, this methodology is sound while
significantly increasing the effectiveness of the state space
exploration."

This ablation quantifies the claim: the same programs are exhausted
under both policies (``sync_only`` versus ``every_access``), measuring
executions, transitions and wall-clock per policy, and verifying both
find the same bug (or none) at the same minimal bound.
"""

from __future__ import annotations

import time

from repro import (
    ChessChecker,
    ExecutionConfig,
    Program,
    SchedulingPolicy,
    SearchLimits,
)
from repro.experiments.reporting import render_table
from repro.programs import toy
from repro.programs.filesystem import filesystem

from _common import emit, run_once


def small_wsq_like() -> Program:
    """Two threads with lock-protected data work: many data accesses
    per critical section, the case the reduction pays off on."""

    def setup(w):
        lock = w.mutex("lock")
        cells = w.array("cells", [0] * 4)

        def worker(base):
            for round_ in range(2):
                yield lock.acquire()
                for i in range(4):
                    value = yield cells[i].read()
                    yield cells[i].write(value + base)
                yield lock.release()

        return [("a", worker, (1,)), ("b", worker, (10,))]

    return Program("lock-heavy", setup)


PROGRAMS = {
    "lock-heavy": small_wsq_like,
    "filesystem(3t)": lambda: filesystem(threads=3, inodes=2, blocks=3),
    "atomic-counter (buggy)": toy.atomic_counter_assert,
}


def run_ablation():
    rows = []
    agreement = {}
    for name, factory in PROGRAMS.items():
        for policy in (SchedulingPolicy.SYNC_ONLY, SchedulingPolicy.EVERY_ACCESS):
            config = ExecutionConfig(policy=policy)
            checker = ChessChecker(factory(), config)
            started = time.monotonic()
            result = checker.check(
                max_bound=2, limits=SearchLimits(max_seconds=240)
            )
            elapsed = time.monotonic() - started
            bug = result.search.first_bug
            rows.append(
                [
                    name,
                    policy.value,
                    result.executions,
                    result.transitions,
                    f"{elapsed:.2f}s",
                    bug.preemptions if bug else "-",
                ]
            )
            agreement.setdefault(name, []).append(
                (result.executions, bug.preemptions if bug else None)
            )
    return rows, agreement


def test_ablation_syncvar(benchmark):
    rows, agreement = run_once(benchmark, run_ablation)
    emit(
        "ablation_syncvar",
        render_table(
            ["program", "policy", "executions", "transitions", "time", "bug bound"],
            rows,
            title="Ablation: sync-only scheduling points vs every-access "
            "(ICB to bound 2)",
        ),
    )
    for name, ((sync_execs, sync_bug), (every_execs, every_bug)) in agreement.items():
        # Soundness: identical verdict and identical minimal bound.
        assert sync_bug == every_bug, name
        # The reduction never explores more executions...
        assert sync_execs <= every_execs, (name, sync_execs, every_execs)
        # ...and pays off by at least 2x wherever data accesses exist
        # between synchronization operations (the atomic-counter
        # program has none, so both policies coincide there).
        if name != "atomic-counter (buggy)":
            assert sync_execs * 2 <= every_execs, (name, sync_execs, every_execs)
