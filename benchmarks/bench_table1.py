"""Table 1: characteristics of the benchmarks.

Reproduces the paper's Table 1: for each benchmark program, the size
(LOC of our model), the number of threads allocated by the test
driver, and the maximum K (total steps), B (blocking instructions) and
c (preemptions) observed while sampling executions.

Expected shape: thread counts match the paper exactly (3, 4, 3, 4, 5,
2); K/B/c are smaller in absolute terms (our models are condensed
Python rather than the original C/C++), but their ordering across
programs -- Bluetooth smallest, Dryad largest among the native
programs -- is preserved.
"""

from __future__ import annotations

from repro import ChessChecker
from repro.experiments.characteristics import (
    characteristics_table,
    count_loc,
    measure_characteristics,
)
from repro.experiments.reporting import render_table
from repro.programs import (
    ape as ape_module,
    bluetooth as bluetooth_module,
    dryad as dryad_module,
    filesystem as filesystem_module,
    transaction_manager as tm_module,
    workstealqueue as wsq_module,
)
from repro.programs.ape import ape
from repro.programs.bluetooth import bluetooth
from repro.programs.dryad import dryad_channels
from repro.programs.filesystem import filesystem
from repro.programs.transaction_manager import transaction_manager
from repro.programs.workstealqueue import work_steal_queue
from repro.zing import ZingStateSpace

from _common import emit, run_once

#: (row name, module for LOC, space factory, sampled executions)
ENTRIES = [
    (
        "Bluetooth",
        bluetooth_module,
        lambda: ChessChecker(bluetooth(buggy=False)).space(),
        150,
    ),
    (
        "File System Model",
        filesystem_module,
        lambda: ChessChecker(filesystem()).space(),
        150,
    ),
    (
        "Work Stealing Q.",
        wsq_module,
        lambda: ChessChecker(work_steal_queue()).space(),
        150,
    ),
    (
        "APE",
        ape_module,
        lambda: ChessChecker(ape()).space(),
        100,
    ),
    (
        "Dryad Channels",
        dryad_module,
        lambda: ChessChecker(dryad_channels()).space(),
        100,
    ),
    (
        "Transaction Manager",
        tm_module,
        lambda: ZingStateSpace(transaction_manager()),
        150,
    ),
]

#: The paper's thread counts, asserted to match exactly.
PAPER_THREADS = {
    "Bluetooth": 3,
    "File System Model": 4,
    "Work Stealing Q.": 3,
    "APE": 4,
    "Dryad Channels": 5,
    "Transaction Manager": 2,
}


def run_table1():
    entries = []
    for name, module, factory, executions in ENTRIES:
        entries.append(
            measure_characteristics(
                name,
                factory,
                loc=count_loc(module),
                executions=executions,
                seed=1,
            )
        )
    return entries


def test_table1(benchmark):
    entries = run_once(benchmark, run_table1)
    headers, rows = characteristics_table(entries)
    emit(
        "table1",
        render_table(headers, rows, title="Table 1: benchmark characteristics"),
    )
    by_name = {entry.name: entry for entry in entries}
    for name, threads in PAPER_THREADS.items():
        assert by_name[name].max_threads == threads, name
    for entry in entries:
        assert entry.max_k > 0 and entry.max_b > 0
        # Random schedulers preempt freely: far more preemptions occur
        # than the small bounds ICB needs (the paper's max c >> bug c).
        assert entry.max_c >= 3, entry
