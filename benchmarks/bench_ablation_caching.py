"""Ablation: state caching, delta compression and search heuristics.

The paper notes "state caching is orthogonal to the idea of
context-bounding; our algorithm may be used with or without it" (ZING
caches, CHESS does not), that ZING packs its DFS stack with
state-delta compression, and cites the Groce-Visser most-enabled-
threads heuristic as a related-work baseline.  This ablation measures
all three:

* ICB with and without the Algorithm 1 work-item table, on both the
  stateless space and the explicit-state ZING space;
* the delta-compressed stack's footprint on a real search stack;
* the heuristic baseline's coverage against ICB under a small budget.
"""

from __future__ import annotations

from repro import (
    ChessChecker,
    EnabledThreadsHeuristic,
    IterativeContextBounding,
    SearchLimits,
)
from repro.experiments.reporting import render_table
from repro.programs import toy
from repro.programs.transaction_manager import transaction_manager
from repro.zing import ZingChecker

from _common import emit, run_once


def run_ablation():
    outcome = {}

    # -- caching on the stateless space ------------------------------
    checker = ChessChecker(toy.chain_program(3, 2))
    plain = checker.check()
    cached = checker.check(state_caching=True)
    outcome["chess"] = (plain, cached)

    # -- caching on the explicit-state space ---------------------------
    zing = ZingChecker(transaction_manager())
    zing_plain = zing.check(state_caching=False)
    zing_cached = zing.check(state_caching=True)
    outcome["zing"] = (zing_plain, zing_cached)

    # -- delta-compressed stack ----------------------------------------
    outcome["delta"] = zing.dfs_with_delta_stack()

    # -- heuristic baseline ----------------------------------------------
    budget = SearchLimits(max_executions=150)
    space_factory = lambda: ChessChecker(toy.chain_program(3, 2)).space()
    outcome["icb-budget"] = IterativeContextBounding().run(
        space_factory(), limits=budget
    )
    outcome["heuristic-budget"] = EnabledThreadsHeuristic().run(
        space_factory(), limits=budget
    )
    return outcome


def test_ablation_caching(benchmark):
    outcome = run_once(benchmark, run_ablation)
    plain, cached = outcome["chess"]
    zing_plain, zing_cached = outcome["zing"]
    delta = outcome["delta"]
    rows = [
        ["icb (stateless)", "off", plain.transitions, plain.distinct_states],
        ["icb (stateless)", "on", cached.transitions, cached.distinct_states],
        ["icb (zing/txnmgr)", "off", zing_plain.transitions, zing_plain.distinct_states],
        ["icb (zing/txnmgr)", "on", zing_cached.transitions, zing_cached.distinct_states],
    ]
    table = render_table(
        ["search", "caching", "transitions", "distinct states"],
        rows,
        title="Ablation: Algorithm 1's work-item table",
    )
    extra = (
        f"delta-compressed DFS stack (txnmgr): stored "
        f"{delta['stack_compression_ratio'] * 100:.0f}% of a full-state stack "
        f"across {delta['visited_states']} states\n"
        f"budgeted coverage (150 executions): icb="
        f"{outcome['icb-budget'].distinct_states} states, most-enabled-threads "
        f"heuristic={outcome['heuristic-budget'].distinct_states} states"
    )
    emit("ablation_caching", f"{table}\n\n{extra}")

    # Caching preserves coverage and slashes work, on both checkers.
    assert cached.distinct_states == plain.distinct_states
    assert cached.transitions < plain.transitions / 10
    assert zing_cached.distinct_states == zing_plain.distinct_states
    assert zing_cached.transitions < zing_plain.transitions
    # The delta stack actually compresses.
    assert delta["stack_compression_ratio"] < 0.8
    # ICB's budgeted coverage at least matches the heuristic baseline.
    assert (
        outcome["icb-budget"].distinct_states
        >= outcome["heuristic-budget"].distinct_states * 0.8
    )
