"""Figure 4: coverage per context bound on fully-searchable programs.

Reproduces the paper's Figure 4: for the four programs whose state
spaces the checkers can search completely -- the file-system model,
Bluetooth, the transaction manager (on the ZING checker) and the
work-stealing queue -- the cumulative percentage of the state space
covered by executions with bounded preemptions.

The paper reports: Bluetooth and the file-system model fully covered
by bound 4; the transaction manager > 90% by 6; the work-stealing
queue > 90% by 8.  Our (smaller) models complete at nearby bounds; the
asserted shape is the paper's qualitative claim: every program crosses
90% at a small single-digit bound well below its full-coverage bound
or with most of the space front-loaded in the first few bounds.
"""

from __future__ import annotations

from repro import ChessChecker
from repro.experiments.coverage import coverage_by_bound
from repro.experiments.reporting import render_curves, render_table
from repro.programs.bluetooth import bluetooth
from repro.programs.filesystem import filesystem
from repro.programs.transaction_manager import transaction_manager
from repro.programs.workstealqueue import work_steal_queue
from repro.zing import ZingStateSpace

from _common import emit, run_once

PROGRAMS = {
    "File System Model": lambda: ChessChecker(filesystem()).space(),
    "Bluetooth": lambda: ChessChecker(bluetooth(buggy=False)).space(),
    "Transaction Manager": lambda: ZingStateSpace(transaction_manager()),
    "Work Stealing Queue": lambda: ChessChecker(work_steal_queue()).space(),
}


def run_fig4():
    curves = {}
    for name, factory in PROGRAMS.items():
        curve, result = coverage_by_bound(factory, state_caching=True)
        assert result.completed, name
        curves[name] = curve
    return curves


def test_fig4(benchmark):
    curves = run_once(benchmark, run_fig4)

    max_bound = max(curve[-1][0] for curve in curves.values())
    rows = []
    for bound in range(max_bound + 1):
        row = [bound]
        for name in PROGRAMS:
            curve = curves[name]
            fraction = curve[min(bound, len(curve) - 1)][2]
            row.append(f"{fraction * 100:5.1f}")
        rows.append(row)
    table = render_table(
        ["Context Bound"] + list(PROGRAMS),
        rows,
        title="Figure 4: % state space covered per context bound",
    )
    chart = render_curves(
        {
            name: [(b, f * 100) for b, _, f in curve]
            for name, curve in curves.items()
        },
        width=64,
        height=16,
        x_label="context bound",
        y_label="% state space",
    )
    emit("fig4", f"{table}\n\n{chart}")

    for name, curve in curves.items():
        fractions = [f for _, _, f in curve]
        assert fractions[-1] == 1.0, name
        ninety = next(b for b, _, f in curve if f >= 0.9)
        # The paper's claim: > 90% of the space within a bound of 8.
        assert ninety <= 8, (name, ninety)
        # Coverage is front-loaded: the first half of the bounds covers
        # the majority of the space.
        half = curve[len(curve) // 2][2]
        assert half >= 0.5, (name, half)
