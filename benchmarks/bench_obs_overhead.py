"""Observability overhead: instrumented-but-silent vs uninstrumented.

The instrumentation contract (``docs/observability.md``) is that a
checker run carrying an :class:`~repro.obs.Instrumentation` with *no
sinks subscribed* stays within a few percent of the uninstrumented
run: hooks update plain dicts, latency probes read the clock on a
stride, and no event object is ever constructed (``bus.active`` is
checked first).  This benchmark measures both configurations on the
bluetooth driver and asserts the acceptance bound.

Methodology: on shared machines single timings of this workload swing
by >10%, far above the effect being measured, so the estimator is the
*median of paired ratios* -- each round times the two configurations
back to back and takes their quotient, which cancels the slow drift
(frequency scaling, noisy neighbors) that dominates the variance.

The budget-check fix rides along: ``SearchContext._check_budget`` used
to call ``time.monotonic()`` on *every* transition; it now reads the
clock every ``TIME_CHECK_STRIDE`` transitions (see README note).
"""

from __future__ import annotations

import statistics
import time

from repro import ChessChecker
from repro.obs import Instrumentation
from repro.programs.bluetooth import bluetooth

from _common import emit, run_once

#: Acceptance bound from the issue: silent instrumentation within 5%.
BUDGET = 0.05
#: The assertion adds headroom for timer noise on shared CI machines;
#: the measured median (typically under 2%) is what results/ records.
ASSERT_BUDGET = 3 * BUDGET

#: Paired rounds; the median of 9 ratios is stable to a few percent.
ROUNDS = 9


def run_check(obs=None) -> float:
    t0 = time.perf_counter()
    result = ChessChecker(bluetooth(buggy=True)).check(max_bound=2, obs=obs)
    elapsed = time.perf_counter() - t0
    assert result.executions == 910, "workload drifted; retune the benchmark"
    return elapsed


def run_overhead():
    run_check()
    run_check(Instrumentation())  # warm both paths
    base_times, inst_times, ratios = [], [], []
    for _ in range(ROUNDS):
        base = run_check()
        inst = run_check(Instrumentation())
        base_times.append(base)
        inst_times.append(inst)
        ratios.append(inst / base)
    return min(base_times), min(inst_times), statistics.median(ratios)


def test_obs_overhead(benchmark):
    base, inst, ratio = run_once(benchmark, run_overhead)
    text = "\n".join(
        [
            "observability overhead (bluetooth, max_bound=2, 910 executions)",
            f"  uninstrumented:         {base * 1000:7.1f} ms (best of {ROUNDS})",
            f"  instrumented, no sinks: {inst * 1000:7.1f} ms (best of {ROUNDS})",
            f"  median paired overhead: {(ratio - 1) * 100:+6.1f}%  (budget {BUDGET:.0%})",
        ]
    )
    emit("obs_overhead", text)
    assert ratio <= 1 + ASSERT_BUDGET, (
        f"silent instrumentation costs {(ratio - 1) * 100:.1f}%, "
        f"over the {ASSERT_BUDGET:.0%} assertion budget"
    )
