"""The stateless model checker: the library's front door.

:class:`ChessChecker` mirrors the paper's CHESS tool: it executes the
program under test directly (no model extraction), is stateless
(revisiting a state means replaying its schedule), introduces context
switches only at synchronization-variable accesses, and checks every
explored execution for data races, which keeps the reduction sound
(Section 3.1, Theorems 2 and 3).

Typical use::

    from repro import ChessChecker, Program

    checker = ChessChecker(Program("demo", setup))
    result = checker.check()                # ICB until exhaustion
    result = checker.check(max_bound=2)     # certify <= 2 preemptions
    bug = checker.find_bug()                # first (minimal) bug or None
    checker.explain(bug)                    # replayed, annotated trace
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..analysis import ProgramAnalysis
    from ..obs.instrument import Instrumentation
    from ..parallel.coordinator import ParallelSettings
    from ..service.cache import ResultCache

from ..core.execution import Execution, ExecutionConfig
from ..core.program import Program
from ..core.transition import ProgramStateSpace
from ..errors import BugReport
from ..search.strategy import SearchLimits, SearchResult, Strategy
from ..search.icb import IterativeContextBounding


@dataclass
class CheckResult:
    """Outcome of one checking run, with the ICB coverage guarantee."""

    program: str
    search: SearchResult
    #: Highest preemption bound completely explored, or ``None`` if
    #: the run stopped before finishing bound 0.  When the search
    #: found no bug, the program is *certified* correct for every
    #: execution with at most this many preemptions.
    certified_bound: Optional[int]

    @property
    def bugs(self) -> List[BugReport]:
        return self.search.bugs

    @property
    def found_bug(self) -> bool:
        return self.search.found_bug

    @property
    def executions(self) -> int:
        return self.search.executions

    @property
    def distinct_states(self) -> int:
        return self.search.distinct_states

    @property
    def transitions(self) -> int:
        return self.search.transitions

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"program: {self.program}", self.search.summary()]
        if self.certified_bound is not None and not self.found_bug:
            lines.append(
                "guarantee: no bug is reachable with at most "
                f"{self.certified_bound} preemption(s)"
            )
        for bug in self.bugs:
            lines.append(bug.describe())
        return "\n".join(lines)


class ChessChecker:
    """Stateless systematic testing of a :class:`Program`."""

    def __init__(
        self, program: Program, config: Optional[ExecutionConfig] = None
    ) -> None:
        self.program = program
        self.config = config or ExecutionConfig()

    # -- state-space construction -----------------------------------------

    def space(
        self,
        obs: Optional["Instrumentation"] = None,
        analysis: Optional["ProgramAnalysis"] = None,
    ) -> ProgramStateSpace:
        """A fresh replay-based state space for this program."""
        return ProgramStateSpace(
            self.program, self.config, obs=obs, analysis=analysis
        )

    def analyze(
        self, obs: Optional["Instrumentation"] = None
    ) -> "ProgramAnalysis":
        """Run the static analysis pass over this checker's program.

        Timed under the ``analysis`` profiling phase and reported as an
        ``analysis_completed`` milestone when instrumented.
        """
        from ..analysis import analyze

        if obs is None:
            return analyze(self.program)
        t0 = obs.hook_analysis.start()
        result = analyze(self.program)
        obs.hook_analysis.stop(t0)
        obs.analysis_completed(result)
        return result

    def _resolve_analysis(
        self,
        analysis: Union[bool, "ProgramAnalysis", None],
        obs: Optional["Instrumentation"],
    ) -> Optional["ProgramAnalysis"]:
        if analysis is None or analysis is False:
            return None
        if analysis is True:
            return self.analyze(obs=obs)
        if analysis.program != self.program.name:
            raise ValueError(
                f"analysis is for program {analysis.program!r}, "
                f"not {self.program.name!r}"
            )
        return analysis

    # -- checking entry points -----------------------------------------------

    def check(
        self,
        strategy: Optional[Strategy] = None,
        max_bound: Optional[int] = None,
        limits: Optional[SearchLimits] = None,
        state_caching: bool = False,
        workers: Optional[int] = None,
        parallel_settings: Optional["ParallelSettings"] = None,
        trace_dir: Optional[Union[str, pathlib.Path]] = None,
        trace_spec: Optional[str] = None,
        obs: Optional["Instrumentation"] = None,
        analysis: Union[bool, "ProgramAnalysis", None] = None,
        checkpoint: Optional[Union[str, pathlib.Path]] = None,
        checkpoint_stride: Optional[int] = None,
        cache: Optional["ResultCache"] = None,
    ) -> CheckResult:
        """Explore the program; by default with ICB until exhaustion.

        Args:
            strategy: overrides the search strategy (any strategy from
                :mod:`repro.search`); mutually exclusive with
                ``max_bound`` and ``state_caching``.
            max_bound: stop ICB after completing this preemption bound.
            limits: execution/transition/time budgets.
            state_caching: enable Algorithm 1's work-item table.
            workers: with a value above 1, shard the ICB frontier
                across this many worker processes (see
                :mod:`repro.parallel`); the bound-ordering guarantee
                and the certified bound are preserved by the
                coordinator's per-bound barrier.  Mutually exclusive
                with ``strategy`` and ``state_caching`` (a per-process
                work-item table defeats its purpose; see
                ``docs/parallel.md``).
            parallel_settings: tuning/robustness knobs for ``workers``.
            trace_dir: when set, every deduplicated bug's witness is
                persisted there as a ``*.trace.json`` file (see
                :mod:`repro.trace`); under ``workers`` the coordinator
                additionally persists bugs as they stream in, so a
                cross-process witness survives even a crashed run.
            trace_spec: optional program spec (e.g. ``wsq:pop-race``)
                recorded in saved traces so ``corpus run`` can rebuild
                the program later.
            obs: optional :class:`~repro.obs.Instrumentation`; events,
                metrics and phase timings flow through it (see
                ``docs/observability.md``).  Under ``workers`` the
                coordinator merges per-worker metric snapshots into it.
            analysis: opt-in static-analysis search reduction (see
                ``docs/analysis.md``).  ``True`` runs the analysis
                pass here; a precomputed
                :class:`~repro.analysis.ProgramAnalysis` for this
                program is used as-is.  Proven thread-local accesses
                stop generating ICB deferrals; any TOP summary
                disables the reduction, making the flag always safe.
                Not supported together with ``workers`` (the frontier
                shards would each re-derive it; run the analysis once
                and shard the already-pruned search instead).
            checkpoint: path of a durable checkpoint file (see
                :mod:`repro.service` and ``docs/service.md``).  When
                the file exists the search *resumes* from it instead
                of starting over; while running, the search journals
                its frontier there so a killed run can continue.
                Serial and parallel checkpoints are interchangeable.
                Only the default ICB strategy supports this.
            checkpoint_stride: serial save cadence in processed work
                items (bound completions always save); defaults to
                :data:`repro.service.checkpoint.DEFAULT_STRIDE`.
            cache: a :class:`~repro.service.cache.ResultCache`.  A
                prior identical check (same program fingerprint,
                config, budgets and strategy shape) is served from
                disk without exploring anything
                (``extras["cache_hit"]``); authoritative new results
                are stored on the way out.  Runs with a wall-clock
                budget bypass the cache entirely.  Only the default
                ICB strategy supports this.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if strategy is not None and (checkpoint is not None or cache is not None):
            raise ValueError(
                "checkpoint/cache only apply to the default ICB strategy"
            )
        cache_key: Optional[str] = None
        if cache is not None and cache.cacheable(limits):
            from ..service.cache import result_cache_key

            if cache.obs is None and obs is not None:
                cache.obs = obs

            cache_key = result_cache_key(
                self.program,
                self.config,
                limits=limits,
                max_bound=max_bound,
                state_caching=state_caching,
                analysis=bool(analysis),
            )
            served = cache.lookup(cache_key)
            if served is not None:
                return served
            if limits is not None and limits.stop_on_first_bug:
                fastpath = cache.corpus_fastpath(self.program, self.config)
                if fastpath is not None:
                    return fastpath
        if workers is not None and workers > 1:
            if analysis:
                raise ValueError(
                    "analysis is not supported with parallel workers yet"
                )
            if strategy is not None:
                raise ValueError("workers only applies to the default ICB strategy")
            if state_caching:
                raise ValueError(
                    "state_caching is per-process and defeats its purpose under "
                    "parallel exploration; run serially for the ZING configuration"
                )
            from ..parallel.coordinator import ParallelCoordinator

            coordinator = ParallelCoordinator(
                self.program,
                self.config,
                workers=workers,
                max_bound=max_bound,
                settings=parallel_settings,
                trace_dir=trace_dir,
                trace_spec=trace_spec,
                obs=obs,
                checkpointer=self._checkpointer(
                    checkpoint, checkpoint_stride, obs=obs
                ),
            )
            result = coordinator.run(limits=limits)
            check_result = CheckResult(
                program=self.program.name,
                search=result,
                certified_bound=result.extras.get("completed_bound"),
            )
            if trace_dir is not None:
                self.save_traces(check_result.bugs, trace_dir, spec=trace_spec)
            if cache is not None and cache_key is not None:
                cache.store(cache_key, check_result)
            self._report_invivo(obs)
            return check_result
        if strategy is None:
            resolved = self._resolve_analysis(analysis, obs)
            strategy = IterativeContextBounding(
                max_bound=max_bound,
                state_caching=state_caching,
                checkpointer=self._checkpointer(
                    checkpoint,
                    checkpoint_stride,
                    state_caching=state_caching,
                    analysis=resolved is not None,
                    obs=obs,
                ),
            )
        elif max_bound is not None:
            raise ValueError("pass max_bound only when using the default strategy")
        else:
            resolved = self._resolve_analysis(analysis, obs)
        result = strategy.run(
            self.space(obs=obs, analysis=resolved), limits=limits, obs=obs
        )
        certified = result.extras.get("completed_bound")
        if certified is None and result.completed:
            # Non-ICB strategies that exhausted the space certify all bounds.
            certified = result.context.max_preemptions
        check_result = CheckResult(
            program=self.program.name, search=result, certified_bound=certified
        )
        if trace_dir is not None:
            self.save_traces(check_result.bugs, trace_dir, spec=trace_spec)
        if cache is not None and cache_key is not None:
            cache.store(cache_key, check_result)
        self._report_invivo(obs)
        return check_result

    def _report_invivo(self, obs: Optional["Instrumentation"]) -> None:
        """Surface an in-vivo program's runner statistics through obs.

        Duck-typed on ``invivo_stats`` so the checker needs no import
        of (or dependency on) :mod:`repro.invivo`; DSL programs skip
        this entirely.
        """
        stats = getattr(self.program, "invivo_stats", None)
        if obs is None or stats is None:
            return
        obs.invivo_run(
            self.program.name,
            stats["threads"],
            stats["handshakes"],
            stats["abandoned"],
        )

    def _checkpointer(
        self,
        checkpoint: Optional[Union[str, pathlib.Path]],
        stride: Optional[int],
        state_caching: bool = False,
        analysis: bool = False,
        obs: Optional["Instrumentation"] = None,
    ):
        """Build the durable-checkpoint driver for one check, if asked."""
        if checkpoint is None:
            return None
        from ..service.checkpoint import DEFAULT_STRIDE, Checkpointer

        return Checkpointer.for_program(
            checkpoint,
            self.program,
            self.config,
            stride=stride if stride is not None else DEFAULT_STRIDE,
            state_caching=state_caching,
            analysis=analysis,
            obs=obs,
        )

    def find_bug(
        self,
        max_bound: Optional[int] = None,
        limits: Optional[SearchLimits] = None,
        workers: Optional[int] = None,
        parallel_settings: Optional["ParallelSettings"] = None,
        trace_dir: Optional[Union[str, pathlib.Path]] = None,
        trace_spec: Optional[str] = None,
        obs: Optional["Instrumentation"] = None,
        analysis: Union[bool, "ProgramAnalysis", None] = None,
        checkpoint: Optional[Union[str, pathlib.Path]] = None,
        checkpoint_stride: Optional[int] = None,
        cache: Optional["ResultCache"] = None,
    ) -> Optional[BugReport]:
        """Run ICB until the first bug; its witness is preemption-minimal.

        Because ICB explores every execution with ``c`` preemptions
        before any with ``c + 1``, the returned report's
        ``preemptions`` is the minimum over all witnesses of any bug.
        With ``workers`` the parallel engine finishes the whole bound
        in which the first bug appears before stopping, which keeps
        the same guarantee (and the same deterministic answer) at the
        cost of exploring the remainder of that bound.
        """
        limits = (limits or SearchLimits()).with_stop_on_first_bug()
        result = self.check(
            max_bound=max_bound,
            limits=limits,
            workers=workers,
            parallel_settings=parallel_settings,
            trace_dir=trace_dir,
            trace_spec=trace_spec,
            obs=obs,
            analysis=analysis,
            checkpoint=checkpoint,
            checkpoint_stride=checkpoint_stride,
            cache=cache,
        )
        return result.search.first_bug

    # -- trace persistence ------------------------------------------------------

    def save_traces(
        self,
        bugs: Sequence[BugReport],
        trace_dir: Union[str, pathlib.Path],
        spec: Optional[str] = None,
    ) -> List[pathlib.Path]:
        """Persist witness traces for ``bugs`` under ``trace_dir``.

        Filenames are content-addressed by witness identity, so saving
        the same bug repeatedly overwrites rather than duplicates.
        """
        from ..trace.corpus import TraceCorpus
        from ..trace.format import TraceRecord

        corpus = TraceCorpus(trace_dir)
        return [
            corpus.save(TraceRecord.from_bug(self.program, self.config, bug, spec=spec))
            for bug in bugs
        ]

    # -- witness replay ---------------------------------------------------------

    def replay(self, bug: BugReport) -> Execution:
        """Deterministically re-execute a bug's witness schedule."""
        execution = Execution(self.program, self.config)
        for tid in bug.schedule:
            execution.execute(tid)
            if execution.finished:
                break
        return execution

    def explain(self, bug: BugReport) -> str:
        """Replay a bug and render an annotated trace.

        Preempting steps are marked ``*``; the paper argues the trace
        with the fewest preemptions is the simplest explanation of a
        concurrency error, and ICB's witnesses are exactly those.
        """
        execution = self.replay(bug)
        header = bug.describe()
        return f"{header}\ntrace (preempting steps marked *):\n{execution.describe_trace()}"


def check_program(
    program: Program,
    max_bound: Optional[int] = None,
    config: Optional[ExecutionConfig] = None,
    limits: Optional[SearchLimits] = None,
    workers: Optional[int] = None,
    trace_dir: Optional[Union[str, pathlib.Path]] = None,
) -> CheckResult:
    """One-call ICB checking (see :class:`ChessChecker`)."""
    return ChessChecker(program, config).check(
        max_bound=max_bound, limits=limits, workers=workers, trace_dir=trace_dir
    )


def find_minimal_bug(
    program: Program,
    max_bound: Optional[int] = None,
    config: Optional[ExecutionConfig] = None,
    limits: Optional[SearchLimits] = None,
    workers: Optional[int] = None,
    trace_dir: Optional[Union[str, pathlib.Path]] = None,
) -> Optional[BugReport]:
    """One-call minimal-preemption bug finding."""
    return ChessChecker(program, config).find_bug(
        max_bound=max_bound, limits=limits, workers=workers, trace_dir=trace_dir
    )
