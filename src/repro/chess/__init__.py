"""The CHESS-style stateless model checker facade."""

from .checker import CheckResult, ChessChecker, check_program, find_minimal_bug

__all__ = ["CheckResult", "ChessChecker", "check_program", "find_minimal_bug"]
