"""Counting bounds from Section 2 of the paper.

Consider a terminating program P with ``n`` threads, each executing at
most ``k`` steps of which at most ``b`` are potentially blocking.

* Without bounding, the number of executions can reach
  ``(nk)! / (k!)^n`` -- exponential in both ``n`` and ``k``.
* **Theorem 1**: with at most ``c`` preemptions, the number of
  executions is at most ``C(nk, c) * (nb + c)!`` -- *polynomial* in
  ``k`` (degree ``c``), which is what makes context-bounded search
  scale with execution depth.

All functions compute exact arbitrary-precision integers.
"""

from __future__ import annotations

from math import comb, factorial


def _validate(n: int, k: int, b: int | None = None, c: int | None = None) -> None:
    if n < 1:
        raise ValueError(f"need at least one thread, got n={n}")
    if k < 0:
        raise ValueError(f"steps per thread must be non-negative, got k={k}")
    if b is not None and not 0 <= b <= k:
        raise ValueError(f"blocking steps must satisfy 0 <= b <= k, got b={b}")
    if c is not None and c < 0:
        raise ValueError(f"preemption bound must be non-negative, got c={c}")


def total_executions_upper(n: int, k: int) -> int:
    """Upper bound on *all* executions: ``(nk)! / (k!)^n``.

    This is the number of interleavings of ``n`` sequences of ``k``
    steps each (the multinomial coefficient), exponential in both
    ``n`` and ``k`` -- the state explosion every bounding heuristic is
    fighting.
    """
    _validate(n, k)
    return factorial(n * k) // (factorial(k) ** n)


def executions_with_preemptions_upper(n: int, k: int, b: int, c: int) -> int:
    """Theorem 1: executions with ``c`` preemptions <= ``C(nk, c) * (nb + c)!``.

    Proof shape: an execution has at most ``nk`` points where a
    preemption can occur, so there are at most ``C(nk, c)`` ways to
    place the ``c`` preemptions; the execution then consists of at most
    ``nb + c`` contexts, which can be arranged in at most ``(nb + c)!``
    ways.
    """
    _validate(n, k, b, c)
    return comb(n * k, c) * factorial(n * b + c)


def simplified_bound(n: int, k: int, b: int, c: int) -> int:
    """The paper's simplification ``(n^2 k b)^c * (nb)!``.

    Valid reading of the text for ``c`` much smaller than ``k`` and
    ``nb``; exact dominance over Theorem 1's bound is not claimed, but
    both are polynomial in ``k`` of degree ``c``.
    """
    _validate(n, k, b, c)
    return (n * n * k * b) ** c * factorial(n * b)


def nonblocking_bound(n: int, k: int, c: int) -> int:
    """The non-blocking special case ``(n^2 k)^c * n!``.

    In a non-blocking program the only blocking action is the
    fictitious thread-termination step, so ``b = 1``.
    """
    _validate(n, k, None, c)
    return (n * n * k) ** c * factorial(n)


def growth_table(n: int, b: int, c: int, ks: list[int]) -> list[tuple[int, int, int]]:
    """(k, Theorem-1 bound, unbounded count) rows for increasing ``k``.

    Used by the Theorem 1 benchmark to exhibit polynomial versus
    exponential growth in the execution depth.
    """
    rows = []
    for k in ks:
        rows.append(
            (
                k,
                executions_with_preemptions_upper(n, k, b, c),
                total_executions_upper(n, k),
            )
        )
    return rows
