"""Exhaustive enumeration of a program's executions (ground truth).

For programs small enough, these helpers enumerate *every* maximal
execution with its preemption count.  Tests and benchmarks use the
results to validate:

* Theorem 1: the per-bound execution counts against the combinatorial
  upper bound;
* ICB's bound-ordering: the minimal-preemption witness ICB returns for
  a bug against the brute-force minimum;
* strategy completeness: every strategy that claims exhaustion visits
  the same executions.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Optional, Tuple

from ..core.execution import ExecutionConfig, Schedule
from ..core.program import Program
from ..core.transition import ProgramStateSpace
from ..errors import BugReport


def enumerate_executions(
    program: Program,
    config: Optional[ExecutionConfig] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[Schedule, int, Tuple[BugReport, ...]]]:
    """Yield (schedule, preemptions, bugs) for every maximal execution.

    Depth-first, deterministic order.  ``limit`` stops the enumeration
    after that many executions (a safety valve for accidentally large
    programs in tests).
    """
    space = ProgramStateSpace(program, config)
    initial = space.initial_state()
    if space.is_terminal(initial):
        yield (), 0, space.bugs(initial)
        return
    produced = 0
    stack = [(initial, tid) for tid in reversed(space.enabled(initial))]
    while stack:
        state, tid = stack.pop()
        successor = space.execute(state, tid)
        if space.is_terminal(successor):
            yield (
                space.schedule_of(successor),
                space.preemptions(successor),
                space.bugs(successor),
            )
            produced += 1
            if limit is not None and produced >= limit:
                return
            continue
        for other in reversed(space.enabled(successor)):
            stack.append((successor, other))


def count_by_preemptions(
    program: Program,
    config: Optional[ExecutionConfig] = None,
    limit: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram: number of maximal executions per preemption count."""
    counter: Counter[int] = Counter()
    for _, preemptions, _ in enumerate_executions(program, config, limit):
        counter[preemptions] += 1
    return dict(sorted(counter.items()))


def brute_force_minimal_bug(
    program: Program,
    config: Optional[ExecutionConfig] = None,
    limit: Optional[int] = None,
) -> Optional[int]:
    """The true minimum preemption count over all buggy executions.

    ``None`` if no execution exhibits a bug.  Exhaustive, so only for
    small programs; ICB's first bug must match this value (tested in
    the property suite).
    """
    best: Optional[int] = None
    for _, _, bugs in enumerate_executions(program, config, limit):
        for bug in bugs:
            if best is None or bug.preemptions < best:
                best = bug.preemptions
    return best
