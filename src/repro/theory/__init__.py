"""The combinatorial theory of context bounding (Section 2).

:mod:`repro.theory.bounds` implements the counting arguments:
the total-execution explosion ``(nk)! / (k!)^n`` and Theorem 1's
polynomial-in-k bound ``C(nk, c) * (nb + c)!`` on executions with ``c``
preemptions, plus the paper's simplified forms.

:mod:`repro.theory.enumeration` exhaustively enumerates the real
executions of small programs so tests and benchmarks can validate the
bounds and the search strategies against ground truth.
"""

from .bounds import (
    executions_with_preemptions_upper,
    nonblocking_bound,
    simplified_bound,
    total_executions_upper,
)
from .enumeration import (
    brute_force_minimal_bug,
    count_by_preemptions,
    enumerate_executions,
)

__all__ = [
    "brute_force_minimal_bug",
    "count_by_preemptions",
    "enumerate_executions",
    "executions_with_preemptions_upper",
    "nonblocking_bound",
    "simplified_bound",
    "total_executions_upper",
]
