"""repro: iterative context bounding for systematic testing of
multithreaded programs.

A faithful, self-contained reproduction of Musuvathi & Qadeer,
*Iterative Context Bounding for Systematic Testing of Multithreaded
Programs* (PLDI 2007) -- the CHESS paper.

Quickstart::

    from repro import ChessChecker, Program, check

    def setup(w):
        balance = w.var("balance", 0)
        lock = w.mutex("lock")

        def deposit():
            v = yield balance.read()       # racy read-modify-write
            yield balance.write(v + 10)

        def audit():
            yield lock.acquire()
            v = yield balance.read()
            check(v % 10 == 0, "balance must be a multiple of 10")
            yield lock.release()

        return {"deposit1": deposit, "deposit2": deposit, "audit": audit}

    bug = ChessChecker(Program("bank", setup)).find_bug()
    print(bug.describe())   # minimal-preemption witness schedule

Package layout:

* :mod:`repro.core` -- the controlled concurrency runtime.
* :mod:`repro.analysis` -- static effect analysis: per-thread access
  summaries, the lock-order graph, race candidates, lint findings and
  the analysis-driven search reduction (see ``docs/analysis.md``).
* :mod:`repro.search` -- ICB and the baseline strategies.
* :mod:`repro.races` -- happens-before tracking and race detection.
* :mod:`repro.monitors` -- pluggable per-execution property monitors.
* :mod:`repro.chess` -- the stateless checker facade.
* :mod:`repro.zing` -- the explicit-state checker and its modeling
  framework.
* :mod:`repro.theory` -- the combinatorial bounds of Theorem 1.
* :mod:`repro.programs` -- the paper's benchmark programs.
* :mod:`repro.trace` -- persistent witness traces: deterministic
  replay, schedule minimization, and the bug-corpus regression runner.
* :mod:`repro.obs` -- opt-in instrumentation: event stream, metrics,
  live progress, phase profiling (see ``docs/observability.md``).
* :mod:`repro.service` -- the durable checking service: search
  checkpoint/resume, the content-addressed result cache and the
  crash-safe job queue behind ``repro serve`` (see
  ``docs/service.md``).
* :mod:`repro.experiments` -- drivers regenerating every table and
  figure of the evaluation.
"""

from .analysis import LintFinding, ProgramAnalysis, RaceCandidate, analyze
from .chess.checker import CheckResult, ChessChecker, check_program, find_minimal_bug
from .core.effects import Effect, EffectKind, alloc, join, sched_yield, spawn
from .core.execution import (
    Execution,
    ExecutionConfig,
    RaceDetection,
    SchedulingPolicy,
    StepRecord,
)
from .core.program import Program, check
from .core.thread import ThreadHandle, ThreadId
from .core.transition import ProgramStateSpace, StateSpace
from .core.world import World
from .errors import BugKind, BugReport, ReproError, ScheduleMismatch
from .monitors.monitor import FinalStateMonitor, InvariantMonitor, Monitor, monitor_factory
from .obs import Instrumentation, MetricsSnapshot
from .parallel import ParallelCoordinator, ParallelSettings, WorkItem
from .service import (
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    Checkpointer,
    CheckingService,
    JobQueue,
    ResultCache,
)
from .trace import (
    MinimizationResult,
    ReplayOutcome,
    ReplayReport,
    TraceCorpus,
    TraceFormatError,
    TraceRecord,
    minimize_trace,
    replay_trace,
)
from .search import (
    DepthFirstSearch,
    EnabledThreadsHeuristic,
    IterativeContextBounding,
    IterativeDeepening,
    PCTScheduler,
    RaceCandidatePrioritizer,
    RandomWalk,
    SearchContext,
    SearchLimits,
    SearchResult,
    SleepSetDFS,
    Strategy,
)

__version__ = "1.0.0"

__all__ = [
    "BugKind",
    "BugReport",
    "CheckResult",
    "CheckingService",
    "Checkpoint",
    "CheckpointError",
    "CheckpointMismatch",
    "Checkpointer",
    "ChessChecker",
    "DepthFirstSearch",
    "Effect",
    "EffectKind",
    "EnabledThreadsHeuristic",
    "Execution",
    "ExecutionConfig",
    "FinalStateMonitor",
    "Instrumentation",
    "InvariantMonitor",
    "IterativeContextBounding",
    "IterativeDeepening",
    "JobQueue",
    "LintFinding",
    "MetricsSnapshot",
    "MinimizationResult",
    "Monitor",
    "PCTScheduler",
    "ParallelCoordinator",
    "ParallelSettings",
    "Program",
    "ProgramAnalysis",
    "ProgramStateSpace",
    "RaceCandidate",
    "RaceCandidatePrioritizer",
    "RaceDetection",
    "RandomWalk",
    "ReplayOutcome",
    "ReplayReport",
    "ReproError",
    "ResultCache",
    "ScheduleMismatch",
    "SchedulingPolicy",
    "SearchContext",
    "SearchLimits",
    "SearchResult",
    "SleepSetDFS",
    "StateSpace",
    "StepRecord",
    "Strategy",
    "ThreadHandle",
    "ThreadId",
    "TraceCorpus",
    "TraceFormatError",
    "TraceRecord",
    "WorkItem",
    "World",
    "alloc",
    "analyze",
    "check",
    "check_program",
    "find_minimal_bug",
    "join",
    "minimize_trace",
    "monitor_factory",
    "replay_trace",
    "sched_yield",
    "spawn",
]
