"""Partial-order reduction: sleep-set depth-first search.

The paper's future work: "incorporating complementary state-reduction
techniques, such as partial-order reduction, could improve
scalability", with Section 5 noting that "state-space coverage
increases at an even faster rate when partial-order reduction is
performed during iterative context-bounding".  This module implements
the classic sleep-set algorithm (Godefroid) over the
:class:`~repro.core.transition.StateSpace` interface.

Two pending steps are *independent* when their footprints -- the sets
of shared objects they touch -- are disjoint: they commute and neither
affects the other's enabledness.  A thread in a state's *sleep set*
has already been explored in an equivalent order from a sibling branch,
so scheduling it again first would only revisit a known trace; the
search skips it.

Sleep sets need the footprint of a step *before* executing it, which is
exact only under the ``EVERY_ACCESS`` policy (a ``SYNC_ONLY`` big step
performs data accesses that depend on values it reads).  The strategy
therefore refuses spaces whose ``supports_por`` is false -- under
``SYNC_ONLY`` the scheduling-point reduction of Section 3.1 is already
doing (different) partial-order work.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Tuple

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from ..errors import ReproError
from .strategy import SearchContext, Strategy

Footprint = FrozenSet[str]
SleepSet = Dict[ThreadId, Footprint]


class _Frame:
    """One node of the sleep-set DFS."""

    __slots__ = ("state", "sleep", "choices", "done")

    def __init__(self, state: object, sleep: SleepSet, choices: List[ThreadId]):
        self.state = state
        self.sleep = sleep
        self.choices: Iterator[ThreadId] = iter(choices)
        #: siblings explored so far at this node: (thread, footprint).
        self.done: List[Tuple[ThreadId, Footprint]] = []


class SleepSetDFS(Strategy):
    """Depth-first search pruned with sleep sets.

    Explores at least one interleaving of every Mazurkiewicz trace
    (hence visits every reachable state and finds every bug a plain
    DFS finds) while skipping provably equivalent reorderings.  The
    ``pruned_branches`` extra counts skipped scheduling choices.
    """

    name = "dfs+sleep"

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        if not getattr(space, "supports_por", False):
            raise ReproError(
                "sleep-set reduction needs exact step footprints; use an "
                "EVERY_ACCESS-policy state space (SYNC_ONLY big steps "
                "have data-dependent footprints)"
            )
        initial = space.initial_state()
        if space.is_terminal(initial):
            ctx.note_terminal(space, initial)
            return

        pruned = 0
        frames: List[_Frame] = [self._make_frame(space, initial, {})]
        if frames[0].sleep is None:  # pragma: no cover - defensive
            return
        while frames:
            frame = frames[-1]
            tid = next(frame.choices, None)
            if tid is None:
                frames.pop()
                continue
            footprint = space.pending_footprint(frame.state, tid)
            successor = space.execute(frame.state, tid)
            ctx.visit(space, successor)
            # After t is fully explored, scheduling it first becomes
            # redundant for the remaining siblings.
            frame.done.append((tid, footprint))
            if space.is_terminal(successor):
                ctx.note_terminal(space, successor)
                continue
            child_sleep: SleepSet = {
                sleeper: sleeper_fp
                for sleeper, sleeper_fp in frame.sleep.items()
                if sleeper_fp.isdisjoint(footprint)
            }
            # Previously explored siblings stay asleep in this subtree
            # when independent of the step just taken.
            for sibling, sibling_fp in frame.done[:-1]:
                if sibling_fp.isdisjoint(footprint):
                    child_sleep[sibling] = sibling_fp
            child = self._make_frame(space, successor, child_sleep)
            if child is None:
                pruned += 1
                continue
            frames.append(child)
        extras["pruned_branches"] = pruned

    @staticmethod
    def _make_frame(space: StateSpace, state: object, sleep: SleepSet):
        """Build a frame, or None when every enabled thread sleeps."""
        enabled = space.enabled(state)
        choices = [tid for tid in enabled if tid not in sleep]
        if not choices:
            # Fully redundant branch: every continuation is a
            # reordering of an already-explored trace.
            return None
        # Threads that blocked while asleep wake up naturally: a
        # dependent step would have removed them from the sleep set,
        # and an independent one cannot have disabled them.
        live_sleep = {t: fp for t, fp in sleep.items() if t in enabled}
        return _Frame(state, live_sleep, choices)
