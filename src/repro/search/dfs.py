"""Depth-first search, unbounded or depth-bounded.

The baselines of the paper's Figure 2: ``dfs`` (unbounded depth-first
search) and ``db:N`` (depth-first search pruned at depth ``N``).  DFS
over a stateless space replays prefixes when it backtracks, exactly as
the paper's CHESS does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from .statecache import WorkItemCache
from .strategy import SearchContext, Strategy


class DepthFirstSearch(Strategy):
    """Classic DFS over scheduling choices.

    Args:
        depth_bound: prune executions at this many steps (``db:N`` in
            the paper); ``None`` searches unboundedly.
        state_caching: prune revisited (state, thread) work items.
    """

    def __init__(
        self, depth_bound: Optional[int] = None, state_caching: bool = False
    ) -> None:
        if depth_bound is not None and depth_bound < 1:
            raise ValueError("depth_bound must be positive")
        self.depth_bound = depth_bound
        self.state_caching = state_caching

    @property
    def name(self) -> str:  # type: ignore[override]
        return "dfs" if self.depth_bound is None else f"db:{self.depth_bound}"

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        cache = WorkItemCache() if self.state_caching else None
        initial = space.initial_state()
        if space.is_terminal(initial):
            ctx.note_terminal(space, initial)
            return
        #: stack entries: (state, tid to run, depth of state).
        stack: List[Tuple[object, ThreadId, int]] = [
            (initial, tid, 0) for tid in reversed(space.enabled(initial))
        ]
        obs = ctx.obs
        pruned = 0
        while stack:
            state, tid, depth = stack.pop()
            if cache is not None:
                hit = cache.seen(space.fingerprint(state), tid)
                if obs is not None:
                    obs.cache_lookup(hit)
                if hit:
                    continue
            successor = space.execute(state, tid)
            ctx.visit(space, successor)
            if space.is_terminal(successor):
                ctx.note_terminal(space, successor)
                continue
            if self.depth_bound is not None and depth + 1 >= self.depth_bound:
                # A depth-pruned path still counts as one explored
                # execution, as in the paper's db:N curves.
                pruned += 1
                ctx.note_terminal(space, successor)
                continue
            for other in reversed(space.enabled(successor)):
                stack.append((successor, other, depth + 1))
        extras["pruned_executions"] = pruned
        if cache is not None:
            extras["cache_hits"] = cache.hits
            extras["cache_size"] = len(cache)
