"""Iterative context bounding -- Algorithm 1 of the paper.

The search maintains two queues of work items ``(state, tid)``.
``work_queue`` holds items explorable within the current preemption
bound; whenever continuing the current thread is possible but the
search wants to schedule a different *enabled* thread -- a preempting
context switch -- the corresponding item is deferred to
``next_queue``.  When the current bound is exhausted the bound is
incremented and the deferred items become the new frontier.

Consequences (Section 2 of the paper), all preserved here:

* every execution with ``c`` preemptions is explored before any
  execution with ``c + 1`` preemptions, so the first bug found is
  exposed with the *minimum* possible number of preemptions;
* nonpreempting context switches (from a blocked or finished thread)
  are free: they are explored depth-first within the current bound, so
  executions reach unbounded depth even at bound zero;
* if the search completes bound ``c`` without finding a bug, the
  program is certified correct for all executions with at most ``c``
  preemptions.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..service.checkpoint import Checkpointer
    from .heuristics import FrontierPrioritizer

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from .statecache import WorkItemCache
from .strategy import SearchContext, Strategy

WorkItem = Tuple[object, ThreadId]

#: space.analysis_prunable, bound to the space (see FrontierPrioritizer
#: in :mod:`repro.search.heuristics` for the companion ordering hook).
_PruneTest = Callable[[object, ThreadId], bool]


class IterativeContextBounding(Strategy):
    """The paper's iterative context-bounding search.

    Args:
        max_bound: stop after completing this preemption bound
            (``None`` explores bounds until the space is exhausted).
        state_caching: enable the work-item table of Algorithm 1
            (the ZING configuration; CHESS runs without it).
        prioritizer: optional frontier ordering hook (e.g.
            :class:`~repro.search.heuristics.RaceCandidatePrioritizer`);
            applied to the deferred queue at every bound increment.
            Ordering within one bound never affects which executions
            the bound explores, so the certified-bound guarantee is
            untouched -- only discovery order within the bound shifts.
        checkpointer: optional
            :class:`~repro.service.checkpoint.Checkpointer`.  The
            search resumes from its checkpoint when one exists, and
            saves between work items (every ``stride`` items, and at
            every bound completion).  Saves never happen mid-item, so
            an interrupted-then-resumed run explores exactly the
            executions an uninterrupted one would (see
            ``docs/service.md``).
    """

    name = "icb"

    def __init__(
        self,
        max_bound: Optional[int] = None,
        state_caching: bool = False,
        prioritizer: Optional["FrontierPrioritizer"] = None,
        checkpointer: Optional["Checkpointer"] = None,
    ) -> None:
        if max_bound is not None and max_bound < 0:
            raise ValueError("max_bound must be non-negative")
        self.max_bound = max_bound
        self.state_caching = state_caching
        self.prioritizer = prioritizer
        self.checkpointer = checkpointer

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        cache = WorkItemCache() if self.state_caching else None
        initial = space.initial_state()

        # The static-analysis reduction: only spaces carrying a
        # ProgramAnalysis expose a usable analysis_prunable.
        prune: Optional[_PruneTest] = None
        if getattr(space, "analysis", None) is not None:
            prune = getattr(space, "analysis_prunable", None)

        work_queue: Deque[WorkItem] = deque()
        next_queue: Deque[WorkItem] = deque()
        bound = 0
        extras["completed_bound"] = None

        checkpointer = self.checkpointer
        resumed = checkpointer.resume_state() if checkpointer is not None else None
        if resumed is not None:
            # Continue exactly where the checkpoint left off: queues,
            # bound and accumulated statistics are all restored; work
            # lost after the last save is simply redone.
            bound = resumed.bound
            extras["completed_bound"] = resumed.completed_bound
            extras["resumed"] = True
            work_queue = deque(item.as_pair() for item in resumed.work_items)
            next_queue = deque(item.as_pair() for item in resumed.next_items)
            resumed.restore_context(ctx)
            if cache is not None:
                resumed.restore_cache(cache)
        else:
            for tid in space.enabled(initial):
                work_queue.append((initial, tid))
            if not work_queue and space.is_terminal(initial):
                ctx.note_terminal(space, initial)

        obs = ctx.obs
        while True:
            if obs is not None:
                obs.bound_started(bound, len(work_queue))
            while work_queue:
                item = work_queue.popleft()
                self._search_item(space, ctx, item, next_queue, cache, prune)
                if checkpointer is not None and checkpointer.note_item():
                    self._save_checkpoint(
                        checkpointer, bound, work_queue, next_queue, ctx, cache,
                        extras["completed_bound"],
                    )
            # All executions with at most `bound` preemptions explored.
            extras["completed_bound"] = bound
            if obs is not None:
                obs.bound_completed(bound, ctx.executions, len(ctx.states))
            if checkpointer is not None:
                self._save_checkpoint(
                    checkpointer, bound, work_queue, next_queue, ctx, cache, bound
                )
            if not next_queue:
                break
            if self.max_bound is not None and bound >= self.max_bound:
                break
            bound += 1
            if self.prioritizer is not None:
                next_queue = deque(
                    self.prioritizer.sort_frontier(space, next_queue)
                )
            work_queue, next_queue = next_queue, deque()
        extras["final_frontier"] = len(next_queue)
        extras["analysis_pruned"] = ctx.analysis_pruned
        if cache is not None:
            extras["cache_hits"] = cache.hits
            extras["cache_size"] = len(cache)

    @staticmethod
    def _save_checkpoint(
        checkpointer: "Checkpointer",
        bound: int,
        work_queue: Deque[WorkItem],
        next_queue: Deque[WorkItem],
        ctx: SearchContext,
        cache: Optional[WorkItemCache],
        completed_bound: Optional[int],
    ) -> None:
        from ..service.checkpoint import normalize_items

        checkpointer.save_state(
            bound,
            normalize_items(work_queue),
            normalize_items(next_queue),
            ctx,
            completed_bound,
            cache=cache,
        )

    def _search_item(
        self,
        space: StateSpace,
        ctx: SearchContext,
        item: WorkItem,
        next_queue: Deque[WorkItem],
        cache: Optional[WorkItemCache],
        prune: Optional[_PruneTest] = None,
    ) -> None:
        """The recursive ``Search`` procedure, iteratively.

        Explores everything reachable from ``item`` without an
        additional preemption, deferring each preempting alternative
        into ``next_queue``.
        """
        obs = ctx.obs
        stack: List[WorkItem] = [item]
        while stack:
            state, tid = stack.pop()
            if cache is not None:
                hit = cache.seen(space.fingerprint(state), tid)
                if obs is not None:
                    obs.cache_lookup(hit)
                if hit:
                    continue
            successor = space.execute(state, tid)
            ctx.visit(space, successor)
            if space.is_terminal(successor):
                ctx.note_terminal(space, successor)
                continue
            enabled = space.enabled(successor)
            if tid in enabled:
                # The running thread may continue: scheduling any other
                # enabled thread here would be a preemption.
                stack.append((successor, tid))
                if (
                    prune is not None
                    and len(enabled) > 1
                    and prune(successor, tid)
                ):
                    # The next step is a proven-thread-local data
                    # access: preempting here commutes with letting
                    # `tid` take it, so every deferral is redundant.
                    ctx.analysis_pruned += len(enabled) - 1
                    continue
                for other in enabled:
                    if other != tid:
                        next_queue.append((successor, other))
            else:
                # The running thread blocked or finished: switching is
                # nonpreempting and free, so explore every choice now.
                for other in reversed(enabled):
                    stack.append((successor, other))
