"""Iterative depth-bounding (``idfs``), the paper's main foil.

Runs depth-bounded DFS with an increasing bound: all executions up to
depth ``d`` are explored before the bound grows to ``d + step``.  This
is the strategy traditional model checkers fall back to under state
explosion, and the one the paper argues is inadequate for multithreaded
programs: the number of executions grows exponentially with depth,
whereas context bounding keeps it polynomial (Theorem 1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.transition import StateSpace
from .dfs import DepthFirstSearch
from .strategy import SearchContext, Strategy


class IterativeDeepening(Strategy):
    """Iterative depth-bounded DFS.

    Args:
        initial_bound: the first depth bound.
        step: bound increment between iterations.
        max_bound: stop once the bound exceeds this (``None`` keeps
            deepening until a full DFS completes un-pruned).
    """

    def __init__(
        self, initial_bound: int = 20, step: int = 20, max_bound: Optional[int] = None
    ) -> None:
        if initial_bound < 1 or step < 1:
            raise ValueError("initial_bound and step must be positive")
        self.initial_bound = initial_bound
        self.step = step
        self.max_bound = max_bound

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"idfs:{self.initial_bound}+{self.step}"

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        obs = ctx.obs
        bound = self.initial_bound
        extras["bounds_run"] = []
        while True:
            if obs is not None:
                obs.bound_started(bound, 0)
            dfs = DepthFirstSearch(depth_bound=bound)
            inner: Dict[str, Any] = {}
            dfs._search(space, ctx, inner)
            extras["bounds_run"].append(bound)
            if obs is not None:
                obs.bound_completed(bound, ctx.executions, len(ctx.states))
            if inner.get("pruned_executions", 0) == 0:
                # Nothing was pruned: the whole space fits in `bound`.
                extras["completed_depth"] = bound
                return
            if self.max_bound is not None and bound >= self.max_bound:
                extras["completed_depth"] = None
                return
            bound += self.step
