"""Probabilistic concurrency testing (PCT) -- a follow-up baseline.

The direct successor to this paper's line of work (Burckhardt,
Kothari, Musuvathi & Nagarakatte, ASPLOS 2010) randomizes over the
same structure ICB enumerates: it schedules by random thread
*priorities* and lowers the running thread's priority at ``d - 1``
random *change points*, guaranteeing that any bug of depth ``d`` is
found with probability at least ``1 / (n * k^(d-1))`` per run.  Bug
depth closely tracks this paper's preemption count: a depth-``d`` bug
is one needing ``d - 1`` scheduling constraints, i.e. roughly
``d - 1`` preemptions.

Included as an extension: the repository's Figure 2 reproduction shows
uniform random scheduling to be a strong coverage baseline (see
EXPERIMENTS.md), and PCT is the principled way to randomize with a
guarantee.  It runs on the same :class:`StateSpace` interface as every
other strategy.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from .strategy import SearchContext, Strategy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..analysis import ProgramAnalysis


class PCTScheduler(Strategy):
    """Randomized priority scheduling with ``depth - 1`` change points.

    Args:
        depth: target bug depth ``d`` (1 = ordering bugs needing no
            preemption, 2 = single-preemption bugs, ...).
        executions: number of randomized runs.
        max_steps: estimate of the maximum execution length ``k`` used
            to place change points (runs longer than this simply get
            no further priority changes).
        seed: PRNG seed for reproducibility.
        analysis: optional :class:`~repro.analysis.ProgramAnalysis`;
            when given, steps about to access a statically
            race-candidate variable also become change points with
            probability 1/2, biasing the ``d - 1`` demotions toward
            the accesses that can actually race.  The PCT probability
            guarantee is unaffected: the uniformly random change
            points are still placed, extra ones only spend the
            remaining demotion budget earlier.
    """

    name = "pct"

    def __init__(
        self,
        depth: int = 2,
        executions: int = 1000,
        max_steps: int = 200,
        seed: int = 0,
        analysis: Optional["ProgramAnalysis"] = None,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if executions < 1:
            raise ValueError("executions must be positive")
        if max_steps < 1:
            raise ValueError("max_steps must be positive")
        self.depth = depth
        self.executions = executions
        self.max_steps = max_steps
        self.seed = seed
        self.analysis = analysis
        self._hot: FrozenSet[str] = (
            analysis.hot_variables if analysis is not None else frozenset()
        )

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        rng = random.Random(self.seed)
        extras["depth"] = self.depth
        if ctx.obs is not None:
            # PCT has no iterating bound; report the target bug depth
            # so dashboards show what guarantee this run provides.
            ctx.obs.bound_started(self.depth, self.executions)
        for _ in range(self.executions):
            self._one_run(space, ctx, rng)

    def _one_run(
        self, space: StateSpace, ctx: SearchContext, rng: random.Random
    ) -> None:
        state = space.initial_state()
        if space.is_terminal(state):
            ctx.note_terminal(space, state)
            return
        # d - 1 change points among the anticipated steps.
        change_points = set(
            rng.sample(range(1, self.max_steps + 1), min(self.depth - 1, self.max_steps))
        )
        priorities: Dict[ThreadId, float] = {}
        #: Priority values below every initial one, assigned in order
        #: at change points (the PCT construction).
        demotions: List[float] = [
            -(index + 1) for index in range(self.depth - 1)
        ]
        demoted = 0
        step = 0
        hot = self._hot
        execution_at = getattr(space, "execution_at", None) if hot else None
        while not space.is_terminal(state):
            step += 1
            enabled = space.enabled(state)
            for tid in enabled:
                if tid not in priorities:
                    # Fresh threads draw a random high priority.
                    priorities[tid] = rng.random()
            tid = max(enabled, key=lambda t: priorities[t])
            change_here = step in change_points
            if (
                not change_here
                and execution_at is not None
                and demoted < len(demotions)
            ):
                # Analysis bias: an imminent access to a statically
                # race-candidate variable is worth a change point too.
                effect = execution_at(state).pending_effect(tid)
                target = getattr(effect, "target", None)
                if getattr(target, "name", None) in hot:
                    change_here = rng.random() < 0.5
            state = space.execute(state, tid)
            ctx.visit(space, state)
            if change_here and demoted < len(demotions):
                priorities[tid] = demotions[demoted]
                demoted += 1
        ctx.note_terminal(space, state)
