"""Search strategies over program state spaces.

The paper's contribution, iterative context bounding
(:class:`~repro.search.icb.IterativeContextBounding`), plus every
baseline it is evaluated against:

* unbounded and depth-bounded depth-first search
  (:class:`~repro.search.dfs.DepthFirstSearch`, the ``dfs`` and
  ``db:N`` curves of Figure 2);
* iterative depth-bounding
  (:class:`~repro.search.iddfs.IterativeDeepening`, the ``idfs``
  curves of Figures 5 and 6);
* uniform random walk (:class:`~repro.search.random_walk.RandomWalk`,
  the ``random`` curve of Figure 2);
* the Groce-Visser most-enabled-threads heuristic
  (:class:`~repro.search.heuristics.EnabledThreadsHeuristic`),
  a related-work baseline;
* sleep-set partial-order reduction
  (:class:`~repro.search.por.SleepSetDFS`), the complementary
  state-reduction technique the paper's future work calls for.

All strategies run against the abstract
:class:`~repro.core.transition.StateSpace` interface, so each works
unchanged on the stateless CHESS-style space and the explicit-state
ZING space.
"""

from .dfs import DepthFirstSearch
from .heuristics import (
    EnabledThreadsHeuristic,
    FrontierPrioritizer,
    RaceCandidatePrioritizer,
)
from .icb import IterativeContextBounding
from .pct import PCTScheduler
from .por import SleepSetDFS
from .iddfs import IterativeDeepening
from .random_walk import RandomWalk
from .statecache import WorkItemCache
from .strategy import SearchContext, SearchLimits, SearchResult, Strategy

__all__ = [
    "DepthFirstSearch",
    "EnabledThreadsHeuristic",
    "FrontierPrioritizer",
    "IterativeContextBounding",
    "IterativeDeepening",
    "PCTScheduler",
    "RaceCandidatePrioritizer",
    "RandomWalk",
    "SleepSetDFS",
    "SearchContext",
    "SearchLimits",
    "SearchResult",
    "Strategy",
    "WorkItemCache",
]
