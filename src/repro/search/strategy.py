"""Search infrastructure: budgets, statistics and the strategy base.

A :class:`SearchContext` is shared by all strategies.  It accumulates
the quantities every experiment in the paper is built on:

* the set of distinct visited states, each tagged with the minimum
  preemption count at which it was reached (Figures 1 and 4 are
  cumulative histograms of this tag);
* the coverage history -- distinct states after each completed
  execution (Figures 2, 5 and 6 plot exactly this series);
* deduplicated bug reports, each kept with its minimal-preemption
  witness (Table 2);
* the per-execution maxima of steps K, blocking steps B and
  preemptions c (Table 1).
"""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import (
    BugReport,
    SearchBudgetExceeded,
    SearchInterrupted,
)
from ..core.transition import StateSpace
from ..obs.history import CoverageRecorder
from ..obs.instrument import Instrumentation

#: How many transitions may pass between wall-clock reads in
#: ``SearchContext._check_budget``.  A transition takes ~1us while a
#: ``time.monotonic()`` call costs a comparable amount, so reading the
#: clock every transition roughly doubled the budget-check overhead
#: (see benchmarks/README.md).  Overshoot is bounded by the stride:
#: at worst ``TIME_CHECK_STRIDE - 1`` extra transitions run past the
#: deadline, microseconds in practice.
TIME_CHECK_STRIDE = 64


@dataclass(frozen=True)
class SearchLimits:
    """Resource budget for one search run.

    ``None`` means unlimited.  When a budget is exhausted the search
    stops cleanly and the result is marked incomplete; everything
    accumulated so far remains valid (this is how the fixed-budget
    coverage-growth figures are produced).
    """

    max_executions: Optional[int] = None
    max_transitions: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_on_first_bug: bool = False

    def with_stop_on_first_bug(self, value: bool = True) -> "SearchLimits":
        """A copy with ``stop_on_first_bug`` set, all else preserved.

        Callers must use this instead of rebuilding limits field by
        field, so newly added budget fields can never be silently
        dropped along the way.
        """
        return dataclasses.replace(self, stop_on_first_bug=value)


def _witness_key(bug: BugReport) -> Tuple[int, int, Tuple[Tuple[int, ...], ...]]:
    """Total order on witnesses of one defect: fewest preemptions,
    then shortest, then lexicographically smallest schedule."""
    return (bug.preemptions, len(bug.schedule), tuple(t.path for t in bug.schedule))


def _better_witness(challenger: BugReport, incumbent: BugReport) -> bool:
    """Whether ``challenger`` is the witness to keep.

    Deterministic regardless of discovery or arrival order, which is
    what makes cross-process bug deduplication well-defined.
    """
    return _witness_key(challenger) < _witness_key(incumbent)


class SearchContext:
    """Shared statistics and budget enforcement for a search run."""

    def __init__(
        self,
        limits: Optional[SearchLimits] = None,
        obs: Optional[Instrumentation] = None,
        history_samples: int = 8192,
    ) -> None:
        self.limits = limits or SearchLimits()
        #: Optional instrumentation; ``None`` keeps the hot path free
        #: of any observability cost beyond one attribute test.
        self.obs = obs
        #: fingerprint -> minimal preemption count at which visited.
        self.states: Dict[Hashable, int] = {}
        #: bug signature -> minimal-preemption report.
        self.bugs: Dict[Tuple[Any, ...], BugReport] = {}
        self.executions = 0
        self.transitions = 0
        #: Deferrals ICB skipped because static analysis proved the
        #: preempted step thread-local (see ``docs/analysis.md``).
        self.analysis_pruned = 0
        #: Bounded recorder behind the :attr:`history` property.
        self._history = CoverageRecorder(max_samples=history_samples)
        self.max_steps = 0
        self.max_blocking = 0
        self.max_preemptions = 0
        self.started_at = time.monotonic()
        # Zero forces the very first _check_budget call to read the
        # clock, so max_seconds=0.0 still stops before any work.
        self._time_countdown = 0

    # -- recording ----------------------------------------------------------

    def record_initial(self, space: StateSpace, state: object) -> None:
        """Record the initial state before exploration starts."""
        fingerprint = space.fingerprint(state)
        if fingerprint not in self.states:
            self.states[fingerprint] = 0
            if self.obs is not None:
                self.obs.state_discovered(0, len(self.states))

    def visit(self, space: StateSpace, state: object) -> None:
        """Record a state reached by one ``execute`` transition."""
        self.transitions += 1
        fingerprint = space.fingerprint(state)
        preemptions = space.preemptions(state)
        known = self.states.get(fingerprint)
        if known is None or preemptions < known:
            self.states[fingerprint] = preemptions
        if self.obs is not None:
            self.obs.transition_observed(preemptions, known, len(self.states))
        for bug in space.bugs(state):
            self.note_bug(bug)
        self._check_budget()

    def note_terminal(self, space: StateSpace, state: object) -> None:
        """Record a completed (or budget/depth-pruned) execution."""
        self.executions += 1
        # Terminal-state conditions (e.g. a deadlock in the initial
        # state, before any transition was visited) surface here.
        for bug in space.bugs(state):
            self.note_bug(bug)
        if hasattr(space, "execution_stats"):
            steps, blocking, preemptions = space.execution_stats(state)
            self.max_steps = max(self.max_steps, steps)
            self.max_blocking = max(self.max_blocking, blocking)
            self.max_preemptions = max(self.max_preemptions, preemptions)
        self._history.record(self.executions, len(self.states))
        if self.obs is not None:
            self.obs.execution_finished(self.executions, len(self.states))
        self._check_budget()

    def note_bug(self, bug: BugReport) -> None:
        """Record a bug, keeping the canonical minimal witness.

        The kept witness follows the same total order the parallel
        merge uses (fewest preemptions, then shortest, then smallest
        schedule), so the witness -- and therefore
        :attr:`BugReport.identity` -- is a pure function of the
        explored space: serial, parallel and interrupted-then-resumed
        runs all converge on the same report.
        """
        signature = bug.signature
        known = self.bugs.get(signature)
        if known is None or _better_witness(bug, known):
            self.bugs[signature] = bug
        if self.obs is not None and (
            known is None or bug.preemptions < known.preemptions
        ):
            # Milestones only: a new defect, or a fewer-preemption
            # witness for a known one -- equal-preemption tie-break
            # refinements and re-encounters stay silent.
            self.obs.bug_found(bug, new=known is None)
        if self.limits.stop_on_first_bug:
            raise SearchInterrupted("stopping at first bug")

    # -- coverage history ----------------------------------------------------

    @property
    def history(self) -> List[Tuple[int, int]]:
        """(executions completed, distinct states) after each execution.

        Backed by a bounded :class:`CoverageRecorder`: under the
        default 8192-sample budget short runs (all the experiment
        scripts) see the exact per-execution series, while very long
        runs keep an evenly strided subsample plus the exact final
        point instead of growing without bound.
        """
        return self._history.samples()

    @history.setter
    def history(self, points: List[Tuple[int, int]]) -> None:
        self._history.replace(points)

    @property
    def history_recorder(self) -> CoverageRecorder:
        return self._history

    # -- budgets ------------------------------------------------------------

    def _check_budget(self) -> None:
        limits = self.limits
        if limits.max_executions is not None and self.executions >= limits.max_executions:
            raise SearchBudgetExceeded(f"execution budget {limits.max_executions} reached")
        if limits.max_transitions is not None and self.transitions >= limits.max_transitions:
            raise SearchBudgetExceeded(f"transition budget {limits.max_transitions} reached")
        if limits.max_seconds is not None:
            # The clock is read once per TIME_CHECK_STRIDE calls: a
            # monotonic() read costs about as much as a transition, so
            # checking every call doubled budget overhead for runs
            # that never come near their deadline.
            self._time_countdown -= 1
            if self._time_countdown < 0:
                self._time_countdown = TIME_CHECK_STRIDE - 1
                if time.monotonic() - self.started_at >= limits.max_seconds:
                    raise SearchBudgetExceeded(
                        f"time budget {limits.max_seconds}s reached"
                    )

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        # Instrumentation holds sinks (open files, streams) and never
        # crosses a process boundary; workers ship MetricsSnapshots.
        state = self.__dict__.copy()
        state["obs"] = None
        return state

    # -- derived views ----------------------------------------------------------

    def states_by_bound(self) -> Dict[int, int]:
        """How many distinct states need exactly ``c`` preemptions.

        ``result[c]`` is the number of states whose minimal reaching
        preemption count is ``c``; the cumulative sum over ``c`` is the
        coverage curve of Figures 1 and 4.
        """
        histogram: Dict[int, int] = {}
        for bound in self.states.values():
            histogram[bound] = histogram.get(bound, 0) + 1
        return dict(sorted(histogram.items()))

    def coverage_curve(self) -> List[Tuple[int, float]]:
        """Cumulative fraction of visited states per preemption bound."""
        histogram = self.states_by_bound()
        total = sum(histogram.values())
        curve: List[Tuple[int, float]] = []
        running = 0
        for bound, count in histogram.items():
            running += count
            curve.append((bound, running / total if total else 1.0))
        return curve


@dataclass
class SearchResult:
    """Outcome of one strategy run."""

    strategy: str
    completed: bool
    stop_reason: str
    context: SearchContext
    #: Strategy-specific extras, e.g. ICB's completed preemption bound.
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- conveniences -----------------------------------------------------------

    @property
    def distinct_states(self) -> int:
        return len(self.context.states)

    @property
    def executions(self) -> int:
        return self.context.executions

    @property
    def transitions(self) -> int:
        return self.context.transitions

    @property
    def bugs(self) -> List[BugReport]:
        return sorted(
            self.context.bugs.values(), key=lambda b: (b.preemptions, str(b.kind))
        )

    @property
    def found_bug(self) -> bool:
        return bool(self.context.bugs)

    @property
    def first_bug(self) -> Optional[BugReport]:
        bugs = self.bugs
        return bugs[0] if bugs else None

    @property
    def history(self) -> List[Tuple[int, int]]:
        return self.context.history

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "complete" if self.completed else f"stopped ({self.stop_reason})"
        return (
            f"{self.strategy}: {self.executions} executions, "
            f"{self.distinct_states} states, {len(self.bugs)} bug(s), {status}"
        )

    # -- merging ----------------------------------------------------------------

    @classmethod
    def merge(
        cls,
        results: Sequence["SearchResult"],
        strategy: Optional[str] = None,
        completed: Optional[bool] = None,
        stop_reason: Optional[str] = None,
    ) -> "SearchResult":
        """Fold results of disjoint explorations into one.

        Used by the parallel engine to combine per-shard results, and
        usable for any partition of a search (e.g. per-bound runs):

        * executions and transitions are summed;
        * distinct states are unioned, each keeping the minimum
          preemption count over all parts;
        * bugs are deduplicated by :attr:`BugReport.signature`, keeping
          the minimal-preemption witness with a deterministic
          tie-break, so the merged ``first_bug`` does not depend on
          the order parts arrived in;
        * per-execution maxima (K, B, c of Table 1) take the maximum;
        * the coverage history concatenates parts with their execution
          counts offset (cross-part state overlap makes the distinct
          counts approximate; the series is forced monotone).

        ``completed`` defaults to all-parts-completed; ``stop_reason``
        to the first incomplete part's reason.
        """
        if not results:
            raise ValueError("merge needs at least one result")
        merged = SearchContext(results[0].context.limits)
        merged.started_at = min(r.context.started_at for r in results)
        exec_offset = 0
        high_water = 0
        merged_history: List[Tuple[int, int]] = []
        for result in results:
            ctx = result.context
            for fingerprint, preemptions in ctx.states.items():
                known = merged.states.get(fingerprint)
                if known is None or preemptions < known:
                    merged.states[fingerprint] = preemptions
            for bug in ctx.bugs.values():
                known_bug = merged.bugs.get(bug.signature)
                if known_bug is None or _better_witness(bug, known_bug):
                    merged.bugs[bug.signature] = bug
            merged.executions += ctx.executions
            merged.transitions += ctx.transitions
            merged.analysis_pruned += getattr(ctx, "analysis_pruned", 0)
            merged.max_steps = max(merged.max_steps, ctx.max_steps)
            merged.max_blocking = max(merged.max_blocking, ctx.max_blocking)
            merged.max_preemptions = max(merged.max_preemptions, ctx.max_preemptions)
            for executions, distinct in ctx.history:
                high_water = max(high_water, distinct)
                merged_history.append((exec_offset + executions, high_water))
            exec_offset += ctx.executions
        merged.history_recorder.extend_raw(merged_history)
        if completed is None:
            completed = all(r.completed for r in results)
        if stop_reason is None:
            stop_reason = next(
                (r.stop_reason for r in results if not r.completed),
                "exhausted state space",
            )
        extras: Dict[str, Any] = {}
        bounds = [r.extras.get("completed_bound") for r in results]
        if any("completed_bound" in r.extras for r in results):
            extras["completed_bound"] = (
                None if any(b is None for b in bounds) else min(bounds)
            )
        return cls(
            strategy=strategy or results[0].strategy,
            completed=completed,
            stop_reason=stop_reason,
            context=merged,
            extras=extras,
        )


class Strategy(abc.ABC):
    """Base class for search strategies.

    Subclasses implement :meth:`_search`; the base class handles
    context creation, budget exhaustion and result packaging.
    """

    name = "strategy"

    def run(
        self,
        space: StateSpace,
        limits: Optional[SearchLimits] = None,
        context: Optional[SearchContext] = None,
        obs: Optional[Instrumentation] = None,
    ) -> SearchResult:
        """Explore ``space`` until done or out of budget."""
        ctx = context or SearchContext(limits, obs=obs)
        if obs is not None and ctx.obs is None:
            ctx.obs = obs
        obs = ctx.obs
        extras: Dict[str, Any] = {}
        if obs is not None:
            program = getattr(getattr(space, "program", None), "name", None)
            obs.search_started(self.name, program or type(space).__name__)
        try:
            ctx.record_initial(space, space.initial_state())
            self._search(space, ctx, extras)
            completed, reason = True, "exhausted state space"
        except SearchBudgetExceeded as exc:
            completed, reason = False, str(exc)
        except SearchInterrupted as exc:
            completed, reason = False, str(exc)
        if obs is not None:
            obs.search_finished(
                self.name,
                completed,
                reason,
                ctx.executions,
                ctx.transitions,
                len(ctx.states),
                len(ctx.bugs),
            )
        return SearchResult(
            strategy=self.name,
            completed=completed,
            stop_reason=reason,
            context=ctx,
            extras=extras,
        )

    @abc.abstractmethod
    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        """Strategy-specific exploration loop."""
