"""Random-walk search (the ``random`` curve of Figure 2).

Repeatedly executes the program under a uniformly random scheduler, as
proposed for distributed-memory model checking by Sivaraj and
Gopalakrishnan (cited as related work in the paper).  Random walk
provides no coverage guarantee; the paper contrasts this with ICB's
polynomial bound and bound-c certificate.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..core.transition import StateSpace
from .strategy import SearchContext, Strategy


class RandomWalk(Strategy):
    """Uniform random scheduling, one complete execution at a time.

    Args:
        executions: how many random executions to run (a budget in
            :class:`~repro.search.strategy.SearchLimits` can stop the
            walk earlier).
        seed: PRNG seed; runs are reproducible given the seed.
    """

    name = "random"

    def __init__(self, executions: int = 1000, seed: int = 0) -> None:
        if executions < 1:
            raise ValueError("executions must be positive")
        self.executions = executions
        self.seed = seed

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        rng = random.Random(self.seed)
        for _ in range(self.executions):
            state = space.initial_state()
            if space.is_terminal(state):
                ctx.note_terminal(space, state)
                continue
            while not space.is_terminal(state):
                enabled = space.enabled(state)
                tid = enabled[rng.randrange(len(enabled))]
                state = space.execute(state, tid)
                ctx.visit(space, state)
            ctx.note_terminal(space, state)
        extras["seed"] = self.seed
