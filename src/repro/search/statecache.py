"""Optional work-item caching (the ``table`` of Algorithm 1).

The paper notes that state caching is orthogonal to context bounding:
ZING caches states while CHESS does not.  Following the pseudocode in
Section 3, the cache stores *work items* -- (state fingerprint, thread
to run) pairs -- and prunes a Search invocation whose work item has
been processed before.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Set, Tuple

from ..core.thread import ThreadId


class WorkItemCache:
    """A set of visited (state fingerprint, thread) work items."""

    def __init__(self) -> None:
        self._table: Set[Tuple[Hashable, ThreadId]] = set()
        self.hits = 0
        self.misses = 0

    def seen(self, fingerprint: Hashable, tid: ThreadId) -> bool:
        """Check-and-insert: True if the item was already processed."""
        key = (fingerprint, tid)
        if key in self._table:
            self.hits += 1
            return True
        self._table.add(key)
        self.misses += 1
        return False

    def __len__(self) -> int:
        return len(self._table)

    # -- checkpointing (see repro.service.checkpoint) ------------------------

    def export_state(self) -> Dict[str, Any]:
        """A serializable view of the table, deterministically ordered.

        Losing the table across an interruption would not be merely a
        performance matter: a resumed state-caching run would re-explore
        items the original already pruned, changing its execution count
        -- so the checkpoint layer persists it in full.
        """
        items: List[Tuple[Hashable, ThreadId]] = sorted(
            self._table, key=lambda pair: (repr(pair[0]), pair[1].path)
        )
        return {"items": items, "hits": self.hits, "misses": self.misses}

    def restore_state(
        self,
        items: Iterable[Tuple[Hashable, ThreadId]],
        hits: int,
        misses: int,
    ) -> None:
        """Reinstall a table captured by :meth:`export_state`."""
        self._table = set(items)
        self.hits = hits
        self.misses = misses
