"""Optional work-item caching (the ``table`` of Algorithm 1).

The paper notes that state caching is orthogonal to context bounding:
ZING caches states while CHESS does not.  Following the pseudocode in
Section 3, the cache stores *work items* -- (state fingerprint, thread
to run) pairs -- and prunes a Search invocation whose work item has
been processed before.
"""

from __future__ import annotations

from typing import Hashable, Set, Tuple

from ..core.thread import ThreadId


class WorkItemCache:
    """A set of visited (state fingerprint, thread) work items."""

    def __init__(self) -> None:
        self._table: Set[Tuple[Hashable, ThreadId]] = set()
        self.hits = 0
        self.misses = 0

    def seen(self, fingerprint: Hashable, tid: ThreadId) -> bool:
        """Check-and-insert: True if the item was already processed."""
        key = (fingerprint, tid)
        if key in self._table:
            self.hits += 1
            return True
        self._table.add(key)
        self.misses += 1
        return False

    def __len__(self) -> int:
        return len(self._table)
