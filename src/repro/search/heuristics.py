"""Structural search heuristics (related-work baselines).

Groce and Visser (ISSTA 2002) proposed prioritizing states with more
enabled threads during partial state-space search; the paper cites this
as a heuristic that, unlike ICB, offers neither a coverage metric nor a
polynomial execution bound.  Included for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Dict, List, Tuple

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from .strategy import SearchContext, Strategy


class EnabledThreadsHeuristic(Strategy):
    """Best-first search ordered by number of enabled threads.

    States with more enabled threads (more potential interleaving
    activity) are expanded first; ties break FIFO.  On a stateless
    space this jumps between distant schedules and therefore replays
    heavily -- the ablation benchmark quantifies that cost.
    """

    name = "most-enabled"

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        initial = space.initial_state()
        if space.is_terminal(initial):
            ctx.note_terminal(space, initial)
            return
        tiebreak = count()
        #: entries: (-enabled count, insertion order, state, tid).
        frontier: List[Tuple[int, int, object, ThreadId]] = []
        enabled = space.enabled(initial)
        for tid in enabled:
            heapq.heappush(frontier, (-len(enabled), next(tiebreak), initial, tid))
        while frontier:
            _, _, state, tid = heapq.heappop(frontier)
            successor = space.execute(state, tid)
            ctx.visit(space, successor)
            if space.is_terminal(successor):
                ctx.note_terminal(space, successor)
                continue
            enabled = space.enabled(successor)
            for other in enabled:
                heapq.heappush(
                    frontier, (-len(enabled), next(tiebreak), successor, other)
                )
