"""Structural search heuristics.

Two kinds live here:

* the Groce-Visser (ISSTA 2002) most-enabled-threads best-first search,
  a related-work baseline the paper cites as offering neither a
  coverage metric nor a polynomial execution bound (included for the
  ablation benchmarks);
* :class:`RaceCandidatePrioritizer`, an *ordering* heuristic driven by
  the static analysis of :mod:`repro.analysis`: ICB's deferred
  frontier is reordered so preemptions that interleave accesses to
  statically race-candidate variables run first.  Unlike a pruning
  reduction this never changes *what* a bound explores, only the order
  within the bound, so every ICB guarantee survives unchanged.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Protocol, Tuple

from ..core.thread import ThreadId
from ..core.transition import StateSpace
from .strategy import SearchContext, Strategy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..analysis import ProgramAnalysis


class EnabledThreadsHeuristic(Strategy):
    """Best-first search ordered by number of enabled threads.

    States with more enabled threads (more potential interleaving
    activity) are expanded first; ties break FIFO.  On a stateless
    space this jumps between distant schedules and therefore replays
    heavily -- the ablation benchmark quantifies that cost.
    """

    name = "most-enabled"

    def _search(
        self, space: StateSpace, ctx: SearchContext, extras: Dict[str, Any]
    ) -> None:
        initial = space.initial_state()
        if space.is_terminal(initial):
            ctx.note_terminal(space, initial)
            return
        tiebreak = count()
        #: entries: (-enabled count, insertion order, state, tid).
        frontier: List[Tuple[int, int, object, ThreadId]] = []
        enabled = space.enabled(initial)
        for tid in enabled:
            heapq.heappush(frontier, (-len(enabled), next(tiebreak), initial, tid))
        while frontier:
            _, _, state, tid = heapq.heappop(frontier)
            successor = space.execute(state, tid)
            ctx.visit(space, successor)
            if space.is_terminal(successor):
                ctx.note_terminal(space, successor)
                continue
            enabled = space.enabled(successor)
            for other in enabled:
                heapq.heappush(
                    frontier, (-len(enabled), next(tiebreak), successor, other)
                )


class FrontierPrioritizer(Protocol):
    """Reorders ICB's deferred work items at a bound increment."""

    def sort_frontier(
        self, space: StateSpace, items: Iterable[Tuple[object, ThreadId]]
    ) -> List[Tuple[object, ThreadId]]:
        """A permutation of ``items`` (must lose and add nothing)."""
        ...  # pragma: no cover - protocol


class RaceCandidatePrioritizer:
    """Explore preemptions at statically-suspect accesses first.

    The static race candidates of :mod:`repro.analysis` name the
    variables whose accesses can possibly race; a deferred work item
    ``(state, tid)`` that immediately accesses one of those *hot*
    variables is the kind of preemption most likely to expose a bug.
    The sort is stable, so items within each class keep ICB's original
    FIFO order.

    Peeking at a deferred item's pending effect replays its schedule,
    so sorting a large frontier is not free -- this is an opt-in knob
    (``IterativeContextBounding(prioritizer=...)``), aimed at runs that
    stop on the first bug.
    """

    def __init__(self, analysis: "ProgramAnalysis") -> None:
        self.analysis = analysis
        self.hot = frozenset(analysis.hot_variables)

    def sort_frontier(
        self, space: StateSpace, items: Iterable[Tuple[object, ThreadId]]
    ) -> List[Tuple[object, ThreadId]]:
        items = list(items)
        execution_at = getattr(space, "execution_at", None)
        if execution_at is None or not self.hot:
            return items
        hot = self.hot

        def coldness(item: Tuple[object, ThreadId]) -> int:
            state, tid = item
            effect = execution_at(state).pending_effect(tid)
            target = getattr(effect, "target", None)
            name = getattr(target, "name", None)
            return 0 if name in hot else 1

        return sorted(items, key=coldness)
