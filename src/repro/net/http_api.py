"""The stdlib HTTP front-end of a checking-service daemon.

``ServiceAPI`` is the transport-free core: ``handle(method, path,
body)`` maps one request to ``(status, wire body)``, holding **no
state of its own** -- every request re-folds the journal and re-reads
the cache directory, so whatever the HTTP layer reports can always be
rebuilt from the service root (killing the front-end loses nothing).
``HttpFrontend`` binds that core to a ``ThreadingHTTPServer`` running
on a daemon thread beside the claim loop.

Endpoints (all bodies are the versioned wire format, ``repro.net.wire``):

====================== ======================================================
``GET  /v1/healthz``    liveness: daemon id, service root, queue depth
``GET  /v1/stats``      jobs by status, cache size, fleet counters
``POST /v1/jobs``       submit (idempotent: active duplicates deduplicate)
``GET  /v1/jobs``       every job record
``GET  /v1/jobs/{id}``  one job record (404 on unknown id)
``GET  /v1/results/{id}``  finished result report (404 unknown, 409 pending)
``GET  /v1/cache``      content-addressed result-cache keys (for sync)
``GET  /v1/cache/{key}``   one raw cache entry (pull-on-miss / anti-entropy)
``POST /v1/cache/{key}``   accept a pushed cache entry (push-on-complete)
``GET  /v1/traces``     witness-trace corpus filenames (for sync)
``GET  /v1/traces/{name}`` one raw trace file
====================== ======================================================
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Type

from ..obs.instrument import Instrumentation
from ..service.cache import RESULT_CACHE_FORMAT, RESULT_CACHE_SUFFIX
from ..service.daemon import CheckingService
from ..trace.format import TRACE_SUFFIX
from .wire import (
    WireError,
    envelope,
    error_body,
    job_to_wire,
    submit_from_wire,
)

#: Content-addressed identifiers are SHA-256 hex; anything else in a
#: cache path segment is rejected before it touches the filesystem.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
#: Trace corpus filenames: one safe path segment ending in the trace
#: suffix (no separators, no parent references).
_TRACE_RE = re.compile(r"^[A-Za-z0-9._-]+$")

Reply = Tuple[int, Dict[str, Any]]


class ServiceAPI:
    """Stateless request handling over one :class:`CheckingService`."""

    def __init__(
        self,
        service: CheckingService,
        daemon_id: str = "",
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.service = service
        self.daemon_id = daemon_id
        self.obs = obs

    # -- dispatch ------------------------------------------------------------

    def handle(self, method: str, path: str, body: Optional[bytes]) -> Reply:
        try:
            reply = self._route(method, path, body)
        except WireError as exc:
            reply = (400, error_body(str(exc), 400))
        except Exception as exc:  # noqa: BLE001 - the request boundary
            reply = (500, error_body(f"internal error: {exc}", 500))
        if self.obs is not None:
            self.obs.http_request(method, path, reply[0])
        return reply

    def _route(self, method: str, path: str, body: Optional[bytes]) -> Reply:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        if not parts or parts[0] != "v1":
            return 404, error_body(f"unknown path {path!r}", 404)
        tail = parts[1:]
        if tail == ["healthz"] and method == "GET":
            return self._healthz()
        if tail == ["stats"] and method == "GET":
            return self._stats()
        if tail == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._jobs()
        if len(tail) == 2 and tail[0] == "jobs" and method == "GET":
            return self._job(tail[1])
        if len(tail) == 2 and tail[0] == "results" and method == "GET":
            return self._result(tail[1])
        if tail == ["cache"] and method == "GET":
            return self._cache_keys()
        if len(tail) == 2 and tail[0] == "cache":
            if method == "GET":
                return self._cache_entry(tail[1])
            if method == "POST":
                return self._cache_push(tail[1], body)
        if tail == ["traces"] and method == "GET":
            return self._trace_names()
        if len(tail) == 2 and tail[0] == "traces" and method == "GET":
            return self._trace(tail[1])
        if len(tail) <= 2 and tail[0] in ("jobs", "results", "cache", "traces"):
            return 405, error_body(f"{method} not allowed on {path!r}", 405)
        return 404, error_body(f"unknown path {path!r}", 404)

    # -- endpoints -----------------------------------------------------------

    def _healthz(self) -> Reply:
        jobs = self.service.queue.jobs()
        return 200, envelope(
            {
                "ok": True,
                "daemon": self.daemon_id,
                "root": str(self.service.root),
                "queued": sum(1 for j in jobs if j.status == "queued"),
                "running": sum(1 for j in jobs if j.status == "running"),
            }
        )

    def _stats(self) -> Reply:
        jobs = self.service.queue.jobs()
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        counters: Dict[str, int] = {}
        if self.obs is not None:
            counters = dict(self.obs.metrics.counters)
        return 200, envelope(
            {
                "daemon": self.daemon_id,
                "jobs": by_status,
                "total_jobs": len(jobs),
                "cache_entries": len(self.service.cache),
                "traces": len(self._trace_paths()),
                "counters": counters,
            }
        )

    def _submit(self, body: Optional[bytes]) -> Reply:
        if not body:
            raise WireError("submit body: empty request")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"submit body: not valid JSON ({exc})") from exc
        kwargs = submit_from_wire(data)
        before = {job.id for job in self.service.queue.jobs()}
        job = self.service.queue.submit(**kwargs)
        return 200, envelope(
            {"job": job_to_wire(job), "deduplicated": job.id in before}
        )

    def _jobs(self) -> Reply:
        jobs = self.service.queue.jobs()
        return 200, envelope({"jobs": [job_to_wire(job) for job in jobs]})

    def _job(self, job_id: str) -> Reply:
        job = self.service.queue.get(job_id)
        if job is None:
            return 404, error_body(f"unknown job id {job_id!r}", 404)
        return 200, envelope({"job": job_to_wire(job)})

    def _result(self, job_id: str) -> Reply:
        job = self.service.queue.get(job_id)
        if job is None:
            return 404, error_body(f"unknown job id {job_id!r}", 404)
        if job.status != "done":
            return 409, error_body(
                f"job {job_id} is {job.status}; no result yet", 409
            )
        payload = self.service.load_result(job_id)
        return 200, envelope({"job": job_id, "result": payload})

    # -- sync endpoints (consumed by repro.net.sync) -------------------------

    def _cache_keys(self) -> Reply:
        root = self.service.cache.root
        keys = []
        if root.is_dir():
            for path in sorted(root.iterdir()):
                if path.name.endswith(RESULT_CACHE_SUFFIX):
                    keys.append(path.name[: -len(RESULT_CACHE_SUFFIX)])
        return 200, envelope({"keys": keys})

    def _cache_entry(self, key: str) -> Reply:
        if not _KEY_RE.match(key):
            return 400, error_body(f"malformed cache key {key!r}", 400)
        path = self.service.cache.path_for(key)
        if not path.exists():
            return 404, error_body(f"no cache entry {key!r}", 404)
        return 200, envelope({"key": key, "entry": json.loads(path.read_text())})

    def _cache_push(self, key: str, body: Optional[bytes]) -> Reply:
        """Accept a peer's freshly computed entry (push-on-complete).

        Validation mirrors what ``CacheSync`` applies to pulled
        entries: hex key, the versioned cache format, and a key field
        matching the path, so a push can never plant a mismatched
        object.  Content addressing makes the write idempotent;
        ``stored: false`` reports an entry we already had.
        """
        if not _KEY_RE.match(key):
            return 400, error_body(f"malformed cache key {key!r}", 400)
        if not body:
            raise WireError("cache push: empty request")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"cache push: not valid JSON ({exc})") from exc
        entry = data.get("entry") if isinstance(data, dict) else None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != RESULT_CACHE_FORMAT
            or entry.get("key") != key
        ):
            raise WireError(f"cache push: not a result-cache entry for {key!r}")
        path = self.service.cache.path_for(key)
        if path.exists():
            return 200, envelope({"key": key, "stored": False})
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".push.tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return 200, envelope({"key": key, "stored": True})

    def _trace_paths(self) -> list:
        root = pathlib.Path(self.service.traces_dir)
        if not root.is_dir():
            return []
        return sorted(p for p in root.iterdir() if p.name.endswith(TRACE_SUFFIX))

    def _trace_names(self) -> Reply:
        return 200, envelope({"names": [p.name for p in self._trace_paths()]})

    def _trace(self, name: str) -> Reply:
        if not _TRACE_RE.match(name) or not name.endswith(TRACE_SUFFIX):
            return 400, error_body(f"malformed trace name {name!r}", 400)
        path = pathlib.Path(self.service.traces_dir) / name
        if not path.exists():
            return 404, error_body(f"no trace {name!r}", 404)
        return 200, envelope({"name": name, "trace": json.loads(path.read_text())})


def _make_handler(api: ServiceAPI) -> Type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:
            pass  # request accounting goes through obs, not stderr

        def _reply(self, method: str) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else None
            status, payload = api.handle(method, self.path, body)
            data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:
            self._reply("GET")

        def do_POST(self) -> None:
            self._reply("POST")

    return Handler


class HttpFrontend:
    """A ``ThreadingHTTPServer`` serving one :class:`ServiceAPI`.

    Threaded so a long peer sync download never blocks a client's
    submit.  Runs on a daemon thread; ``close`` shuts the socket down
    and joins.
    """

    def __init__(
        self, api: ServiceAPI, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.api = api
        self.server = ThreadingHTTPServer((host, port), _make_handler(api))
        self.host, self.port = self.server.server_address[:2]
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name=f"repro-http-{self.port}",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpFrontend":
        self._thread.start()
        return self

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=5.0)
