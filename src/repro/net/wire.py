"""The versioned JSON wire format of the HTTP checking service.

Every body on the wire -- request or response, success or error -- is
one JSON object stamped ``{"format": "repro-net-wire", "version": 1}``.
Versioning is strict the same way the trace and checkpoint formats
are: a peer speaking an unknown version is rejected up front rather
than misread, which matters once a fleet of daemons on different
hosts (and possibly different builds) shares one service root.

The submit body is validated field by field against the job schema
(:data:`SUBMIT_FIELDS`): unknown keys, wrong primitive types and a
missing ``spec`` are each a :class:`WireError` naming the offender,
so a malformed client gets a 400 with a usable message instead of a
daemon-side stack trace.

Wire jobs carry the job's *content-addressed identity*
(:meth:`repro.service.jobs.Job.identity`) alongside its queue id:
the id names one submission, the identity names the work, and clients
retrying a submit can treat an echoed known identity as proof the
resubmit deduplicated rather than duplicated.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..service.jobs import Job

WIRE_FORMAT = "repro-net-wire"
WIRE_VERSION = 1


class WireError(ReproError):
    """A wire body violates the format (bad version, schema, types)."""


def envelope(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp ``payload`` with the wire format and version."""
    body = {"format": WIRE_FORMAT, "version": WIRE_VERSION}
    body.update(payload)
    return body


def check_envelope(data: Any, where: str = "body") -> Dict[str, Any]:
    """Validate the stamp on a decoded body; returns it unwrapped."""
    if not isinstance(data, dict):
        raise WireError(f"{where}: must be a JSON object")
    fmt = data.get("format")
    if fmt != WIRE_FORMAT:
        raise WireError(f"{where}: not a {WIRE_FORMAT} body (format={fmt!r})")
    version = data.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"{where}: unsupported wire version {version!r} "
            f"(this build speaks {WIRE_VERSION})"
        )
    return data


def error_body(message: str, status: int) -> Dict[str, Any]:
    return envelope({"error": {"message": message, "status": status}})


#: Submit-body schema: name -> (type tag, required).  ``int`` fields
#: also accept null where the Job default is None.
SUBMIT_FIELDS: Dict[str, Tuple[str, bool]] = {
    "spec": ("str", True),
    "priority": ("int", False),
    "max_bound": ("int?", False),
    "workers": ("int?", False),
    "stop_on_first_bug": ("bool", False),
    "max_executions": ("int?", False),
    "max_transitions": ("int?", False),
    "state_caching": ("bool", False),
}

_TYPE_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "int?": lambda v: v is None or (isinstance(v, int) and not isinstance(v, bool)),
    "bool": lambda v: isinstance(v, bool),
}


def submit_from_wire(data: Any) -> Dict[str, Any]:
    """Validate a ``POST /v1/jobs`` body into ``JobQueue.submit`` kwargs."""
    body = check_envelope(data, "submit body")
    kwargs: Dict[str, Any] = {}
    for key, value in body.items():
        if key in ("format", "version"):
            continue
        schema = SUBMIT_FIELDS.get(key)
        if schema is None:
            raise WireError(f"submit body: unknown field {key!r}")
        tag, _ = schema
        if not _TYPE_CHECKS[tag](value):
            raise WireError(
                f"submit body: field {key!r} must be {tag}, "
                f"got {type(value).__name__}"
            )
        kwargs[key] = value
    for key, (_, required) in SUBMIT_FIELDS.items():
        if required and key not in kwargs:
            raise WireError(f"submit body: missing required field {key!r}")
    return kwargs


def submit_to_wire(
    spec: str,
    priority: int = 0,
    max_bound: Optional[int] = None,
    workers: Optional[int] = None,
    stop_on_first_bug: bool = False,
    max_executions: Optional[int] = None,
    max_transitions: Optional[int] = None,
    state_caching: bool = False,
) -> Dict[str, Any]:
    """Build a ``POST /v1/jobs`` body (the client half of the schema)."""
    return envelope(
        {
            "spec": spec,
            "priority": priority,
            "max_bound": max_bound,
            "workers": workers,
            "stop_on_first_bug": stop_on_first_bug,
            "max_executions": max_executions,
            "max_transitions": max_transitions,
            "state_caching": state_caching,
        }
    )


def job_to_wire(job: Job) -> Dict[str, Any]:
    """One job record as it travels: every Job field plus identity."""
    data = asdict(job)
    data["identity"] = job.identity()
    return data
