"""Cross-host result-cache and trace-corpus sync.

Both stores are content-addressed -- cache entries by the SHA-256 of
everything that determines a check's outcome, traces by their witness
identity -- so replication needs no versions, no timestamps and no
conflict resolution: an object either exists under its key or it does
not, fetching it twice writes the same bytes, and two daemons syncing
each other converge.  Two mechanisms share that property:

* **pull-on-miss** (:meth:`CacheSync.pull_for_job`): before running a
  claimed job, ask the peers for exactly its cache key.  A warm peer
  turns the job into a local cache hit -- the submit is served without
  exploring anything, which is the whole point of a fleet.
* **anti-entropy** (:meth:`CacheSync.anti_entropy`): while idle,
  diff key lists against each peer and pull whatever is missing, so
  results and witness traces eventually live everywhere even if no
  submit ever asks for them.
* **push-on-complete** (:meth:`CacheSync.push_on_complete`): the
  moment a daemon finishes a job, it POSTs the fresh cache entry to
  every peer instead of waiting for their next anti-entropy sweep --
  the same object, just delivered eagerly, so a duplicate submit
  landing on any fleet member a moment later is already a cache hit.

A peer being down is never an error -- sync is opportunistic; the
local daemon can always fall back to doing the work itself.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.execution import ExecutionConfig
from ..obs.instrument import Instrumentation
from ..search.strategy import SearchLimits
from ..service.cache import (
    RESULT_CACHE_FORMAT,
    result_cache_key,
)
from ..service.daemon import CheckingService, resolve_spec
from ..service.jobs import Job
from ..trace.format import TRACE_SUFFIX
from .client import ServiceClient, ServiceClientError

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
_TRACE_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def job_cache_key(job: Job) -> Optional[str]:
    """The result-cache key the daemon's checker will compute for
    ``job`` -- the shared vocabulary that makes cross-host sync work.

    Mirrors :meth:`repro.chess.checker.ChessChecker.check`: the
    daemon runs jobs under the default :class:`ExecutionConfig`, and
    ``workers`` is excluded from keying (serial and parallel runs
    report identical results).  ``None`` if the spec does not resolve
    here -- the job will fail properly when run, not during sync.
    """
    try:
        program = resolve_spec(job.spec)
    except Exception:  # noqa: BLE001 - sync must never break the claim loop
        return None
    limits = SearchLimits(
        max_executions=job.max_executions,
        max_transitions=job.max_transitions,
        stop_on_first_bug=job.stop_on_first_bug,
    )
    return result_cache_key(
        program,
        ExecutionConfig(),
        limits=limits,
        max_bound=job.max_bound,
        state_caching=job.state_caching,
        analysis=False,
    )


class CacheSync:
    """Pulls missing cache entries and traces from peer daemons."""

    def __init__(
        self,
        service: CheckingService,
        peers: Sequence[str] = (),
        obs: Optional[Instrumentation] = None,
        client_factory: Callable[[str], ServiceClient] = ServiceClient,
        timeout: float = 5.0,
    ) -> None:
        self.service = service
        self.obs = obs
        self.clients: List[ServiceClient] = [
            client_factory(peer) for peer in peers
        ]
        for client in self.clients:
            # Peer fetches are opportunistic: fail fast, retry little.
            client.timeout = min(client.timeout, timeout)
            client.retries = min(client.retries, 1)

    # -- writing fetched objects ---------------------------------------------

    def _write_atomic(self, target: pathlib.Path, payload: Any) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".sync.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, target)

    def _store_entry(self, key: str, entry: Any, source: str) -> bool:
        """Validate and install one fetched cache entry."""
        if not isinstance(entry, dict):
            return False
        if entry.get("format") != RESULT_CACHE_FORMAT or entry.get("key") != key:
            return False
        self._write_atomic(self.service.cache.path_for(key), entry)
        if self.obs is not None:
            self.obs.cache_sync_hit(key, source, kind="result")
        return True

    def _store_trace(self, name: str, trace: Any, source: str) -> bool:
        if not _TRACE_RE.match(name) or not name.endswith(TRACE_SUFFIX):
            return False
        if not isinstance(trace, dict):
            return False
        self._write_atomic(pathlib.Path(self.service.traces_dir) / name, trace)
        if self.obs is not None:
            self.obs.cache_sync_hit(name, source, kind="trace")
        return True

    # -- pull-on-miss --------------------------------------------------------

    def pull_for_job(self, job: Job) -> Optional[str]:
        """Fetch ``job``'s exact cache entry from a peer, if missing
        locally; returns the key that was installed, else ``None``.

        Called by the fleet claim loop just before running a job: on
        success the checker's own cache lookup hits and the job is
        served without exploration.
        """
        key = job_cache_key(job)
        if key is None or not self.clients:
            return None
        if self.service.cache.path_for(key).exists():
            return None  # already warm; nothing to pull
        for client in self.clients:
            try:
                entry = client.cache_entry(key)
            except ServiceClientError:
                continue  # miss there too, or the peer is down
            if self._store_entry(key, entry, client.base_url):
                return key
        return None

    # -- push-on-complete ----------------------------------------------------

    def push_on_complete(self, job: Job) -> int:
        """POST ``job``'s freshly written cache entry to every peer;
        returns how many peers accepted (stored or already had) it.

        Called by the fleet claim loop right after a fenced
        completion.  Opportunistic like every sync path: a peer being
        down, or rejecting the entry, never fails the job.
        """
        if not self.clients:
            return 0
        key = job_cache_key(job)
        if key is None:
            return 0
        path = self.service.cache.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # Nothing durable to offer (e.g. a budgeted, uncacheable
            # run never stored a result entry).
            return 0
        delivered = 0
        for client in self.clients:
            try:
                client.push_cache_entry(key, entry)
            except ServiceClientError:
                continue  # peer down; its anti-entropy sweep catches up
            delivered += 1
            if self.obs is not None:
                self.obs.cache_push_sent(key, client.base_url)
        return delivered

    # -- anti-entropy --------------------------------------------------------

    def _local_keys(self) -> set:
        root = self.service.cache.root
        if not root.is_dir():
            return set()
        from ..service.cache import RESULT_CACHE_SUFFIX

        return {
            p.name[: -len(RESULT_CACHE_SUFFIX)]
            for p in root.iterdir()
            if p.name.endswith(RESULT_CACHE_SUFFIX)
        }

    def _local_traces(self) -> set:
        root = pathlib.Path(self.service.traces_dir)
        if not root.is_dir():
            return set()
        return {p.name for p in root.iterdir() if p.name.endswith(TRACE_SUFFIX)}

    def anti_entropy(self) -> Dict[str, int]:
        """One sweep: pull every cache entry and trace a peer has and
        we do not.  Returns ``{"results": n, "traces": n}`` pulled.
        """
        pulled = {"results": 0, "traces": 0}
        for client in self.clients:
            try:
                remote_keys = client.cache_keys()
                remote_traces = client.trace_names()
            except ServiceClientError:
                continue  # peer down; next sweep will catch up
            have = self._local_keys()
            for key in remote_keys:
                if key in have or not _KEY_RE.match(key):
                    continue
                try:
                    entry = client.cache_entry(key)
                except ServiceClientError:
                    continue
                if self._store_entry(key, entry, client.base_url):
                    pulled["results"] += 1
            have_traces = self._local_traces()
            for name in remote_traces:
                if name in have_traces:
                    continue
                try:
                    trace = client.trace(name)
                except ServiceClientError:
                    continue
                if self._store_trace(name, trace, client.base_url):
                    pulled["traces"] += 1
        return pulled
