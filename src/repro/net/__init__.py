"""The HTTP checking fleet (see ``docs/service.md``).

``repro.net`` turns the durable single-machine service
(:mod:`repro.service`) into a networked fleet, stdlib-only:

* :mod:`repro.net.wire` -- the versioned JSON wire format;
* :mod:`repro.net.http_api` -- a stateless ``http.server`` front-end
  over one service root (``POST /v1/jobs``, ``GET /v1/results/{id}``,
  ...); everything it serves is rebuilt from the journal;
* :mod:`repro.net.client` -- ``ServiceClient``: timeouts, bounded
  jittered retries, idempotent resubmit by content-addressed job
  identity (``repro submit --server URL``);
* :mod:`repro.net.lease` -- fenced lease claims journaled as queue
  events, so daemons on different hosts share one root without double
  execution and a dead daemon's jobs are taken over;
* :mod:`repro.net.fleet` -- the ``repro serve --fleet`` daemon
  combining all of the above;
* :mod:`repro.net.sync` -- cross-host result-cache and trace-corpus
  replication (pull-on-miss plus anti-entropy), trivially idempotent
  because both stores are content-addressed.
"""

from .client import ServiceClient, ServiceClientError
from .fleet import FleetDaemon, default_daemon_id
from .http_api import HttpFrontend, ServiceAPI
from .lease import DEFAULT_TTL, Lease, LeaseManager, LeaseRenewer
from .sync import CacheSync, job_cache_key
from .wire import (
    WIRE_FORMAT,
    WIRE_VERSION,
    WireError,
    envelope,
    error_body,
    job_to_wire,
    submit_from_wire,
    submit_to_wire,
)

__all__ = [
    "CacheSync",
    "DEFAULT_TTL",
    "FleetDaemon",
    "HttpFrontend",
    "Lease",
    "LeaseManager",
    "LeaseRenewer",
    "ServiceAPI",
    "ServiceClient",
    "ServiceClientError",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WireError",
    "default_daemon_id",
    "envelope",
    "error_body",
    "job_cache_key",
    "job_to_wire",
    "submit_from_wire",
    "submit_to_wire",
]
