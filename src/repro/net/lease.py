"""Lease-fenced job claims: many daemons, one journal, no double work.

The single-daemon queue marks a job ``started`` and trusts that only
one process ever claims.  A fleet sharing one service root (say over
NFS) cannot trust that, so fleet daemons claim through *leases*
journaled as ordinary queue events:

``claimed``
    ``(id, daemon, fence, expires)``.  The fold honours a claim only
    on a queued job carrying exactly the next fencing token, so when
    two daemons race, both appends land but journal order arbitrates:
    the first wins, the second folds to a no-op.  The claimant learns
    whether it won by re-folding the journal after its append -- the
    append-only file is the lock.
``renewed``
    Pushes ``expires`` forward while the job runs.  A
    :class:`LeaseRenewer` thread does this at ``ttl/3`` so a healthy
    daemon's lease never lapses, however long the search.
``lease_expired``
    A takeover: another daemon observed ``expires`` in the past and
    returned the job to the queue.  The job's next claim carries a
    higher fence, so when the stalled (or resurrected) original owner
    eventually appends its fenced ``completed``, the fold ignores it.
    Work is never *lost* -- the requeued job resumes from its durable
    checkpoint -- and a completion is never honoured *twice*.

Fencing tokens are per-job monotonic counters, never reset, exactly
the scheme distributed lock services use to order lock generations;
here the journal fold is the arbiter, so no clock agreement between
hosts is needed for *correctness* -- wall clocks only decide how
quickly a dead daemon's work is taken over.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..obs.instrument import Instrumentation
from ..service.jobs import QUEUED, RUNNING, Job, JobQueue

#: Default lease time-to-live (seconds).  Renewal happens at ttl/3,
#: so one missed renewal does not forfeit the lease.
DEFAULT_TTL = 5.0


@dataclass
class Lease:
    """One daemon's fenced hold on one job."""

    job_id: str
    daemon: str
    fence: int
    expires: float


class LeaseManager:
    """Claims, renews and releases leases for one daemon.

    Every operation re-folds the journal first and appends after, so
    concurrent managers on different hosts agree on the lease table
    without any channel besides the journal itself.
    """

    def __init__(
        self,
        queue: JobQueue,
        daemon_id: str,
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.queue = queue
        self.daemon_id = daemon_id
        self.ttl = max(0.1, float(ttl))
        self.clock = clock
        self.obs = obs

    # -- takeover ------------------------------------------------------------

    def expire_stale(self) -> List[Job]:
        """Requeue every job whose lease deadline has passed.

        Jobs ``started`` by a legacy (non-fleet) daemon carry no
        lease and are left alone -- a fleet cannot arbitrate a claim
        that never named its deadline.
        """
        now = self.clock()
        expired: List[Job] = []
        for job in self.queue.jobs():
            if (
                job.status == RUNNING
                and job.lease_expires is not None
                and job.lease_expires < now
            ):
                self.queue.append_expiry(
                    job.id,
                    job.fence,
                    self.daemon_id,
                    error=f"lease of {job.owner} expired",
                )
                record = self.queue.get(job.id)
                if record is not None and record.status == QUEUED:
                    expired.append(record)
                    if self.obs is not None:
                        self.obs.lease_takeover(
                            job.id, job.fence, str(job.owner or "")
                        )
        return expired

    # -- claim ---------------------------------------------------------------

    def claim(self) -> Optional[Tuple[Job, Lease]]:
        """Claim the best queued job under a fresh lease, or ``None``.

        ``None`` means either nothing is queued or this daemon lost
        the race for the job it picked; callers just poll again.
        """
        self.expire_stale()
        queued = [job for job in self.queue.jobs() if job.status == QUEUED]
        if not queued:
            return None
        job = min(queued, key=lambda j: (-j.priority, j.seq))
        fence = job.fence + 1
        expires = self.clock() + self.ttl
        self.queue.append_claim(job.id, self.daemon_id, fence, expires)
        record = self.queue.get(job.id)
        if (
            record is None
            or record.status != RUNNING
            or record.owner != self.daemon_id
            or record.fence != fence
        ):
            return None  # lost the race; the winner's claim folded first
        if self.obs is not None:
            self.obs.lease_claimed(job.id, fence)
        return record, Lease(job.id, self.daemon_id, fence, expires)

    # -- renew / release -----------------------------------------------------

    def owns(self, lease: Lease) -> bool:
        """Whether the journal still shows ``lease`` as current."""
        record = self.queue.get(lease.job_id)
        return (
            record is not None
            and record.status == RUNNING
            and record.owner == lease.daemon
            and record.fence == lease.fence
        )

    def renew(self, lease: Lease) -> bool:
        """Push the lease deadline forward; False if it was lost."""
        if not self.owns(lease):
            return False
        lease.expires = self.clock() + self.ttl
        self.queue.append_renewal(
            lease.job_id, lease.daemon, lease.fence, lease.expires
        )
        if self.obs is not None:
            self.obs.lease_renewed(lease.job_id, lease.fence)
        return True

    def complete(
        self,
        lease: Lease,
        result_path: Optional[str] = None,
        cache_hit: bool = False,
    ) -> bool:
        """Append a fenced completion; False if the fold rejected it
        (the lease was taken over while the job ran)."""
        self.queue.complete(
            lease.job_id,
            result_path=result_path,
            cache_hit=cache_hit,
            daemon=lease.daemon,
            fence=lease.fence,
        )
        record = self.queue.get(lease.job_id)
        return record is not None and record.status == "done"

    def fail(self, lease: Lease, error: str, requeue: bool) -> None:
        self.queue.fail(
            lease.job_id,
            error,
            requeue=requeue,
            daemon=lease.daemon,
            fence=lease.fence,
        )


class LeaseRenewer:
    """A daemon thread keeping one lease alive while its job runs.

    Renewal failure (the lease was expired and re-claimed under us)
    sets :attr:`lost` and stops renewing; the job runner checks the
    flag before treating its result as the job's outcome.
    """

    def __init__(self, manager: LeaseManager, lease: Lease) -> None:
        self.manager = manager
        self.lease = lease
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-renewer-{lease.job_id}", daemon=True
        )

    def _run(self) -> None:
        interval = self.manager.ttl / 3.0
        while not self._stop.wait(interval):
            if not self.manager.renew(self.lease):
                self.lost = True
                return

    def __enter__(self) -> "LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self.manager.ttl)
