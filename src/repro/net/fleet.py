"""The fleet daemon: lease-fenced claims, an HTTP thread, peer sync.

``FleetDaemon`` is ``repro serve --fleet``: the multi-host topology
where several daemons on different machines share one service root.
Each iteration of its loop:

1. expires stale leases (requeueing a dead peer's jobs -- their
   searches resume from the durable checkpoints, losing nothing);
2. claims the best queued job under a fresh lease, losing gracefully
   if another daemon's claim folded first;
3. asks its peers for the job's exact cache entry (pull-on-miss), so
   work any host has already done becomes a local cache hit;
4. runs the job with a :class:`~repro.net.lease.LeaseRenewer` thread
   keeping the lease alive, then appends a *fenced* completion the
   journal only honours if the lease was never taken over;
5. pushes the fresh result-cache entry to every peer the moment the
   completion lands (push-on-complete), so a duplicate submitted
   anywhere in the fleet is a cache hit without waiting for the
   peers' anti-entropy sweeps.

While idle it runs anti-entropy sweeps, so caches and trace corpora
converge across hosts even without submit traffic.  The optional
HTTP front-end runs on a daemon thread the whole time; it holds no
state, so clients may hit any daemon in the fleet and see the same
journal-derived truth.
"""

from __future__ import annotations

import os
import pathlib
import socket
import time
from typing import Optional, Sequence, Union

from ..obs.instrument import Instrumentation
from ..service.daemon import CheckingService
from ..service.jobs import Job
from .http_api import HttpFrontend, ServiceAPI
from .lease import DEFAULT_TTL, Lease, LeaseManager, LeaseRenewer
from .sync import CacheSync

#: Seconds between idle anti-entropy sweeps.
SYNC_INTERVAL = 2.0


def default_daemon_id() -> str:
    """host-pid: unique across a fleet sharing one root."""
    return f"{socket.gethostname()}-{os.getpid()}"


class FleetDaemon:
    """One member of a checking fleet (see module docstring)."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        daemon_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_TTL,
        http_host: str = "127.0.0.1",
        http_port: Optional[int] = None,
        peers: Sequence[str] = (),
        max_attempts: int = 3,
        obs: Optional[Instrumentation] = None,
        sync_interval: float = SYNC_INTERVAL,
    ) -> None:
        self.daemon_id = daemon_id or default_daemon_id()
        self.service = CheckingService(root, max_attempts=max_attempts, obs=obs)
        self.obs = obs
        self.leases = LeaseManager(
            self.service.queue, self.daemon_id, ttl=lease_ttl, obs=obs
        )
        self.sync = CacheSync(self.service, peers, obs=obs)
        self.sync_interval = sync_interval
        self.frontend: Optional[HttpFrontend] = None
        if http_port is not None:
            api = ServiceAPI(self.service, daemon_id=self.daemon_id, obs=obs)
            self.frontend = HttpFrontend(api, host=http_host, port=http_port)

    @property
    def url(self) -> Optional[str]:
        return self.frontend.url if self.frontend is not None else None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetDaemon":
        """Repair the journal tail and start the HTTP thread."""
        self.service.queue.repair()
        if self.frontend is not None:
            self.frontend.start()
        return self

    def close(self) -> None:
        if self.frontend is not None:
            self.frontend.close()

    # -- the claim loop ------------------------------------------------------

    def serve(
        self,
        once: bool = False,
        poll_interval: float = 0.2,
        max_jobs: Optional[int] = None,
    ) -> int:
        """Process jobs under leases; returns how many this daemon ran.

        ``once`` returns when nothing is queued and no claim can be
        won -- jobs other daemons are actively (and validly) running
        are theirs to finish.
        """
        handled = 0
        last_sweep = 0.0
        while True:
            if max_jobs is not None and handled >= max_jobs:
                return handled
            claimed = self.leases.claim()
            if claimed is None:
                now = time.monotonic()
                if now - last_sweep >= self.sync_interval:
                    self.sync.anti_entropy()
                    last_sweep = now
                if once and not any(
                    job.status == "queued" for job in self.service.queue.jobs()
                ):
                    return handled
                if not once:
                    time.sleep(poll_interval)
                continue
            job, lease = claimed
            self._handle(job, lease)
            handled += 1

    def _handle(self, job: Job, lease: Lease) -> None:
        # Pull-on-miss: a peer's finished result makes this job a
        # local cache hit before the checker even starts.
        self.sync.pull_for_job(job)
        renewer = LeaseRenewer(self.leases, lease)
        try:
            with renewer:
                result = self.service.run_job(job)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self.leases.fail(
                lease, str(exc), requeue=job.attempts < self.service.max_attempts
            )
            return
        if renewer.lost or not self.leases.owns(lease):
            # The lease was taken over mid-run: someone else owns the
            # job now.  Drop our result -- a fenced completion would
            # fold to a no-op anyway, and the new owner resumes from
            # the checkpoint, so the work is not lost either.
            return
        path = self.service.write_result(job, result)
        cache_hit = bool(result.search.extras.get("cache_hit"))
        if self.leases.complete(
            lease, result_path=str(path), cache_hit=cache_hit
        ):
            self.service.clear_checkpoint(job)
            # Push-on-complete: hand the fresh cache entry to every
            # peer now, rather than waiting for their next sweep.
            self.sync.push_on_complete(job)
