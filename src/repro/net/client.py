"""``ServiceClient``: the stdlib HTTP client of the checking fleet.

Built on ``urllib.request`` only.  Every call carries a timeout and a
bounded retry loop with jittered exponential backoff -- the fleet
analogue of hammering ``repro submit`` locally, and just as safe:

* **submits are idempotent** because the dedup key is the job's
  content-addressed identity (the server deduplicates active work
  with the same work description), so a retry after a lost response
  re-lands on the same job instead of enqueueing a duplicate;
* **reads are idempotent** trivially -- the server holds no state
  that is not the fold of the journal.

Retries cover what might heal (connection refused/reset, timeouts,
5xx); a 4xx is a fact about the request and is raised immediately as
:class:`ServiceClientError` with the server's wire error message.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from .wire import check_envelope, submit_to_wire

#: Statuses worth retrying: the daemon may be restarting or overloaded.
RETRY_STATUSES = frozenset({502, 503, 504})


class ServiceClientError(ReproError):
    """A request definitively failed (4xx, or retries exhausted)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A client for one daemon's HTTP front-end.

    Args:
        base_url: e.g. ``http://host:8080`` (trailing slash tolerated).
        timeout: per-request socket timeout, seconds.
        retries: attempts beyond the first for retryable failures.
        backoff: base delay; attempt *n* sleeps ``backoff * 2**n``
            scaled by a uniform jitter in [0.5, 1.0) so a fleet of
            clients retrying together spreads out instead of stampeding.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.rng = rng or random.Random()

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else None
        )
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = self.backoff * (2 ** (attempt - 1))
                time.sleep(delay * (0.5 + self.rng.random() / 2))
            request = urllib.request.Request(
                url,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as fh:
                    return self._decode(fh.read(), path)
            except urllib.error.HTTPError as exc:
                payload = exc.read()
                if exc.code in RETRY_STATUSES:
                    last_error = f"HTTP {exc.code}"
                    continue
                raise ServiceClientError(
                    self._error_message(payload, exc.code, path), status=exc.code
                ) from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = str(reason)
                continue
        raise ServiceClientError(
            f"{method} {url} failed after {self.retries + 1} attempt(s): "
            f"{last_error}"
        )

    @staticmethod
    def _decode(raw: bytes, path: str) -> Dict[str, Any]:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceClientError(
                f"response to {path} is not valid JSON: {exc}"
            ) from exc
        return check_envelope(data, f"response to {path}")

    @staticmethod
    def _error_message(raw: bytes, status: int, path: str) -> str:
        try:
            data = json.loads(raw.decode("utf-8"))
            message = data["error"]["message"]
        except Exception:  # noqa: BLE001 - any shape of non-wire error body
            message = raw.decode("utf-8", errors="replace").strip() or "no detail"
        return f"{path}: {message} (HTTP {status})"

    # -- the service surface -------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        spec: str,
        priority: int = 0,
        max_bound: Optional[int] = None,
        workers: Optional[int] = None,
        stop_on_first_bug: bool = False,
        max_executions: Optional[int] = None,
        max_transitions: Optional[int] = None,
        state_caching: bool = False,
    ) -> Dict[str, Any]:
        """Submit work; returns the wire job record.  Safe to retry:
        an active duplicate deduplicates server-side by the job's
        content-addressed identity."""
        body = submit_to_wire(
            spec,
            priority=priority,
            max_bound=max_bound,
            workers=workers,
            stop_on_first_bug=stop_on_first_bug,
            max_executions=max_executions,
            max_transitions=max_transitions,
            state_caching=state_caching,
        )
        reply = self._request("POST", "/v1/jobs", body)
        return reply["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/results/{job_id}")["result"]

    def wait(self, job_id: str, deadline: float = 60.0) -> Dict[str, Any]:
        """Poll until ``job_id`` leaves the queue; returns its record.

        Raises :class:`ServiceClientError` on timeout -- a fleet
        client's submit-and-wait primitive.
        """
        end = time.monotonic() + deadline
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= end:
                raise ServiceClientError(
                    f"job {job_id} still {record['status']} after "
                    f"{deadline:.0f}s"
                )
            time.sleep(min(0.05, self.timeout))

    # -- sync surface (consumed by repro.net.sync) ---------------------------

    def cache_keys(self) -> List[str]:
        return self._request("GET", "/v1/cache")["keys"]

    def cache_entry(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/cache/{key}")["entry"]

    def push_cache_entry(self, key: str, entry: Dict[str, Any]) -> bool:
        """Offer a freshly computed cache entry to this peer
        (push-on-complete); ``True`` if the peer stored it, ``False``
        if it already had the key.  Idempotent: the entry is
        content-addressed, so re-pushing writes the same bytes."""
        reply = self._request("POST", f"/v1/cache/{key}", {"entry": entry})
        return bool(reply.get("stored"))

    def trace_names(self) -> List[str]:
        return self._request("GET", "/v1/traces")["names"]

    def trace(self, name: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/traces/{name}")["trace"]
