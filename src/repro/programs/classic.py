"""Classic concurrent data structures as a library corpus.

Beyond the paper's six benchmarks, these are the structures systematic
concurrency checkers are habitually pointed at: a Treiber lock-free
stack, a ticket lock, and a Lamport single-producer/single-consumer
ring buffer.  Each comes with a correct version (certified by the test
suite to a preemption bound) and a seeded-bug variant exposing the
idiom's canonical mistake at a small bound.

They double as worked examples for the corners of the runtime the
paper benchmarks do not exercise: object references stored *inside*
shared variables (the Treiber head), fetch-and-add fairness (the
ticket lock), and index-publication ordering (the ring buffer).
"""

from __future__ import annotations

from ..core.effects import alloc, join, spawn
from ..core.program import Program, check
from ..core.world import World


def treiber_stack(
    pushers: int = 2, values_each: int = 1, broken: bool = False
) -> Program:
    """A Treiber lock-free stack with push/pop via CAS on the head.

    Pushers allocate nodes and push them while a popper concurrently
    pops; main joins everyone, drains the remainder, and asserts every
    pushed value was taken exactly once.  Nodes are never freed, so the
    classic ABA hazard is out of scope; the seeded bug (``broken=True``)
    is the other canonical Treiber mistake: publishing the node *before*
    linking its ``next`` pointer, so a concurrent pop can read a null
    ``next`` and truncate the stack, losing values.
    """

    def setup(w: World):
        head = w.atomic("head", None)
        popped_log = w.var("popped_log", ())

        def push(value):
            node = yield alloc("node", value=value, next=None)
            if broken:
                # BUG: expose the node first, link afterwards.
                while True:
                    old = yield head.read()
                    if (yield head.cas(old, node)):
                        break
                yield node.write("next", old)
            else:
                while True:
                    old = yield head.read()
                    yield node.write("next", old)
                    if (yield head.cas(old, node)):
                        break

        def pop():
            while True:
                old = yield head.read()
                if old is None:
                    return None
                successor = yield old.read("next")
                if (yield head.cas(old, successor)):
                    value = yield old.read("value")
                    return value

        def pusher(base):
            for index in range(values_each):
                yield from push(base * 100 + index)

        def popper():
            taken = []
            for _ in range(pushers * values_each):
                value = yield from pop()
                if value is not None:
                    taken.append(value)
            yield popped_log.write(tuple(taken))

        def main():
            handles = []
            for i in range(pushers):
                handles.append((yield spawn(pusher, i + 1, name=f"push{i}")))
            handles.append((yield spawn(popper, name="popper")))
            for handle in handles:
                yield join(handle)
            taken = list((yield popped_log.read()))
            while True:
                value = yield from pop()
                if value is None:
                    break
                taken.append(value)
            expected = sorted(
                base * 100 + index
                for base in range(1, pushers + 1)
                for index in range(values_each)
            )
            check(
                sorted(taken) == expected,
                f"stack lost or duplicated values: {sorted(taken)} != {expected}",
            )

        return {"main": main}

    name = "treiber-broken" if broken else "treiber"
    return Program(name, setup)


def ticket_lock(
    threads: int = 2, spins: int = 12, broken: bool = False
) -> Program:
    """A ticket lock: fetch-and-add tickets, spin on now-serving.

    The critical section asserts mutual exclusion with an occupancy
    counter.  Spins are bounded (a thread that never gets served gives
    up without entering), keeping the state space finite while
    preserving safety.  The seeded bug skips the ticket draw and spins
    on the *current* serving value -- the classic torn-down fast path
    that lets two threads enter together.
    """

    def setup(w: World):
        next_ticket = w.atomic("next_ticket", 0)
        serving = w.atomic("serving", 0)
        occupancy = w.atomic("occupancy", 0)
        done = w.atomic("done", 0)

        def worker():
            if broken:
                # BUG: no ticket; wait until the lock "looks" free.
                my_turn = yield serving.read()
            else:
                my_turn = (yield next_ticket.add(1)) - 1
            entered = False
            for _ in range(spins):
                now = yield serving.read()
                if now == my_turn:
                    entered = True
                    break
            if entered:
                inside = yield occupancy.add(1)
                check(inside == 1, "two threads inside the ticket lock")
                yield occupancy.add(-1)
                yield serving.add(1)
            else:
                # Gave up: hand the turn on so others are not starved.
                yield done.add(1)

        return {f"t{i}": worker for i in range(threads)}

    name = "ticket-lock-broken" if broken else "ticket-lock"
    return Program(name, setup)


def spsc_ring(
    capacity: int = 2, items: int = 3, broken: bool = False
) -> Program:
    """Lamport's single-producer/single-consumer ring buffer.

    Indices are atomic; slots are plain data variables, so the race
    detector guards the publication protocol itself.  The seeded bug
    publishes the write index *before* storing the item, the canonical
    ordering mistake, surfacing as a data race on the slot (or a torn
    read of the previous generation's value).
    """

    def setup(w: World):
        slots = w.array("slot", [None] * capacity)
        write_index = w.atomic("write_index", 0)
        read_index = w.atomic("read_index", 0)

        def producer():
            produced = 0
            attempts = 0
            while produced < items and attempts < items * 8:
                attempts += 1
                wi = yield write_index.read()
                ri = yield read_index.read()
                if wi - ri >= capacity:
                    continue  # full; retry (bounded)
                if broken:
                    # BUG: bump the index before storing the item.
                    yield write_index.write(wi + 1)
                    yield slots[wi % capacity].write(produced + 1)
                else:
                    yield slots[wi % capacity].write(produced + 1)
                    yield write_index.write(wi + 1)
                produced += 1

        def consumer():
            total = 0
            consumed = 0
            attempts = 0
            while consumed < items and attempts < items * 8:
                attempts += 1
                ri = yield read_index.read()
                wi = yield write_index.read()
                if ri >= wi:
                    continue  # empty; retry (bounded)
                value = yield slots[ri % capacity].read()
                yield read_index.write(ri + 1)
                check(value == consumed + 1, f"torn or reordered read: {value}")
                total += value
                consumed += 1
            if consumed == items:
                check(total == items * (items + 1) // 2, "wrong sum consumed")

        return {"producer": producer, "consumer": consumer}

    name = "spsc-ring-broken" if broken else "spsc-ring"
    return Program(name, setup)
