"""The file-system model benchmark.

"A simplified model of a file system derived [from] prior work (see
Figure 7 in [7])" -- the inode/block allocator of Flanagan &
Godefroid's dynamic partial-order reduction paper.  Each of several
processes picks an inode (by thread index modulo the inode count),
locks it, and if the inode has no block yet, searches the block table
for a free block under per-block locks, claims it and records it in
the inode.

The program is correct (no seeded bug); in the paper it is one of the
fully-searchable programs of Figure 4, where executions with at most
four preemptions already cover the entire state space.  The default
sizes are scaled down from the original (26 blocks / 32 inodes) to
keep exhaustive search laptop-fast while preserving the contention
structure: multiple threads share an inode, and block probing overlaps
across inodes.
"""

from __future__ import annotations

from ..core.program import Program, check
from ..core.world import World


def filesystem(
    threads: int = 4, inodes: int = 2, blocks: int = 4
) -> Program:
    """Build the file-system model.

    Args:
        threads: allocator processes (the paper's driver uses 4).
        inodes: number of inodes; thread ``t`` works on inode
            ``t % inodes``, so ``threads > inodes`` creates the
            sharing the benchmark is about.
        blocks: number of blocks; inode ``i`` starts probing at block
            ``(i * 2) % blocks`` so probe sequences overlap.
    """
    if blocks < threads:
        raise ValueError("need at least one block per thread to guarantee termination")

    def setup(w: World):
        inode_locks = [w.mutex(f"locki[{i}]") for i in range(inodes)]
        block_locks = [w.mutex(f"lockb[{b}]") for b in range(blocks)]
        inode = w.array("inode", [0] * inodes)
        busy = w.array("busy", [False] * blocks)

        def process(tid: int):
            i = tid % inodes
            yield inode_locks[i].acquire()
            have_block = yield inode[i].read()
            if have_block == 0:
                b = (i * 2) % blocks
                for _ in range(blocks):  # at most one full sweep
                    yield block_locks[b].acquire()
                    taken = yield busy[b].read()
                    if not taken:
                        yield busy[b].write(True)
                        yield inode[i].write(b + 1)
                        yield block_locks[b].release()
                        break
                    yield block_locks[b].release()
                    b = (b + 1) % blocks
                allocated = yield inode[i].read()
                check(allocated != 0, "allocator failed to find a free block")
            yield inode_locks[i].release()

        return [(f"proc{t}", process, (t,)) for t in range(threads)]

    return Program(f"filesystem-{threads}t{inodes}i{blocks}b", setup)
