"""Small classic concurrency programs for tests and examples.

Each factory returns a :class:`~repro.core.program.Program`.  The
defects (where present) are documented with the minimum number of
preemptions required to expose them, which the test suite verifies
against both ICB and brute-force enumeration.
"""

from __future__ import annotations

from ..core.effects import join, sched_yield, spawn
from ..core.program import Program, check
from ..core.world import World


def racy_counter(n_threads: int = 2, increments: int = 1) -> Program:
    """Lost-update race on an unsynchronized counter.

    Each worker performs ``increments`` read-modify-write updates
    without a lock.  The race detector flags the unordered accesses
    (minimum 0 preemptions once one worker's write is unordered with
    another's read, which happens in the round-robin execution
    already).
    """

    def setup(w: World):
        counter = w.var("counter", 0)

        def worker():
            for _ in range(increments):
                value = yield counter.read()
                yield counter.write(value + 1)

        return {f"w{i}": worker for i in range(n_threads)}

    return Program(f"racy-counter-{n_threads}x{increments}", setup)


def atomic_counter_assert(n_threads: int = 2, increments: int = 1) -> Program:
    """Lost update on an *atomic* variable used non-atomically.

    Workers do ``v = read(); write(v + 1)`` on an atomic variable: no
    data race is reported (every access is a sync access), but the
    final count can be lost.  A main thread joins the workers and
    asserts the total; exposing the violation needs exactly one
    preemption between a worker's read and write.
    """

    def setup(w: World):
        counter = w.atomic("counter", 0)

        def worker():
            for _ in range(increments):
                value = yield counter.read()
                yield counter.write(value + 1)

        def main():
            handles = []
            for i in range(n_threads):
                handle = yield spawn(worker, name=f"w{i}")
                handles.append(handle)
            for handle in handles:
                yield join(handle)
            total = yield counter.read()
            check(
                total == n_threads * increments,
                f"lost update: expected {n_threads * increments}, got {total}",
            )

        return {"main": main}

    return Program(f"atomic-counter-{n_threads}x{increments}", setup)


def locked_counter(n_threads: int = 2, increments: int = 1) -> Program:
    """The correct version: updates under a mutex, asserted at the end."""

    def setup(w: World):
        counter = w.var("counter", 0)
        lock = w.mutex("lock")

        def worker():
            for _ in range(increments):
                yield lock.acquire()
                value = yield counter.read()
                yield counter.write(value + 1)
                yield lock.release()

        def main():
            handles = []
            for i in range(n_threads):
                handle = yield spawn(worker, name=f"w{i}")
                handles.append(handle)
            for handle in handles:
                yield join(handle)
            yield lock.acquire()
            total = yield counter.read()
            yield lock.release()
            check(total == n_threads * increments, "count must be exact")

        return {"main": main}

    return Program(f"locked-counter-{n_threads}x{increments}", setup)


def dekker(broken: bool = False) -> Program:
    """Dekker-style mutual exclusion for two threads (bounded retries).

    Flags and turn are atomic variables; the critical section is
    guarded by an occupancy counter whose value asserts mutual
    exclusion.  All busy-waits are bounded (a thread that cannot enter
    gives up), keeping the state space finite while preserving safety:
    a thread only enters after observing the other's flag clear.

    With ``broken=True`` a thread *impatiently* enters the critical
    section once its retries are exhausted, even while contended --
    the kind of timeout-justified shortcut that breaks under exactly
    the interleavings ICB surfaces first.
    """

    def setup(w: World):
        flags = [w.atomic("flag0", 0), w.atomic("flag1", 0)]
        turn = w.atomic("turn", 0)
        in_cs = w.atomic("in_cs", 0)

        def critical_section(me: int, other: int):
            occupants = yield in_cs.add(1)
            check(occupants == 1, "mutual exclusion violated")
            yield in_cs.add(-1)
            yield turn.write(other)
            yield flags[me].write(0)

        def worker(me: int):
            other = 1 - me
            yield flags[me].write(1)
            entered = False
            for _ in range(3):
                contended = yield flags[other].read()
                if not contended:
                    entered = True
                    break
                whose = yield turn.read()
                if whose != me:
                    # Back off and wait (boundedly) for our turn.
                    yield flags[me].write(0)
                    got_turn = False
                    for _ in range(4):
                        whose = yield turn.read()
                        if whose == me:
                            got_turn = True
                            break
                    yield flags[me].write(1)
                    if not got_turn:
                        break
            if entered or broken:
                yield from critical_section(me, other)
            else:
                yield flags[me].write(0)

        return [("t0", worker, (0,)), ("t1", worker, (1,))]

    name = "dekker-broken" if broken else "dekker"
    return Program(name, setup)


def peterson(broken: bool = False) -> Program:
    """Peterson's mutual-exclusion algorithm for two threads.

    Busy-waits are bounded: a thread whose entry condition never turns
    true gives up instead of spinning forever, preserving safety while
    keeping the state space finite.  With ``broken=True`` the victim
    handoff write is skipped, the classic transcription bug that lets
    both threads enter the critical section.
    """

    def setup(w: World):
        flags = [w.atomic("flag0", 0), w.atomic("flag1", 0)]
        victim = w.atomic("victim", 0)
        in_cs = w.atomic("in_cs", 0)

        def worker(me: int):
            other = 1 - me
            yield flags[me].write(1)
            if not broken:
                yield victim.write(me)
            entered = False
            for _ in range(6):
                contended = yield flags[other].read()
                if not contended:
                    entered = True
                    break
                blamed = yield victim.read()
                if blamed != me:
                    entered = True
                    break
            if entered:
                occupants = yield in_cs.add(1)
                check(occupants == 1, "mutual exclusion violated")
                yield in_cs.add(-1)
            yield flags[me].write(0)

        return [("t0", worker, (0,)), ("t1", worker, (1,))]

    name = "peterson-broken" if broken else "peterson"
    return Program(name, setup)


def lock_order_deadlock() -> Program:
    """Classic ABBA deadlock: two locks taken in opposite orders.

    Requires exactly one preemption (between the first thread's two
    acquires).
    """

    def setup(w: World):
        lock_a = w.mutex("A")
        lock_b = w.mutex("B")
        shared = w.var("shared", 0)

        def forward():
            yield lock_a.acquire()
            yield lock_b.acquire()
            value = yield shared.read()
            yield shared.write(value + 1)
            yield lock_b.release()
            yield lock_a.release()

        def backward():
            yield lock_b.acquire()
            yield lock_a.acquire()
            value = yield shared.read()
            yield shared.write(value - 1)
            yield lock_a.release()
            yield lock_b.release()

        return {"fwd": forward, "bwd": backward}

    return Program("lock-order-deadlock", setup)


def producer_consumer(buffer_size: int = 2, items: int = 3) -> Program:
    """Bounded buffer with semaphores (correct).

    One producer, one consumer, slots/items counting semaphores, and a
    final-sum assertion by the consumer.
    """

    def setup(w: World):
        buffer = w.array("buf", [0] * buffer_size)
        slots = w.semaphore("slots", initial=buffer_size)
        filled = w.semaphore("filled", initial=0)

        def producer():
            for i in range(items):
                yield slots.acquire()
                yield buffer[i % buffer_size].write(i + 1)
                yield filled.release()

        def consumer():
            total = 0
            for i in range(items):
                yield filled.acquire()
                value = yield buffer[i % buffer_size].read()
                total += value
                yield slots.release()
            check(total == items * (items + 1) // 2, "all items consumed once")

        return {"producer": producer, "consumer": consumer}

    return Program(f"prodcons-{buffer_size}x{items}", setup)


def event_handshake(rounds: int = 2) -> Program:
    """Two threads ping-ponging through auto-reset events (correct)."""

    def setup(w: World):
        ping = w.event("ping", auto_reset=True)
        pong = w.event("pong", auto_reset=True)
        log = w.var("log", ())

        def left():
            for i in range(rounds):
                trace = yield log.read()
                yield log.write(trace + (f"L{i}",))
                yield ping.set()
                yield pong.wait()

        def right():
            for i in range(rounds):
                yield ping.wait()
                trace = yield log.read()
                yield log.write(trace + (f"R{i}",))
                yield pong.set()

        return {"left": left, "right": right}

    return Program(f"handshake-{rounds}", setup)


def condvar_cell(values: int = 2) -> Program:
    """Single-slot channel with a mutex and two condition variables."""

    def setup(w: World):
        lock = w.mutex("lock")
        not_empty = w.condvar("not_empty")
        not_full = w.condvar("not_full")
        cell = w.var("cell", None)

        def producer():
            for i in range(values):
                yield lock.acquire()
                while True:
                    current = yield cell.read()
                    if current is None:
                        break
                    yield not_full.wait(lock)
                yield cell.write(i + 1)
                yield not_empty.notify()
                yield lock.release()

        def consumer():
            total = 0
            for _ in range(values):
                yield lock.acquire()
                while True:
                    current = yield cell.read()
                    if current is not None:
                        break
                    yield not_empty.wait(lock)
                yield cell.write(None)
                yield not_full.notify()
                yield lock.release()
                total += current
            check(total == values * (values + 1) // 2, "every value consumed once")

        return {"producer": producer, "consumer": consumer}

    return Program(f"condvar-cell-{values}", setup)


def use_after_free_toy() -> Program:
    """A reader races with a deallocating main thread.

    Main publishes the object and immediately frees it without waiting
    for the reader.  Running main to completion before the reader (all
    context switches nonpreempting) already dereferences freed memory:
    the bug surfaces at preemption bound zero.
    """

    def setup(w: World):
        node = w.alloc("node", payload=7)
        published = w.atomic("published", 0)

        def reader():
            ready = yield published.read()
            if ready:
                value = yield node.read("payload")
                check(value == 7, "payload intact")

        def main():
            yield published.write(1)
            # BUG: no wait for the reader to finish before freeing.
            yield node.free()

        return {"reader": reader, "main": main}

    return Program("uaf-toy", setup)


def chain_program(n_threads: int = 2, steps: int = 2) -> Program:
    """``n`` independent threads, each doing ``steps`` atomic steps.

    Non-blocking, so every interleaving of the bodies is a distinct
    execution: the ground-truth workload for validating Theorem 1's
    counting bound.
    """

    def setup(w: World):
        counters = [w.atomic(f"c{i}", 0) for i in range(n_threads)]

        def worker(i: int):
            for _ in range(steps):
                yield counters[i].add(1)

        return [(f"t{i}", worker, (i,)) for i in range(n_threads)]

    return Program(f"chain-{n_threads}x{steps}", setup)


def stats_race(rounds: int = 2) -> Program:
    """A data race surrounded by thread-local statistics counters.

    Each thread keeps a per-thread atomic operation counter (``ops0``,
    ``ops1``) around its accesses to the shared unlocked ``stat``
    variable.  The counters are scheduling points (atomic accesses)
    that static analysis proves thread-local, so the analysis-driven
    reduction skips every deferral at them; the race itself is already
    unordered in the round-robin execution and is reported at
    preemption bound zero, where ICB defers nothing.  Both facts
    together make this a program where ``analysis=True`` must find the
    *identical* bug witnesses with strictly fewer transitions (the
    acceptance test in ``tests/analysis``).
    """

    def setup(w: World):
        stat = w.var("stat", 0)
        ops0 = w.atomic("ops0", 0)
        ops1 = w.atomic("ops1", 0)

        def writer():
            for i in range(rounds):
                yield ops0.add(1)
                yield stat.write(i + 1)
            yield ops0.add(1)

        def reader():
            for _ in range(rounds):
                yield ops1.add(1)
                yield stat.read()
            yield ops1.add(1)

        return {"t0": writer, "t1": reader}

    return Program(f"stats-race-{rounds}", setup)


def stats_assert(increments: int = 2) -> Program:
    """Atomic-counter lost update amid thread-local bookkeeping.

    Two workers perform the classic non-atomic ``v = read(); write(v +
    1)`` on a shared atomic ``total``, each also bumping a private
    atomic ``ops<i>`` before every update and signalling a done event
    at the end; a checker thread waits for both events and asserts the
    total.  (Root-spec threads rather than ``spawn``: the analyzer
    treats all instances of a spawned body as one multi-instance
    summary, which would stop the per-worker counters from being
    proven thread-local.)  Exposing the lost update requires
    preempting a worker *between its read and write of ``total``* --
    both scheduling points on a shared variable, which the reduction
    never touches.  A preemption spent at a proven-local ``ops<i>``
    access instead leaves no budget for a second one, so the rest of
    that execution is serial and the assertion holds: the pruned
    subtrees are exactly the bug-free ones, keeping the found
    witnesses identical.
    """

    def setup(w: World):
        total = w.atomic("total", 0)
        ops = [w.atomic(f"ops{i}", 0) for i in range(2)]
        done = [w.event(f"done{i}") for i in range(2)]

        def worker(i: int):
            for _ in range(increments):
                yield ops[i].add(1)
                value = yield total.read()
                yield total.write(value + 1)
            yield done[i].set()

        def checker():
            yield done[0].wait()
            yield done[1].wait()
            final = yield total.read()
            check(
                final == 2 * increments,
                f"lost update: expected {2 * increments}, got {final}",
            )

        return [
            ("w0", worker, (0,)),
            ("w1", worker, (1,)),
            ("checker", checker, ()),
        ]

    return Program(f"stats-assert-{increments}", setup)


def stats_deadlock() -> Program:
    """The ABBA deadlock with thread-local counters outside the locks.

    Identical to :func:`lock_order_deadlock` except each thread bumps
    a private atomic counter before its first acquire and after its
    last release.  The counters are proven thread-local, so the
    reduction prunes the deferrals at them; the deadlock still needs
    (and gets) the preemption between the two acquires, where the
    pending effect is an ``ACQUIRE`` the reduction never prunes.
    """

    def setup(w: World):
        lock_a = w.mutex("A")
        lock_b = w.mutex("B")
        shared = w.var("shared", 0)
        c0 = w.atomic("c0", 0)
        c1 = w.atomic("c1", 0)

        def forward():
            yield c0.add(1)
            yield lock_a.acquire()
            yield lock_b.acquire()
            value = yield shared.read()
            yield shared.write(value + 1)
            yield lock_b.release()
            yield lock_a.release()
            yield c0.add(1)

        def backward():
            yield c1.add(1)
            yield lock_b.acquire()
            yield lock_a.acquire()
            value = yield shared.read()
            yield shared.write(value - 1)
            yield lock_a.release()
            yield lock_b.release()
            yield c1.add(1)

        return {"fwd": forward, "bwd": backward}

    return Program("stats-deadlock", setup)


def yielding_pair() -> Program:
    """Two threads with explicit yields (exercises YIELD semantics)."""

    def setup(w: World):
        token = w.atomic("token", 0)

        def worker(i: int):
            yield sched_yield()
            yield token.add(1)
            yield sched_yield()

        return [("a", worker, (0,)), ("b", worker, (1,))]

    return Program("yielding-pair", setup)
