"""The Dryad channels benchmark.

Dryad is Microsoft's distributed data-flow execution engine; the
paper's test harness (provided by Dryad's lead developer) "has 5
threads and exercises the shared-memory channel library used for
communication between the nodes in the data-flow graph".  ICB found 5
previously unknown bugs in it; per Table 2 one was exposed with 0
preemptions and four with exactly 1.

The original is proprietary; this model reconstructs the channel
library's concurrency structure around the bug the paper details in
Figure 3: a channel object owning worker threads, a work queue feeding
them, a ``Close`` that hands a STOP message to every worker, and a
main thread that deletes the channel after ``Close`` returns under the
*wrong assumption* that ``Close`` waits for the workers to be finished.

Five threads: main, three channel workers and an application monitor.

Seeded bugs (:data:`VARIANTS`):

* ``missing-handler`` (0 preemptions): main attaches the application
  handler only after ``Close``; any worker that processes a data item
  dereferences a null handler.  Voluntary switches alone expose it.
* ``use-after-free`` (1 preemption): the Figure 3 bug.  A worker
  acknowledges the STOP (releasing ``Close``) *before* its cleanup
  call to ``AlertApplication``; preempting the worker right before
  ``EnterCriticalSection(&channel->m_baseCS)`` lets main return from
  ``Close`` and delete the channel, so the worker then enters a
  critical section inside freed memory.  The witness has one
  preemption and several nonpreempting switches, as in the paper.
* ``refcount-race`` (1 preemption): workers drop their channel
  reference with a split read/write instead of an interlocked
  decrement; one preemption loses a decrement and the final count is
  wrong.
* ``close-sem-race`` (1 preemption): ``Close`` signals the item
  semaphore *before* appending the STOP message under the queue lock;
  a preempted ``Close`` lets a worker pass the semaphore and find the
  queue empty.
* ``double-free`` (1 preemption): a last-worker cleanup path and main
  race on a check-then-act "who frees the channel" flag; one
  preemption makes both free it.
"""

from __future__ import annotations

from typing import Tuple

from ..core.effects import join, spawn
from ..core.program import Program, check
from ..core.world import World

#: Message sentinel closing a worker.
STOP = "<stop>"

#: The seeded-bug variant names.
VARIANTS: Tuple[str, ...] = (
    "missing-handler",
    "use-after-free",
    "refcount-race",
    "close-sem-race",
    "double-free",
)


def dryad_channels(
    variant: str = "correct", workers: int = 3, data_items: int = 2
) -> Program:
    """Build the Dryad channel benchmark.

    Args:
        variant: "correct" or one of :data:`VARIANTS`.
        workers: channel worker threads (3, for 5 threads total with
            main and the application monitor, matching Table 1).
        data_items: payload messages sent before Close.
    """
    if variant != "correct" and variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")

    def setup(w: World):
        channel = w.alloc("channel", handler=None, processed=0, alerts=0)
        base_cs = w.critical_section("m_baseCS", guard=channel)
        queue_lock = w.mutex("queue.lock")
        queue_items = w.var("queue.items", ())
        items_sem = w.semaphore("queue.sem", initial=0)
        outstanding = w.atomic("outstanding", workers)
        drained = w.event("drained")
        refs = w.atomic("refs", 1 + workers)  # main's + one per worker
        freed_flag = w.atomic("freed_flag", 0)
        app_signal = w.event("app.signal")
        app_notified = w.atomic("app.notified", 0)

        def post(message):
            """Append a message to the channel's work queue."""
            if variant == "close-sem-race" and message is STOP:
                # BUG: wake a worker before the message is in the queue.
                yield items_sem.release()
                yield queue_lock.acquire()
                pending = yield queue_items.read()
                yield queue_items.write(pending + (message,))
                yield queue_lock.release()
            else:
                yield queue_lock.acquire()
                pending = yield queue_items.read()
                yield queue_items.write(pending + (message,))
                yield queue_lock.release()
                yield items_sem.release()

        def take():
            """Block for the next message, FIFO."""
            yield items_sem.acquire()
            yield queue_lock.acquire()
            pending = yield queue_items.read()
            check(len(pending) > 0, "queue empty despite signalled semaphore")
            yield queue_items.write(pending[1:])
            yield queue_lock.release()
            return pending[0]

        def alert_application():
            """The cleanup notification of Figure 3."""
            yield base_cs.enter()  # UAF here if the channel was deleted
            count = yield channel.read("alerts")
            yield channel.write("alerts", count + 1)
            yield base_cs.leave()
            yield app_signal.set()

        def drop_reference():
            if variant == "refcount-race":
                # BUG: split read/write instead of interlocked decrement.
                count = yield refs.read()
                yield refs.write(count - 1)
            else:
                yield refs.add(-1)

        def worker():
            while True:
                message = yield from take()
                if message is STOP:
                    if variant == "use-after-free":
                        # BUG: release Close before the cleanup alert.
                        remaining = yield outstanding.add(-1)
                        if remaining == 0:
                            yield drained.set()
                        yield from drop_reference()
                        yield from alert_application()
                    else:
                        yield from alert_application()
                        yield from drop_reference()
                        remaining = yield outstanding.add(-1)
                        if remaining == 0:
                            yield drained.set()
                            if variant == "double-free":
                                # Last worker out cleans up -- racing
                                # with main's own cleanup-after-Close.
                                yield from maybe_free()
                    return
                handler = yield channel.read("handler")
                check(handler is not None, "message dispatched with no handler")
                yield base_cs.enter()
                done = yield channel.read("processed")
                yield channel.write("processed", done + 1)
                yield base_cs.leave()

        def maybe_free():
            """Check-then-act 'who frees the channel' (double-free bug)."""
            already = yield freed_flag.read()
            if not already:
                yield freed_flag.write(1)
                yield channel.free()

        def app_monitor():
            yield app_signal.wait()
            yield app_notified.write(1)

        def close():
            """RChannelReader::Close: stop every worker and wait for
            the drain acknowledgement (but, in the buggy variants, not
            for the workers' cleanup to finish)."""
            for _ in range(workers):
                yield from post(STOP)
            yield drained.wait()

        def main():
            handles = []
            for i in range(workers):
                handles.append((yield spawn(worker, name=f"worker{i}")))
            monitor = yield spawn(app_monitor, name="app")
            if variant != "missing-handler":
                yield channel.write("handler", "app-handler")
            for item in range(data_items):
                yield from post(f"item{item}")
            yield from close()
            if variant == "missing-handler":
                # BUG: attached only after Close -- too late.
                yield channel.write("handler", "app-handler")
            if variant == "double-free":
                yield from maybe_free()
            elif variant == "use-after-free":
                # Figure 3: "wrong assumption that channel->Close()
                # waits for worker threads to be finished".
                yield channel.free()
            for handle in handles:
                yield join(handle)
            yield join(monitor)
            remaining = yield refs.read()
            check(remaining == 1, f"reference count corrupted: {remaining}")

        return {"main": main}

    name = "dryad" if variant == "correct" else f"dryad-{variant}"
    return Program(name, setup)
