"""The Bluetooth PnP driver benchmark.

The paper's first benchmark: "a sample Bluetooth Plug and Play driver
modified to run as a library in user space ... capturing the
synchronization and logic required for basic PnP functionality", with
a driver of three threads "emulat[ing] the scenario of the driver being
stopped when worker threads are performing operations" (Table 1: 3
threads).  This is the same driver studied by Qadeer & Wu's KISS, whose
defect is the canonical one-preemption concurrency bug:

* the stop routine sets ``stoppingFlag``, releases its reference to
  the device (``IoDecrement``), waits for the in-flight I/O count to
  drain, and marks the driver ``stopped``;
* a worker's I/O dispatch checks ``stoppingFlag`` and -- in the buggy
  version -- only *then* increments ``pendingIo``.  A preemption in
  that window lets the stop routine drain the count to zero and
  complete, after which the worker touches a stopped driver.

The fixed version increments first and re-checks, which closes the
window; ICB certifies it up to any bound the state space allows.

Counters and flags are atomic variables, matching the driver's use of
``InterlockedIncrement``/``InterlockedDecrement`` on aligned words.
"""

from __future__ import annotations

from ..core.program import Program, check
from ..core.world import World


def bluetooth(buggy: bool = True, workers: int = 2) -> Program:
    """Build the Bluetooth driver benchmark.

    Args:
        buggy: use the shipped (check-then-increment) ``IoIncrement``;
            ``False`` uses the fixed increment-then-recheck version.
        workers: number of worker threads performing driver I/O (the
            paper's driver uses 2, for 3 threads total).
    """

    def setup(w: World):
        pending_io = w.atomic("pendingIo", 1)
        stopping_flag = w.atomic("stoppingFlag", 0)
        stopped = w.atomic("driverStopped", 0)
        stopping_event = w.event("stoppingEvent")

        def io_decrement():
            remaining = yield pending_io.add(-1)
            if remaining == 0:
                yield stopping_event.set()

        def io_increment_buggy():
            """BUG: the flag check races with the stop routine."""
            flag = yield stopping_flag.read()
            if flag:
                return -1
            yield pending_io.add(1)
            return 0

        def io_increment_fixed():
            """Increment first, then re-check; back out if stopping."""
            yield pending_io.add(1)
            flag = yield stopping_flag.read()
            if flag:
                yield from io_decrement()
                return -1
            return 0

        io_increment = io_increment_buggy if buggy else io_increment_fixed

        def worker():
            status = yield from io_increment()
            if status == 0:
                # Perform driver work: the driver must not be stopped
                # while a dispatched operation is in flight.
                is_stopped = yield stopped.read()
                check(not is_stopped, "driver touched after being stopped")
                yield from io_decrement()

        def stopper():
            yield stopping_flag.write(1)
            yield from io_decrement()
            yield stopping_event.wait()
            yield stopped.write(1)

        threads = {f"worker{i}": worker for i in range(workers)}
        threads["stopper"] = stopper
        return threads

    suffix = "" if buggy else "-fixed"
    return Program(f"bluetooth{suffix}", setup)
