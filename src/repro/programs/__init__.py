"""Benchmark programs.

The six programs of the paper's evaluation (Table 1):

* :mod:`repro.programs.bluetooth` -- the Bluetooth PnP driver model
  (stop vs. worker race);
* :mod:`repro.programs.filesystem` -- the file-system model of
  Flanagan & Godefroid (inode/block allocation under fine-grained
  locks);
* :mod:`repro.programs.workstealqueue` -- the Cilk-style work-stealing
  deque over a bounded circular buffer, plus its three seeded bugs;
* :mod:`repro.programs.ape` -- an asynchronous processing environment
  (APE) model with four seeded bugs;
* :mod:`repro.programs.dryad` -- a Dryad-style channel library with
  the Figure 3 use-after-free and four more seeded bugs;
* :mod:`repro.programs.transaction_manager` -- the transaction manager
  as an explicit-state ZING model with three seeded bugs.

plus :mod:`repro.programs.toy` (racy counters, Dekker, Peterson,
producer/consumer, deadlocks -- the unit/property-test corpus) and
:mod:`repro.programs.classic` (Treiber stack, ticket lock, SPSC ring
buffer -- lock-free idioms with seeded publication bugs).
"""

from . import (
    ape,
    bluetooth,
    classic,
    dryad,
    filesystem,
    toy,
    transaction_manager,
    workstealqueue,
)

__all__ = [
    "ape",
    "bluetooth",
    "classic",
    "dryad",
    "filesystem",
    "toy",
    "transaction_manager",
    "workstealqueue",
]
