"""Benchmark programs.

The six programs of the paper's evaluation (Table 1):

* :mod:`repro.programs.bluetooth` -- the Bluetooth PnP driver model
  (stop vs. worker race);
* :mod:`repro.programs.filesystem` -- the file-system model of
  Flanagan & Godefroid (inode/block allocation under fine-grained
  locks);
* :mod:`repro.programs.workstealqueue` -- the Cilk-style work-stealing
  deque over a bounded circular buffer, plus its three seeded bugs;
* :mod:`repro.programs.ape` -- an asynchronous processing environment
  (APE) model with four seeded bugs;
* :mod:`repro.programs.dryad` -- a Dryad-style channel library with
  the Figure 3 use-after-free and four more seeded bugs;
* :mod:`repro.programs.transaction_manager` -- the transaction manager
  as an explicit-state ZING model with three seeded bugs.

plus :mod:`repro.programs.toy` (racy counters, Dekker, Peterson,
producer/consumer, deadlocks -- the unit/property-test corpus) and
:mod:`repro.programs.classic` (Treiber stack, ticket lock, SPSC ring
buffer -- lock-free idioms with seeded publication bugs).
"""

from typing import Any, Callable, Dict, Optional

from ..core.program import Program

#: Spec -> bug kind (the ``BugKind`` value string) ICB is expected to
#: report for the deliberately buggy builtins.  Derived by actually
#: running ``find_bug`` on each; specs absent here are expected clean
#: (within practical bounds).  ``repro list --json`` and the service
#: tests consume this.
EXPECTED_BUGS: Dict[str, str] = {
    "ape:double-take": "uncaught-exception",
    "ape:early-return": "assertion",
    "ape:init-race": "assertion",
    "ape:stats-race": "assertion",
    "bluetooth": "assertion",
    "dryad:close-sem-race": "assertion",
    "dryad:double-free": "double-free",
    "dryad:missing-handler": "assertion",
    "dryad:refcount-race": "assertion",
    "dryad:use-after-free": "use-after-free",
    "toy:atomic-counter": "assertion",
    "toy:deadlock": "deadlock",
    "toy:racy-counter": "data-race",
    "toy:stats-assert": "assertion",
    "toy:stats-deadlock": "deadlock",
    "toy:stats-race": "data-race",
    "toy:uaf": "use-after-free",
    "wsq:pop-lost-restore": "assertion",
    "wsq:pop-race": "assertion",
    "wsq:steal-stale-tail": "assertion",
}
from . import (
    ape,
    bluetooth,
    classic,
    dryad,
    filesystem,
    toy,
    transaction_manager,
    workstealqueue,
)

__all__ = [
    "EXPECTED_BUGS",
    "ape",
    "bluetooth",
    "builtin_registry",
    "builtin_summaries",
    "classic",
    "dryad",
    "filesystem",
    "find_builtin_by_name",
    "resolve_builtin",
    "toy",
    "transaction_manager",
    "workstealqueue",
]


def builtin_registry() -> Dict[str, Callable[[], Program]]:
    """Spec -> factory for every built-in benchmark program.

    The specs are the names accepted by the CLI (``bluetooth``,
    ``wsq:pop-race``, ...) and recorded in persisted witness traces,
    so a trace found anywhere can be re-resolved to its program here.
    """
    registry: Dict[str, Callable[[], Program]] = {
        "bluetooth": lambda: bluetooth.bluetooth(buggy=True),
        "bluetooth:fixed": lambda: bluetooth.bluetooth(buggy=False),
        "filesystem": filesystem.filesystem,
        "wsq": workstealqueue.work_steal_queue,
        "ape": ape.ape,
        "dryad": lambda: dryad.dryad_channels(workers=2, data_items=1),
        "toy:racy-counter": toy.racy_counter,
        "toy:atomic-counter": toy.atomic_counter_assert,
        "toy:deadlock": toy.lock_order_deadlock,
        "toy:dekker": toy.dekker,
        "toy:peterson": toy.peterson,
        "toy:uaf": toy.use_after_free_toy,
        "toy:chain": toy.chain_program,
        "toy:stats-race": toy.stats_race,
        "toy:stats-assert": toy.stats_assert,
        "toy:stats-deadlock": toy.stats_deadlock,
    }
    for variant in workstealqueue.VARIANTS:
        registry[f"wsq:{variant}"] = (
            lambda v=variant: workstealqueue.work_steal_queue(variant=v)
        )
    for variant in ape.VARIANTS:
        registry[f"ape:{variant}"] = lambda v=variant: ape.ape(variant=v)
    for variant in dryad.VARIANTS:
        registry[f"dryad:{variant}"] = lambda v=variant: dryad.dryad_channels(
            variant=v, workers=2, data_items=1
        )
    return registry


def builtin_summaries() -> Dict[str, Dict[str, Any]]:
    """Machine-readable description of every built-in program.

    Instantiates each program once to count its declared threads; the
    expected-bug class comes from :data:`EXPECTED_BUGS`.  This is what
    ``repro list --json`` emits, so external drivers (the checking
    service, CI matrices) can enumerate the corpus without parsing
    human-oriented output.
    """
    summaries: Dict[str, Dict[str, Any]] = {}
    for spec, factory in builtin_registry().items():
        program = factory()
        _, thread_specs = program.instantiate()
        summaries[spec] = {
            "spec": spec,
            "name": program.name,
            "threads": len(thread_specs),
            "expected_bug": EXPECTED_BUGS.get(spec),
            "buggy": spec in EXPECTED_BUGS,
        }
    return summaries


def resolve_builtin(spec: str) -> Optional[Program]:
    """Build the built-in program registered under ``spec``, if any."""
    factory = builtin_registry().get(spec)
    return factory() if factory is not None else None


def find_builtin_by_name(name: str) -> Optional[Program]:
    """Find a built-in program by its :attr:`Program.name`.

    Trace files record the program display name; when no explicit spec
    was recorded this recovers the program for replay (display names of
    the built-ins are unique).
    """
    for factory in builtin_registry().values():
        program = factory()
        if program.name == name:
            return program
    return None
