"""The APE (Asynchronous Processing Environment) benchmark.

The paper describes APE as "a set of data structures and functions
that provide logical structure and debugging support to asynchronous
multithreaded code", used inside Windows, tested with a driver where
"the main thread initializes APE's data structures, creates two worker
threads, and finally waits for them to finish" (Table 1: 4 threads).
The original is proprietary; this model reconstructs the benchmark's
concurrency structure: a buffer pool under a lock, per-buffer
ownership records, an operations counter used by the debugging
support, and a completion thread that finalizes the environment once
all workers have reported.

ICB found 4 previously unknown bugs in APE; per Table 2 two were
exposed with 0 preemptions, one with 1 and one with 2.  The seeded
defects here reproduce those shapes (see :data:`VARIANTS`):

* ``init-race`` (0 preemptions): the start-up handshake is inverted --
  main waits for the workers to announce themselves *before*
  initializing the pool, so a worker can consume the pool
  uninitialized.  Nonpreempting switches alone (main blocks on the
  handshake) expose it.
* ``early-return`` (0 preemptions): the worker that completes last
  signals the completion event and returns early, skipping its buffer
  release; the finalizer observes the leak.  Again reachable with
  voluntary switches only.
* ``stats-race`` (1 preemption): the operations counter is updated
  with a split atomic read/write instead of under the stats lock; one
  preemption between them loses an update.
* ``double-take`` (2 preemptions): buffer acquisition releases the
  pool lock between sizing the free list and indexing into it; two
  interleaved windows hand the same buffer to both workers.
"""

from __future__ import annotations

from typing import Tuple

from ..core.effects import join, spawn
from ..core.program import Program, check
from ..core.world import World

#: The seeded-bug variant names with their expected exposure bounds.
VARIANTS: Tuple[str, ...] = (
    "init-race",
    "early-return",
    "stats-race",
    "double-take",
)


def ape(variant: str = "correct", buffers: int = 2, workers: int = 2) -> Program:
    """Build the APE benchmark.

    Args:
        variant: "correct" or one of :data:`VARIANTS`.
        buffers: pool size (>= ``workers`` so takes never block).
        workers: worker threads exercising the API (the paper's driver
            uses 2; with main and the completion thread that is 4
            threads, matching Table 1).
    """
    if variant != "correct" and variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
    if buffers < workers:
        raise ValueError("the driver assumes enough buffers for all workers")

    def setup(w: World):
        pool_lock = w.mutex("pool.lock")
        pool_free = w.var("pool.free", None)  # None until initialized
        owner = w.array("owner", [None] * buffers)
        payload = w.array("payload", [0] * buffers)
        stats_lock = w.mutex("stats.lock")
        ops = w.atomic("stats.ops", 0)
        ready = w.event("workers.ready")
        completed = w.atomic("completed", 0)
        all_done = w.event("all.done")
        finalized = w.atomic("finalized", 0)

        def init_pool():
            yield pool_lock.acquire()
            yield pool_free.write(tuple(range(buffers)))
            yield pool_lock.release()

        def take_buffer(me: int):
            if variant == "double-take":
                # BUG: size the free list in one critical section, index
                # into it in another.
                yield pool_lock.acquire()
                free = yield pool_free.read()
                check(free is not None, "pool used before initialization")
                n = len(free)
                yield pool_lock.release()
                yield pool_lock.acquire()
                free = yield pool_free.read()
                buf = free[n - 1]
                yield pool_free.write(free[: n - 1])
            else:
                yield pool_lock.acquire()
                free = yield pool_free.read()
                check(free is not None, "pool used before initialization")
                buf = free[-1]
                yield pool_free.write(free[:-1])
            holder = yield owner[buf].read()
            check(holder is None, f"buffer {buf} handed out twice")
            yield owner[buf].write(me)
            yield pool_lock.release()
            return buf

        def release_buffer(buf: int):
            yield pool_lock.acquire()
            free = yield pool_free.read()
            yield pool_free.write(free + (buf,))
            yield owner[buf].write(None)
            yield pool_lock.release()

        def bump_ops():
            if variant == "stats-race":
                # BUG: split read/write without the stats lock.
                count = yield ops.read()
                yield ops.write(count + 1)
            else:
                yield stats_lock.acquire()
                count = yield ops.read()
                yield ops.write(count + 1)
                yield stats_lock.release()

        def worker(me: int):
            if variant == "init-race":
                yield ready.set()
            buf = yield from take_buffer(me)
            yield payload[buf].write(me + 1)
            yield from bump_ops()
            if variant == "early-return":
                done = yield completed.add(1)
                if done == workers:
                    # BUG: report completion and bail out, leaking the
                    # buffer the finalizer expects back in the pool.
                    yield all_done.set()
                    return
                yield from release_buffer(buf)
            else:
                yield from release_buffer(buf)
                done = yield completed.add(1)
                if done == workers:
                    yield all_done.set()

        def completer():
            yield all_done.wait()
            yield pool_lock.acquire()
            free = yield pool_free.read()
            check(
                free is not None and len(free) == buffers,
                f"finalize with {0 if free is None else len(free)} of "
                f"{buffers} buffers returned",
            )
            yield pool_lock.release()
            total = yield ops.read()
            check(total == workers, f"debug stats lost updates: {total}/{workers}")
            yield finalized.write(1)

        def main():
            handles = []
            if variant == "init-race":
                # BUG: wait for the workers before initializing.
                for i in range(workers):
                    handles.append((yield spawn(worker, i, name=f"worker{i}")))
                yield ready.wait()
                yield from init_pool()
            else:
                yield from init_pool()
                for i in range(workers):
                    handles.append((yield spawn(worker, i, name=f"worker{i}")))
            completion = yield spawn(completer, name="completer")
            for handle in handles:
                yield join(handle)
            yield join(completion)

        return {"main": main}

    name = "ape" if variant == "correct" else f"ape-{variant}"
    return Program(name, setup)
