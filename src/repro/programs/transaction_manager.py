"""The transaction manager benchmark (a ZING model).

The paper's transaction manager "provides transactions in a system for
authoring web services on the Microsoft .NET platform.  Internally,
the in-flight transactions are stored in a hashtable, access to which
is synchronized using fine-grained locking. ... Each test contains two
threads.  One thread performing an operation -- create, commit, or
delete -- on a transaction.  The second thread is a timer thread that
periodically flushes from the hashtable all pending transactions that
have timed out."  It is "a ZING model constructed semi-automatically
from the C# implementation", so this reproduction models it in the
ZING framework (:mod:`repro.zing`) and checks it with the
explicit-state checker, exactly the paper's configuration.

Time is modelled by a global tick counter the operation thread
advances at operation boundaries; the timer's two flush passes are
gated on ticks 1 and 2, and a transaction is only flushed if it was
*marked* expired in a strictly earlier period -- the standard
two-period lazy timeout.

Per Table 2 the transaction manager contributed 3 bugs, two exposed
with 2 preemptions and one with 3 (:data:`VARIANTS`):

* ``stale-commit`` (2 preemptions): commit looks the transaction up
  under the table lock, releases it, and re-validates only under the
  transaction lock; a mark pass and a flush pass landing in the two
  windows make commit touch a flushed transaction.
* ``stale-delete`` (2 preemptions): the same check-then-act shape in
  delete, for a transaction that was never committed.
* ``flush-committed`` (3 preemptions): the *timer* selects its victim
  under the table lock, releases it, and removes blindly after
  re-acquiring; three preemptions let a commit slip between selection
  and removal, so the timer flushes a committed transaction.

Transaction identities are :class:`~repro.zing.symmetry.Ref` values,
so the checker's heap-symmetry reduction collapses states that differ
only in transaction numbering.
"""

from __future__ import annotations

from typing import Tuple

from ..zing.model import ZingCtx, ZingModel, acquire, atomic, guarded, release
from ..zing.symmetry import Ref

#: The seeded-bug variant names.
VARIANTS: Tuple[str, ...] = ("stale-commit", "stale-delete", "flush-committed")


class TransactionManager(ZingModel):
    """The two-thread transaction manager model."""

    thread_labels = ("ops", "timer")

    def __init__(self, variant: str = "correct") -> None:
        if variant != "correct" and variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        self.variant = variant
        self.name = (
            "txnmgr" if variant == "correct" else f"txnmgr-{variant}"
        )

    def initial_globals(self):
        return {
            "tlock": None,  # hashtable lock
            "xlock": None,  # per-transaction lock (one live txn)
            "table": {"s0": None},
            "next_id": 0,
            "ticks": 0,
        }

    # -- shared instruction builders -------------------------------------------

    @staticmethod
    def _tick(ctx: ZingCtx) -> None:
        ctx.g["ticks"] += 1

    @staticmethod
    def _create(ctx: ZingCtx) -> None:
        ctx.g["table"]["s0"] = {
            "id": Ref(ctx.g["next_id"]),
            "state": "active",
            "expired": False,
            "mark_tick": -1,
        }
        ctx.g["next_id"] += 1

    @staticmethod
    def _delete_checked(ctx: ZingCtx) -> None:
        ctx.require(
            ctx.g["table"]["s0"] is not None, "delete of missing transaction"
        )
        ctx.g["table"]["s0"] = None

    # -- the operations thread ----------------------------------------------------

    def program(self, index: int):
        if index == 0:
            return self._ops_program()
        return self._timer_program()

    def _ops_program(self):
        create = [
            acquire("tlock"),
            atomic(self._create, label="create"),
            release("tlock"),
            atomic(self._tick, label="tick1"),
        ]
        delete = [
            acquire("tlock"),
            atomic(self._delete_checked, label="delete"),
            release("tlock"),
        ]

        def commit_atomic(ctx: ZingCtx) -> None:
            ctx.require(
                ctx.g["table"]["s0"] is not None, "commit of missing transaction"
            )
            ctx.g["table"]["s0"]["state"] = "committed"

        if self.variant == "stale-commit":
            # Lookup under the table lock, mutate under the transaction
            # lock -- with nothing pinning the transaction in between.
            def remember(ctx: ZingCtx) -> None:
                ctx.l["found"] = ctx.g["table"]["s0"] is not None

            def commit_stale(ctx: ZingCtx) -> None:
                if ctx.l["found"]:
                    ctx.require(
                        ctx.g["table"]["s0"] is not None,
                        "transaction flushed during commit",
                    )
                    ctx.g["table"]["s0"]["state"] = "committed"

            commit = [
                acquire("tlock"),
                atomic(remember, label="lookup"),
                release("tlock"),
                atomic(self._tick, label="tick2"),  # timeout elapses mid-commit
                acquire("xlock"),
                atomic(commit_stale, label="commit"),
                release("xlock"),
            ]
            return create + commit + delete

        if self.variant == "stale-delete":
            # The transaction is never committed; delete re-validates
            # too late.
            def remember(ctx: ZingCtx) -> None:
                ctx.l["found"] = ctx.g["table"]["s0"] is not None

            def delete_stale(ctx: ZingCtx) -> None:
                if ctx.l["found"]:
                    ctx.require(
                        ctx.g["table"]["s0"] is not None,
                        "transaction vanished during delete",
                    )
                    ctx.g["table"]["s0"] = None

            window_delete = [
                acquire("tlock"),
                atomic(remember, label="lookup"),
                release("tlock"),
                atomic(self._tick, label="tick2"),
                acquire("tlock"),
                atomic(delete_stale, label="delete"),
                release("tlock"),
            ]
            return create + window_delete

        tick2 = [atomic(self._tick, label="tick2")]
        if self.variant == "flush-committed":
            # The timeout period ends before the commit starts, so a
            # lazy flush of the still-active transaction is legitimate:
            # the commit tolerates a missing transaction, and the only
            # incorrect outcome is the timer removing a *committed* one
            # (asserted in the timer's blind remove).
            def commit_tolerant(ctx: ZingCtx) -> None:
                txn = ctx.g["table"]["s0"]
                if txn is not None:
                    txn["state"] = "committed"

            commit = [
                acquire("tlock"),
                acquire("xlock"),
                atomic(commit_tolerant, label="commit"),
                release("xlock"),
                release("tlock"),
            ]
            return create + tick2 + commit

        # correct: commit atomically under both locks (table lock then
        # transaction lock), with the timeout period ending afterwards.
        commit = [
            acquire("tlock"),
            acquire("xlock"),
            atomic(commit_atomic, label="commit"),
            release("xlock"),
            release("tlock"),
        ]
        return create + commit + tick2 + delete

    # -- the timer thread -----------------------------------------------------------

    def _timer_program(self):
        def wait_ticks(n: int):
            return guarded(
                lambda ctx, n=n: ctx.g["ticks"] >= n,
                lambda ctx: None,
                label=f"wait-tick{n}",
            )

        def mark(ctx: ZingCtx) -> None:
            txn = ctx.g["table"]["s0"]
            if txn is not None and txn["state"] == "active" and not txn["expired"]:
                txn["expired"] = True
                txn["mark_tick"] = ctx.g["ticks"]

        def flush_atomic(ctx: ZingCtx) -> None:
            txn = ctx.g["table"]["s0"]
            if (
                txn is not None
                and txn["state"] == "active"
                and txn["expired"]
                and txn["mark_tick"] < ctx.g["ticks"]
            ):
                ctx.g["table"]["s0"] = None

        if self.variant == "flush-committed":
            # The victim is selected in one critical section and
            # removed in another, with no re-validation.
            def select_victim(ctx: ZingCtx) -> None:
                txn = ctx.g["table"]["s0"]
                ctx.l["victim"] = (
                    txn is not None
                    and txn["state"] == "active"
                    and txn["expired"]
                    and txn["mark_tick"] < ctx.g["ticks"]
                )

            def remove_blind(ctx: ZingCtx) -> None:
                if ctx.l["victim"]:
                    txn = ctx.g["table"]["s0"]
                    ctx.require(
                        txn is None or txn["state"] == "active",
                        "timer flushed a committed transaction",
                    )
                    ctx.g["table"]["s0"] = None

            flush_pass = [
                acquire("tlock"),
                atomic(select_victim, label="select"),
                release("tlock"),
                acquire("tlock"),
                atomic(remove_blind, label="remove"),
                release("tlock"),
            ]
        else:
            flush_pass = [
                acquire("tlock"),
                atomic(flush_atomic, label="flush"),
                release("tlock"),
            ]

        mark_pass = [
            acquire("tlock"),
            atomic(mark, label="mark"),
            release("tlock"),
        ]
        return [wait_ticks(1)] + mark_pass + [wait_ticks(2)] + flush_pass


def transaction_manager(variant: str = "correct") -> TransactionManager:
    """Build the transaction-manager ZING model."""
    return TransactionManager(variant)
