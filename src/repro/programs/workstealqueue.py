"""The work-stealing queue benchmark.

The paper's running example: "an implementation [15] of the
work-stealing queue algorithm [8]" -- Leijen's C# port of the Cilk-5
THE protocol -- "represent[ing] the queue using a bounded circular
buffer which is accessed concurrently by two threads in a non-blocking
manner", with a test harness of "two threads, a victim and a thief,
that concurrently access the queue".  The implementor provided three
variants, each containing a subtle bug; Table 2 reports them exposed
at preemption bounds 1, 2 and 2, and Figures 1 and 2 plot coverage on
the correct version.

The queue here is the THE protocol over a bounded circular buffer:

* ``push`` (victim only): write the item, then publish by bumping
  ``tail``;
* ``pop`` (victim only): optimistically grab the top by decrementing
  ``tail``, then reconcile with ``head``; the ``tail == head`` case is
  a conflict with a concurrent steal, arbitrated under the lock;
* ``steal`` (thief): entirely under the lock: re-read both indices,
  take from ``head``.

``head``/``tail`` are atomic (sync) variables, buffer slots are plain
data variables; the race detector therefore also guards the protocol's
publication discipline.

Seeded bugs (see :data:`VARIANTS`):

* ``pop-race`` -- ``pop`` resolves the ``tail == head`` conflict
  *without* taking the lock, so a concurrent steal and the pop can
  both take the last item (duplicate);
* ``steal-stale-tail`` -- ``steal`` reads ``tail`` before acquiring
  the lock and trusts the stale value, stealing an item a concurrent
  pop already took;
* ``pop-lost-restore`` -- ``pop``'s empty path forgets to restore
  ``tail`` after racing with a steal, corrupting the indices so a
  subsequent push is lost.

The harness (3 threads, as in Table 1): a main thread spawns the
victim (pushes then pops) and the thief (steals), joins both, drains
the queue, and asserts that the multiset of taken items is exactly the
multiset pushed -- catching duplicates, lost items and phantom steals.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..core.effects import Effect, join, spawn
from ..core.program import Program, check
from ..core.world import World

#: Sentinel returned by pop/steal on an empty queue.
EMPTY = "<empty>"

#: The seeded-bug variant names, in the order of Table 2.
VARIANTS: Tuple[str, ...] = ("pop-race", "steal-stale-tail", "pop-lost-restore")


class WorkStealQueue:
    """The shared deque: state constructor plus operation generators.

    Operations are generators over effects; thread bodies invoke them
    with ``yield from``.  The ``variant`` selects one of the seeded
    bugs ("correct" selects none).
    """

    def __init__(self, w: World, size: int = 4, variant: str = "correct") -> None:
        if variant != "correct" and variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        self.size = size
        self.variant = variant
        self.head = w.atomic("wsq.head", 0)
        self.tail = w.atomic("wsq.tail", 0)
        self.lock = w.mutex("wsq.lock")
        self.items = w.array("wsq.items", [EMPTY] * size)

    # -- operations (generators; use with `yield from`) -----------------

    def push(self, item) -> Iterator[Effect]:
        """Append ``item`` at the tail (victim only)."""
        t = yield self.tail.read()
        h = yield self.head.read()
        check(t - h < self.size, "push on a full bounded buffer")
        yield self.items[t % self.size].write(item)
        yield self.tail.write(t + 1)

    def pop(self):
        """Take the newest item (victim only); EMPTY if none."""
        t = yield self.tail.add(-1)
        h = yield self.head.read()
        if t < h:
            # Queue was empty; restore the optimistic decrement.
            if self.variant != "pop-lost-restore":
                yield self.tail.write(h)
            return EMPTY
        if t > h:
            item = yield self.items[t % self.size].read()
            return item
        # tail == head: racing with a steal for the last item.
        if self.variant == "pop-race":
            # BUG: no arbitration -- a concurrent steal of the same
            # slot duplicates the item.
            item = yield self.items[t % self.size].read()
            return item
        yield self.lock.acquire()
        h = yield self.head.read()
        if t < h:
            # Lost the race: the thief took it.
            yield self.tail.write(h)
            yield self.lock.release()
            return EMPTY
        item = yield self.items[t % self.size].read()
        yield self.lock.release()
        return item

    def steal(self):
        """Take the oldest item (thief); EMPTY if none."""
        if self.variant == "steal-stale-tail":
            # BUG: sample tail before acquiring the lock and trust it.
            t = yield self.tail.read()
            yield self.lock.acquire()
            h = yield self.head.read()
            if h >= t:
                yield self.lock.release()
                return EMPTY
            item = yield self.items[h % self.size].read()
            yield self.head.write(h + 1)
            yield self.lock.release()
            return item
        yield self.lock.acquire()
        h = yield self.head.read()
        t = yield self.tail.read()
        if h >= t:
            yield self.lock.release()
            return EMPTY
        item = yield self.items[h % self.size].read()
        yield self.head.write(h + 1)
        yield self.lock.release()
        return item


#: The default victim script: interleaves pushes and pops so that the
#: index-corruption bug (``pop-lost-restore``) has a push to lose.
DEFAULT_SCRIPT: Tuple[str, ...] = ("push", "push", "pop", "push", "pop", "pop")


def work_steal_queue(
    variant: str = "correct",
    script: Tuple[str, ...] = DEFAULT_SCRIPT,
    steals: int = 2,
    size: int = 4,
) -> Program:
    """Build the work-stealing queue benchmark.

    The victim runs ``script`` (a sequence of ``"push"``/``"pop"``
    operations; pushes produce items 1, 2, ...); the thief attempts
    ``steals`` steals; main joins both, drains the queue
    single-threadedly and asserts conservation: every pushed item is
    taken exactly once, and nothing else is ever taken.
    """
    if variant != "correct" and variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
    if any(op not in ("push", "pop") for op in script):
        raise ValueError(f"script may only contain 'push'/'pop', got {script!r}")
    pushes = sum(1 for op in script if op == "push")

    def setup(w: World):
        queue = WorkStealQueue(w, size=size, variant=variant)
        victim_taken = w.var("victim_taken", ())
        thief_taken = w.var("thief_taken", ())

        def victim():
            taken: List[int] = []
            next_item = 1
            for op in script:
                if op == "push":
                    yield from queue.push(next_item)
                    next_item += 1
                else:
                    item = yield from queue.pop()
                    if item is not EMPTY:
                        taken.append(item)
            yield victim_taken.write(tuple(taken))

        def thief():
            taken: List[int] = []
            for _ in range(steals):
                item = yield from queue.steal()
                if item is not EMPTY:
                    taken.append(item)
            yield thief_taken.write(tuple(taken))

        def main():
            v = yield spawn(victim, name="victim")
            t = yield spawn(thief, name="thief")
            yield join(v)
            yield join(t)
            got_victim = yield victim_taken.read()
            got_thief = yield thief_taken.read()
            leftovers: List[int] = []
            while True:
                item = yield from queue.pop()
                if item is EMPTY:
                    break
                leftovers.append(item)
            taken = sorted(list(got_victim) + list(got_thief) + leftovers)
            expected = list(range(1, pushes + 1))
            check(
                taken == expected,
                f"conservation violated: pushed {expected}, taken {taken}",
            )

        return {"main": main}

    name = "wsq" if variant == "correct" else f"wsq-{variant}"
    return Program(name, setup)
