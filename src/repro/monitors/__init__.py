"""Execution monitors.

The engine has built-in detectors for deadlock, assertion failures,
lock-usage errors, use-after-free/double-free and data races.  This
package adds the pluggable monitor protocol for program-specific
properties: monitors observe every step of every explored execution
and report bugs through the execution, so a violated invariant carries
the same minimal-preemption witness as any built-in bug.

The paper frames such dynamic analyses (race detection, atomicity
checking, ...) as "program monitors which can be applied to each
execution explored by iterative context-bounding" (Section 5).
"""

from .monitor import (
    FinalStateMonitor,
    InvariantMonitor,
    Monitor,
    TraceCollector,
    monitor_factory,
)

__all__ = [
    "FinalStateMonitor",
    "InvariantMonitor",
    "Monitor",
    "TraceCollector",
    "monitor_factory",
]
