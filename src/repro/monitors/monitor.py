"""The monitor protocol and general-purpose monitors.

Monitors are created per execution through factories listed in
:class:`~repro.core.execution.ExecutionConfig`; the helper
:func:`monitor_factory` turns a monitor class and its arguments into
such a factory::

    config = ExecutionConfig(monitors=(
        monitor_factory(InvariantMonitor, "non-negative balance",
                        lambda ex: ex.world.find("balance").value >= 0),
    ))
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List

from ..errors import BugKind

if TYPE_CHECKING:  # pragma: no cover
    from ..core.execution import Execution, StepRecord


class Monitor:
    """Base class: observes an execution's steps and terminal state."""

    def on_step(self, execution: "Execution", record: "StepRecord") -> None:
        """Called after every scheduling step."""

    def on_terminal(self, execution: "Execution") -> None:
        """Called once when the execution reaches a terminal state."""


def monitor_factory(cls: type, *args: Any, **kwargs: Any) -> Callable[["Execution"], Monitor]:
    """Build an :class:`ExecutionConfig`-compatible monitor factory.

    The factory ignores the execution argument unless the monitor class
    declares ``wants_execution = True``, in which case the execution is
    passed as the first constructor argument.
    """

    def factory(execution: "Execution") -> Monitor:
        if getattr(cls, "wants_execution", False):
            return cls(execution, *args, **kwargs)
        return cls(*args, **kwargs)

    return factory


class InvariantMonitor(Monitor):
    """Checks a global invariant at every scheduling point.

    The predicate receives the execution and returns truth; a falsy
    result is reported as an INVARIANT bug.  Scheduling points are the
    only places other threads can observe state, so checking there is
    exactly as strong as checking after every shared access.
    """

    def __init__(self, name: str, predicate: Callable[["Execution"], bool]) -> None:
        self.name = name
        self.predicate = predicate

    def on_step(self, execution: "Execution", record: "StepRecord") -> None:
        if not self.predicate(execution):
            execution.report_bug(
                BugKind.INVARIANT,
                f"invariant violated: {self.name}",
                thread=record.tid,
            )


class FinalStateMonitor(Monitor):
    """Checks a predicate only at terminal states.

    Theorem 2 of the paper shows that errors expressible as predicates
    on terminating states are preserved by the sync-only reduction, so
    this is the natural place for whole-run postconditions (e.g. "every
    pushed item was popped exactly once").
    """

    def __init__(self, name: str, predicate: Callable[["Execution"], bool]) -> None:
        self.name = name
        self.predicate = predicate

    def on_terminal(self, execution: "Execution") -> None:
        if not self.predicate(execution):
            execution.report_bug(
                BugKind.INVARIANT,
                f"postcondition violated: {self.name}",
            )


class TraceCollector(Monitor):
    """Accumulates step records (debugging aid for tests and examples)."""

    def __init__(self) -> None:
        self.records: List["StepRecord"] = []

    def on_step(self, execution: "Execution", record: "StepRecord") -> None:
        self.records.append(record)
