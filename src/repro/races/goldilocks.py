"""The Goldilocks lockset-transfer race detector.

Goldilocks (Elmas, Qadeer, Tasiran, FATES/RV 2006) is the detector the
paper's CHESS uses to check each explored execution.  It maintains, for
every data variable ``x``, a *lockset* ``LS(x)`` containing the threads
and synchronization elements that currently "own" the variable; a
thread may access ``x`` race-free exactly when it belongs to ``LS(x)``.
Synchronization operations *transfer* ownership by growing locksets.

Transfer rules (eager formulation):

* access of ``x`` by ``t``: race iff ``LS(x)`` is non-empty and ``t``
  is not in it; afterwards ``LS(x) := {t}``;
* acquire-like op on sync element ``s`` by ``t``: every lockset
  containing ``s`` gains ``t``;
* release-like op on ``s`` by ``t``: every lockset containing ``t``
  gains ``s``.

The paper's happens-before relation orders *all* accesses to the same
synchronization variable, not only release-acquire pairs; with
``conservative=True`` (the default) every synchronization access is
treated as both acquire-like and release-like, which makes Goldilocks
compute exactly that relation and agree with the vector-clock tracker.
``conservative=False`` gives the classic release-acquire semantics used
in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from ..core.effects import EffectKind
from ..core.objects import SharedObject
from ..core.thread import ThreadId

#: Lockset elements are threads or synchronization objects.
Element = Union[ThreadId, SharedObject]

#: Synchronization effect kinds with acquire semantics (the issuing
#: thread *absorbs* orderings published at the element).
_ACQUIRE_KINDS = frozenset(
    {
        EffectKind.ACQUIRE,
        EffectKind.TRY_ACQUIRE,
        EffectKind.WAIT,
        EffectKind.SEM_ACQUIRE,
        EffectKind.RW_ACQUIRE_READ,
        EffectKind.RW_ACQUIRE_WRITE,
        EffectKind.ATOMIC_READ,
        EffectKind.START,
        EffectKind.JOIN,
        EffectKind.CV_WAIT,
    }
)

#: Synchronization effect kinds with release semantics (the issuing
#: thread *publishes* its orderings to the element).
_RELEASE_KINDS = frozenset(
    {
        EffectKind.RELEASE,
        EffectKind.SIGNAL,
        EffectKind.RESET,
        EffectKind.SEM_RELEASE,
        EffectKind.RW_RELEASE,
        EffectKind.ATOMIC_WRITE,
        EffectKind.SPAWN,
        EffectKind.EXIT,
        EffectKind.CV_NOTIFY,
        EffectKind.CV_BROADCAST,
    }
)

#: Read-modify-write kinds have both directions even in classic mode.
_BOTH_KINDS = frozenset(
    {EffectKind.CAS, EffectKind.ATOMIC_ADD, EffectKind.EXCHANGE, EffectKind.ALLOC, EffectKind.FREE}
)


class GoldilocksDetector:
    """Online Goldilocks race detection over one execution."""

    def __init__(self, conservative: bool = True) -> None:
        self.conservative = conservative
        self._locksets: Dict[int, Set[Element]] = {}
        self._names: Dict[int, str] = {}

    def _lockset(self, var: SharedObject) -> Set[Element]:
        ls = self._locksets.get(id(var))
        if ls is None:
            ls = set()
            self._locksets[id(var)] = ls
            self._names[id(var)] = var.name
        return ls

    # -- event hooks ------------------------------------------------------

    def on_sync(
        self, tid: ThreadId, obj: SharedObject, kind: EffectKind
    ) -> None:
        """Process a synchronization access (lockset transfer)."""
        if self.conservative or kind in _BOTH_KINDS:
            acquire = release = True
        else:
            acquire = kind in _ACQUIRE_KINDS
            release = kind in _RELEASE_KINDS
        for ls in self._locksets.values():
            grew: List[Element] = []
            if acquire and obj in ls:
                grew.append(tid)
            if release and tid in ls:
                grew.append(obj)
            ls.update(grew)

    def on_data(
        self, tid: ThreadId, var: SharedObject, is_write: bool
    ) -> Optional[str]:
        """Process a data access; return a race description or None.

        Matches the paper's formal definition only on write-involved
        conflicts when combined with the engine's default settings; the
        engine consults its vector-clock tracker for read/write
        distinction, so this detector flags any not-owned access.
        """
        ls = self._lockset(var)
        race: Optional[str] = None
        if ls and tid not in ls:
            race = (
                f"goldilocks: thread {tid} accessed {var.name} without "
                f"ownership (lockset: {self._render(ls)})"
            )
        ls.clear()
        ls.add(tid)
        return race

    @staticmethod
    def _render(ls: Set[Element]) -> str:
        parts = sorted(
            e.name if isinstance(e, SharedObject) else str(e) for e in ls
        )
        return "{" + ", ".join(parts) + "}"
