"""Happens-before tracking and data-race detection.

The soundness of the ``sync_only`` scheduling reduction (Section 3.1 of
the paper, Theorems 2 and 3) requires every explored execution to be
checked for data races.  This package provides:

* :mod:`repro.races.vectorclock` -- immutable vector clocks.
* :mod:`repro.races.happens_before` -- the happens-before tracker used
  by the engine: clock propagation at synchronization accesses and a
  FastTrack-style race check at data accesses.
* :mod:`repro.races.goldilocks` -- the Goldilocks lockset-transfer
  algorithm (Elmas, Qadeer, Tasiran), the detector the paper's CHESS
  uses; provided both for fidelity and as a cross-check of the
  vector-clock detector.
* :mod:`repro.races.eraser` -- the classic Eraser lockset algorithm, an
  over-approximate baseline used in ablation benchmarks.
"""

from .goldilocks import GoldilocksDetector
from .happens_before import HBTracker, RaceInfo, race_variable_from_message
from .vectorclock import VectorClock

__all__ = [
    "GoldilocksDetector",
    "HBTracker",
    "RaceInfo",
    "VectorClock",
    "race_variable_from_message",
]
