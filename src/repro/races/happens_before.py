"""The happens-before tracker.

Implements the relation of Appendix A.1: two steps are *dependent* if
they are executed by the same thread or access the same synchronization
variable; the happens-before relation HB(alpha) is the transitive
closure of the program-order and same-sync-var dependences.

The tracker maintains:

* a vector clock per thread (program order plus inherited orderings);
* a vector clock per synchronization object -- every access to a sync
  object joins the object's clock into the thread and publishes the
  thread's clock back, totally ordering all accesses to that object
  (exactly the paper's dependence relation, which does not distinguish
  acquire from release);
* per data variable, the epochs of the last write and of reads since
  that write, checked FastTrack-style at every data access.

By default a race is two *conflicting* (at least one write) unordered
accesses, which is what the CHESS implementation checks.  The paper's
appendix uses a stricter formal definition where even two unordered
reads of the same data variable constitute a race (it simplifies the
proofs of Theorems 2 and 3); set ``strict=True`` to get that
definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.objects import SharedObject
from ..core.thread import ThreadId
from .vectorclock import VectorClock

#: An access epoch: (thread, that thread's clock at the access).
Epoch = Tuple[ThreadId, int]


@dataclass(frozen=True)
class RaceInfo:
    """Two unordered accesses to the same data variable."""

    variable: str
    first: Epoch
    first_was_write: bool
    second: Epoch
    second_was_write: bool

    def describe(self) -> str:
        def render(epoch: Epoch, write: bool) -> str:
            kind = "write" if write else "read"
            return f"{kind} by {epoch[0]}"

        return (
            f"data race on {self.variable}: "
            f"{render(self.first, self.first_was_write)} is unordered with "
            f"{render(self.second, self.second_was_write)}"
        )


class _VarState:
    """Race-check state for one data variable."""

    __slots__ = ("last_write", "last_write_clock", "reads", "last_access", "last_access_write")

    def __init__(self) -> None:
        self.last_write: Optional[Epoch] = None
        self.last_write_clock: Optional[VectorClock] = None
        self.reads: Dict[ThreadId, int] = {}
        # Only used in strict mode.
        self.last_access: Optional[Epoch] = None
        self.last_access_write = False


class HBTracker:
    """Tracks happens-before clocks and detects data races online."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._thread_clocks: Dict[ThreadId, VectorClock] = {}
        self._sync_clocks: Dict[int, VectorClock] = {}
        self._var_state: Dict[int, _VarState] = {}

    # -- clocks -----------------------------------------------------------

    def clock_of(self, tid: ThreadId) -> VectorClock:
        """The thread's current vector clock."""
        return self._thread_clocks.get(tid, VectorClock.empty())

    def _set_clock(self, tid: ThreadId, clock: VectorClock) -> None:
        self._thread_clocks[tid] = clock

    # -- step processing ----------------------------------------------------

    def sync_access(self, tid: ThreadId, objects: List[SharedObject]) -> VectorClock:
        """Record a synchronization access touching ``objects``.

        The thread's clock absorbs every object's clock, ticks, and is
        published back to every object.  Returns the step's clock.
        """
        clock = self.clock_of(tid)
        for obj in objects:
            other = self._sync_clocks.get(id(obj))
            if other is not None:
                clock = clock.join(other)
        clock = clock.tick(tid)
        for obj in objects:
            self._sync_clocks[id(obj)] = clock
        self._set_clock(tid, clock)
        return clock

    def local_step(self, tid: ThreadId) -> VectorClock:
        """Record a step that accesses no shared variable (YIELD)."""
        clock = self.clock_of(tid).tick(tid)
        self._set_clock(tid, clock)
        return clock

    def data_access(
        self, tid: ThreadId, variable: SharedObject, is_write: bool
    ) -> Tuple[VectorClock, List[RaceInfo]]:
        """Record a data access; return the step clock and any races."""
        clock = self.clock_of(tid).tick(tid)
        self._set_clock(tid, clock)
        epoch: Epoch = (tid, clock.get(tid))

        state = self._var_state.get(id(variable))
        if state is None:
            state = _VarState()
            self._var_state[id(variable)] = state

        races: List[RaceInfo] = []

        if self.strict:
            # Appendix A definition: *any* two unordered accesses race.
            prev = state.last_access
            if prev is not None and not clock.covers(prev[0], prev[1]):
                races.append(
                    RaceInfo(variable.name, prev, state.last_access_write, epoch, is_write)
                )
            state.last_access = epoch
            state.last_access_write = is_write
            return clock, races

        if is_write:
            prev = state.last_write
            if prev is not None and not clock.covers(prev[0], prev[1]):
                races.append(RaceInfo(variable.name, prev, True, epoch, True))
            for reader, time in state.reads.items():
                if reader != tid and not clock.covers(reader, time):
                    races.append(
                        RaceInfo(variable.name, (reader, time), False, epoch, True)
                    )
            state.last_write = epoch
            state.last_write_clock = clock
            state.reads = {}
        else:
            prev = state.last_write
            if prev is not None and not clock.covers(prev[0], prev[1]):
                races.append(RaceInfo(variable.name, prev, True, epoch, False))
            state.reads[tid] = clock.get(tid)
        return clock, races


def race_variable_from_message(message: str) -> Optional[str]:
    """The variable a :meth:`RaceInfo.describe` message is about.

    The inverse of the ``"data race on <variable>: ..."`` format used
    in race bug reports; returns ``None`` for any other message.  The
    static/dynamic cross-validation in ``tests/analysis`` uses this to
    map reported races back onto variables without re-running the
    detector.
    """
    prefix = "data race on "
    if not message.startswith(prefix):
        return None
    variable, sep, _ = message[len(prefix) :].partition(": ")
    return variable if sep else None
