"""Immutable vector clocks over hierarchical thread identifiers.

A vector clock maps thread ids to logical times.  Step ``i`` of an
execution happens-before step ``j`` exactly when step ``i``'s clock is
componentwise dominated by step ``j``'s clock -- the standard encoding
of the paper's happens-before relation (Appendix A.1), whose dependence
relation is: same thread, or same synchronization variable.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..core.thread import ThreadId


class VectorClock:
    """An immutable mapping from :class:`ThreadId` to logical time.

    Missing entries are zero.  All operations return new clocks; the
    happens-before tracker shares clocks freely because of this.
    """

    __slots__ = ("_clocks",)

    _EMPTY: Optional["VectorClock"] = None

    def __init__(self, clocks: Optional[Mapping[ThreadId, int]] = None) -> None:
        self._clocks: Dict[ThreadId, int] = dict(clocks) if clocks else {}

    @classmethod
    def empty(cls) -> "VectorClock":
        """The all-zero clock (shared singleton)."""
        if cls._EMPTY is None:
            cls._EMPTY = cls()
        return cls._EMPTY

    # -- accessors ------------------------------------------------------

    def get(self, tid: ThreadId) -> int:
        """The component for ``tid`` (zero if absent)."""
        return self._clocks.get(tid, 0)

    def items(self) -> Iterator[Tuple[ThreadId, int]]:
        """Iterate over non-zero components."""
        return iter(self._clocks.items())

    def __len__(self) -> int:
        return len(self._clocks)

    # -- operations -----------------------------------------------------

    def tick(self, tid: ThreadId) -> "VectorClock":
        """Increment ``tid``'s component."""
        clocks = dict(self._clocks)
        clocks[tid] = clocks.get(tid, 0) + 1
        return VectorClock(clocks)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum of the two clocks."""
        if not other._clocks:
            return self
        if not self._clocks:
            return other
        clocks = dict(self._clocks)
        for tid, time in other._clocks.items():
            if clocks.get(tid, 0) < time:
                clocks[tid] = time
        return VectorClock(clocks)

    def covers(self, tid: ThreadId, time: int) -> bool:
        """Whether the epoch ``(tid, time)`` happens-before this clock."""
        return self._clocks.get(tid, 0) >= time

    def leq(self, other: "VectorClock") -> bool:
        """Componentwise comparison: ``self`` <= ``other``."""
        return all(other._clocks.get(tid, 0) >= t for tid, t in self._clocks.items())

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._normalized() == other._normalized()

    def __hash__(self) -> int:
        return hash(frozenset(self._normalized().items()))

    def _normalized(self) -> Dict[ThreadId, int]:
        return {tid: t for tid, t in self._clocks.items() if t}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{tid}:{t}" for tid, t in sorted(self._clocks.items()))
        return f"VC{{{inner}}}"
