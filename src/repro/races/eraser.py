"""The Eraser lockset algorithm (Savage et al., TOCS 1997).

Included as an ablation baseline: Eraser checks a *locking discipline*
(every shared variable is consistently protected by some lock) rather
than the happens-before relation, so it reports false positives on
correct synchronization idioms that do not use locks (fork/join
publication, event handoff, lock-free algorithms).  The ablation
benchmark contrasts its verdicts with the precise detectors on the
paper's benchmark programs.

Per-variable state machine, as in the paper:

* VIRGIN: never accessed;
* EXCLUSIVE: accessed by a single thread so far (no checking);
* SHARED: read by multiple threads (lockset refined, races not
  reported);
* SHARED_MODIFIED: written by multiple threads (lockset refined,
  an empty lockset is a race).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from ..core.effects import EffectKind
from ..core.objects import SharedObject
from ..core.thread import ThreadId


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


class _VarInfo:
    __slots__ = ("state", "owner", "lockset")

    def __init__(self) -> None:
        self.state = _State.VIRGIN
        self.owner: Optional[ThreadId] = None
        self.lockset: Optional[Set[SharedObject]] = None


class EraserDetector:
    """Online Eraser lockset checking over one execution."""

    def __init__(self) -> None:
        self._held: Dict[ThreadId, Set[SharedObject]] = {}
        self._vars: Dict[int, _VarInfo] = {}

    # -- lock tracking -----------------------------------------------------

    def on_sync(self, tid: ThreadId, obj: SharedObject, kind: EffectKind) -> None:
        """Track the set of locks each thread currently holds."""
        held = self._held.setdefault(tid, set())
        if kind in (EffectKind.ACQUIRE, EffectKind.TRY_ACQUIRE):
            held.add(obj)
        elif kind is EffectKind.RELEASE:
            held.discard(obj)

    def locks_held(self, tid: ThreadId) -> Set[SharedObject]:
        """The set of locks ``tid`` currently holds."""
        return self._held.get(tid, set())

    # -- data accesses -------------------------------------------------------

    def on_data(
        self, tid: ThreadId, var: SharedObject, is_write: bool
    ) -> Optional[str]:
        """Process a data access; return a race description or None."""
        info = self._vars.get(id(var))
        if info is None:
            info = _VarInfo()
            self._vars[id(var)] = info

        if info.state is _State.VIRGIN:
            info.state = _State.EXCLUSIVE
            info.owner = tid
            return None

        if info.state is _State.EXCLUSIVE:
            if info.owner == tid:
                return None
            # First access by a second thread: start lockset refinement.
            info.lockset = set(self.locks_held(tid))
            info.state = _State.SHARED_MODIFIED if is_write else _State.SHARED
            if is_write and not info.lockset:
                return self._race(var, tid)
            return None

        assert info.lockset is not None
        info.lockset &= self.locks_held(tid)
        if is_write:
            info.state = _State.SHARED_MODIFIED
        if info.state is _State.SHARED_MODIFIED and not info.lockset:
            return self._race(var, tid)
        return None

    @staticmethod
    def _race(var: SharedObject, tid: ThreadId) -> str:
        return (
            f"eraser: variable {var.name} accessed by {tid} with an empty "
            "candidate lockset"
        )
