"""Multiprocess frontier-sharded exploration of the ICB search.

The subsystem has three layers:

* :mod:`repro.parallel.workitem` -- serializable work items: a
  frontier state is its schedule prefix, reconstructible anywhere by
  deterministic replay;
* :mod:`repro.parallel.worker` -- the worker process loop, reusing the
  serial per-item ICB exploration so parallel and serial runs explore
  identical executions;
* :mod:`repro.parallel.coordinator` -- shard dispatch, the per-bound
  barrier preserving the paper's minimal-preemption guarantee, global
  budget enforcement, and crash/timeout recovery.

See ``docs/parallel.md`` for the architecture and the bound-barrier
argument.
"""

from .coordinator import ParallelCoordinator, ParallelSettings
from .workitem import ShardOutcome, ShardTask, WorkItem

__all__ = [
    "ParallelCoordinator",
    "ParallelSettings",
    "ShardOutcome",
    "ShardTask",
    "WorkItem",
]
