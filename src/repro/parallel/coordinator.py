"""Frontier-sharded parallel ICB: the coordinator process.

The stateless search is embarrassingly parallel -- every work item is
a replayable schedule prefix -- but the paper's guarantee is *ordered*:
all executions with ``c`` preemptions must complete before any bug
found with ``c + 1`` preemptions may be reported.  The coordinator
therefore runs a **per-bound barrier**: the frontier of bound ``c`` is
partitioned into shards, shards are dispatched to a pool of worker
processes, and only when every shard of bound ``c`` is accounted for
(explored, budget-stopped, or reported unexplored after worker
failures) does the merged set of deferred items become the frontier of
bound ``c + 1``.  Within a bound, exploration order is irrelevant: the
per-item searches are independent, and all merged quantities (sums,
unions, minima) are order-insensitive, so the parallel engine reports
the same executions, distinct states, certified bound and
minimal-preemption first bug as the serial engine.

Robustness: a worker crash (or a shard exceeding ``shard_timeout``)
requeues the claimed shard to a healthy worker, at most
``max_shard_retries`` times; after that the shard's items are counted
in ``extras["unexplored_items"]`` and the run is marked incomplete --
never silently dropped, and never falsely certified.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..service.checkpoint import Checkpointer

from ..core.execution import ExecutionConfig
from ..core.program import Program
from ..core.transition import ProgramStateSpace
from ..errors import (
    BugReport,
    ReproError,
    SearchBudgetExceeded,
    SearchInterrupted,
)
from ..obs.instrument import Instrumentation
from ..obs.metrics import MetricsSnapshot
from ..search.strategy import (
    SearchContext,
    SearchLimits,
    SearchResult,
    _better_witness,
)
from .workitem import ShardState, ShardTask, WorkItem, chunk_frontier
from .worker import (
    MSG_BUG,
    MSG_CLAIM,
    MSG_DONE,
    MSG_PROGRESS,
    STOP_TASK,
    worker_main,
)


@dataclass(frozen=True)
class ParallelSettings:
    """Tuning and robustness knobs of the parallel engine."""

    #: Target shards per worker and bound; more shards mean better
    #: load balancing, fewer mean less queue traffic.
    overpartition: int = 4
    #: Fixed shard size (overrides ``overpartition`` when set).
    chunk_size: Optional[int] = None
    #: How often a crashed/timed-out shard is requeued before its
    #: items are surfaced as unexplored.
    max_shard_retries: int = 2
    #: Wall-clock seconds a claimed shard may run before its worker is
    #: terminated and the shard requeued (``None`` disables).
    shard_timeout: Optional[float] = None
    #: Worker-side cadence (in budget checks) of stop-event polling.
    stop_check_interval: int = 64
    #: Worker-side cadence (in transitions) of progress streaming.
    progress_interval: int = 256
    #: Coordinator result-queue poll interval in seconds.
    poll_interval: float = 0.05
    #: ``multiprocessing`` start method; ``None`` prefers ``fork``
    #: (state fingerprints use the per-process hash seed, which fork
    #: inherits; under ``spawn`` the coordinator pins PYTHONHASHSEED
    #: for the children and requires a picklable program).
    start_method: Optional[str] = None
    #: Seconds to wait for workers to exit before terminating them.
    join_timeout: float = 5.0
    #: Fault injection (tests only): these worker ids claim their
    #: first shard and then die hard, like a segfault would.
    fault_crash_workers: Tuple[int, ...] = ()
    #: Targeted fault injection (tests only): any worker claiming this
    #: shard dies while the task's ``attempt`` is below
    #: ``fault_crash_attempts``, so one shard can kill several workers
    #: in a row (the worker-killed-twice path) before a retry survives.
    fault_crash_shard: Optional[int] = None
    fault_crash_attempts: int = 0


@dataclass
class _RunState:
    """Mutable bookkeeping shared across bounds of one run."""

    next_shard_id: int = 0
    total_executions: int = 0
    total_transitions: int = 0
    budget_reason: Optional[str] = None
    #: Bugs streamed by workers, deduplicated by signature with the
    #: minimal-preemption witness kept (same rule as SearchContext).
    bugs: Dict[Tuple[Any, ...], BugReport] = field(default_factory=dict)
    shard_results: List[SearchResult] = field(default_factory=list)
    #: Per-shard metric snapshots (instrumented runs only).
    metric_snapshots: List[MetricsSnapshot] = field(default_factory=list)
    #: Cumulative per-worker (executions, transitions) totals, fed by
    #: progress messages (instrumented runs only; drives heartbeats).
    worker_totals: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Union of worker-reported state fingerprints (instrumented runs
    #: only; gives bound-completed events an exact distinct count).
    known_states: set = field(default_factory=set)
    #: Persists each adopted witness as a trace file (``None`` when no
    #: trace directory was configured).  Called on the coordinator, so
    #: a bug found in a worker process becomes durable the moment it
    #: streams in -- even if the run later crashes or is killed.
    trace_writer: Optional[Any] = None

    def note_bug(self, bug: BugReport) -> None:
        known = self.bugs.get(bug.signature)
        if known is None or _better_witness(bug, known):
            self.bugs[bug.signature] = bug
            if self.trace_writer is not None:
                self.trace_writer(bug)


class ParallelCoordinator:
    """Multiprocess frontier-sharded iterative context bounding.

    Drop-in alternative to running
    :class:`~repro.search.icb.IterativeContextBounding` serially::

        coordinator = ParallelCoordinator(program, workers=4, max_bound=2)
        result = coordinator.run(limits=SearchLimits(max_seconds=60))

    The returned :class:`SearchResult` carries the same statistics and
    ``extras["completed_bound"]`` certificate as the serial strategy,
    plus parallel bookkeeping (``workers``, ``shards``,
    ``shard_retries``, ``worker_failures``, ``unexplored_items``).
    """

    strategy_name = "icb-parallel"

    def __init__(
        self,
        program: Program,
        config: Optional[ExecutionConfig] = None,
        workers: int = 2,
        max_bound: Optional[int] = None,
        settings: Optional[ParallelSettings] = None,
        trace_dir: Optional[Any] = None,
        trace_spec: Optional[str] = None,
        obs: Optional[Instrumentation] = None,
        checkpointer: Optional["Checkpointer"] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_bound is not None and max_bound < 0:
            raise ValueError("max_bound must be non-negative")
        self.program = program
        self.config = config or ExecutionConfig()
        self.workers = workers
        self.max_bound = max_bound
        self.settings = settings or ParallelSettings()
        self.trace_dir = trace_dir
        self.trace_spec = trace_spec
        self.obs = obs
        #: Optional durable checkpointing (see ``docs/service.md``):
        #: the run resumes from an existing checkpoint and journals
        #: its frontier at bound starts, shard completions, crash
        #: requeues and bound completions.  Saves happen only at shard
        #: boundaries -- a shard in flight at the time of a crash is
        #: re-dispatched whole on resume, and its partial results are
        #: discarded with the dead run, which is what makes resumed
        #: totals exactly equal uninterrupted ones.
        self.checkpointer = checkpointer

    def _trace_writer(self) -> Optional[Any]:
        """Build the streamed-bug persister for this run, if enabled."""
        if self.trace_dir is None:
            return None
        from ..trace.corpus import TraceCorpus
        from ..trace.format import TraceRecord

        corpus = TraceCorpus(self.trace_dir)

        def write(bug: BugReport) -> None:
            corpus.save(
                TraceRecord.from_bug(
                    self.program, self.config, bug, spec=self.trace_spec
                )
            )

        return write

    # -- public API ---------------------------------------------------------

    def run(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        """Explore the program's state space across the worker pool."""
        limits = limits or SearchLimits()
        if self.obs is not None:
            self.obs.search_started(self.strategy_name, self.program.name)
        space = ProgramStateSpace(self.program, self.config)
        initial = space.initial_state()
        extras: Dict[str, Any] = {
            "completed_bound": None,
            "workers": self.workers,
            "shards": 0,
            "shard_retries": 0,
            "worker_failures": 0,
            "unexplored_items": 0,
        }
        resumed = (
            self.checkpointer.resume_state() if self.checkpointer is not None else None
        )
        if resumed is not None:
            # Checkpointed frontier replaces the initial one; the
            # pre-interruption statistics are seeded into the run
            # state inside _run_pool.
            frontier = list(resumed.work_items)
            carry = list(resumed.next_items)
            bound = resumed.bound
            extras["completed_bound"] = resumed.completed_bound
            extras["resumed"] = True
            for key in ("shards", "shard_retries", "unexplored_items"):
                extras[key] = resumed.parallel.get(key, 0)
            return self._run_pool(frontier, limits, extras, resumed, carry, bound)
        frontier = [WorkItem((), tid, 0) for tid in space.enabled(initial)]
        if not frontier:
            return self._run_degenerate(space, initial, limits, extras)
        return self._run_pool(frontier, limits, extras)

    # -- degenerate case: nothing to parallelize -----------------------------

    def _run_degenerate(
        self,
        space: ProgramStateSpace,
        initial: object,
        limits: SearchLimits,
        extras: Dict[str, Any],
    ) -> SearchResult:
        ctx = SearchContext(limits, obs=self.obs)
        ctx.record_initial(space, initial)
        completed, reason = True, "exhausted state space"
        try:
            if space.is_terminal(initial):
                ctx.note_terminal(space, initial)
        except (SearchBudgetExceeded, SearchInterrupted) as exc:
            completed, reason = False, str(exc)
        extras["completed_bound"] = 0 if completed else None
        extras["final_frontier"] = 0
        if self.obs is not None:
            self.obs.search_finished(
                self.strategy_name, completed, reason,
                ctx.executions, ctx.transitions, len(ctx.states), len(ctx.bugs),
            )
        return SearchResult(self.strategy_name, completed, reason, ctx, extras)

    # -- pool lifecycle -------------------------------------------------------

    def _mp_context(self):
        method = self.settings.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else None
        if method is not None and method != "fork":
            # Children must agree with each other on str/bytes hashing
            # for fingerprints to be unionable, and must be able to
            # rebuild the program by unpickling.
            os.environ.setdefault("PYTHONHASHSEED", "0")
            try:
                pickle.dumps((self.program, self.config))
            except Exception as exc:
                raise ReproError(
                    f"parallel checking with start method {method!r} requires a "
                    f"picklable program; {self.program!r} is not ({exc}). Use a "
                    "module-level setup function or run on a platform with fork."
                ) from exc
        return multiprocessing.get_context(method)

    def _run_pool(
        self,
        frontier: List[WorkItem],
        limits: SearchLimits,
        extras: Dict[str, Any],
        resumed: Optional[Any] = None,
        carry: Optional[List[WorkItem]] = None,
        start_bound: int = 0,
    ) -> SearchResult:
        settings = self.settings
        mp_ctx = self._mp_context()
        task_queue = mp_ctx.Queue()
        result_queue = mp_ctx.Queue()
        stop_event = mp_ctx.Event()
        deadline = (
            time.monotonic() + limits.max_seconds
            if limits.max_seconds is not None
            else None
        )
        procs: Dict[int, Any] = {}
        for wid in range(self.workers):
            proc = mp_ctx.Process(
                target=worker_main,
                args=(
                    wid,
                    self.program,
                    self.config,
                    task_queue,
                    result_queue,
                    stop_event,
                    limits,
                    deadline,
                    settings.stop_check_interval,
                    settings.progress_interval,
                    wid in settings.fault_crash_workers,
                    self.obs is not None,
                    settings.fault_crash_shard,
                    settings.fault_crash_attempts,
                ),
                daemon=True,
            )
            proc.start()
            procs[wid] = proc

        state = _RunState(trace_writer=self._trace_writer())
        if resumed is not None:
            # Fold the pre-interruption statistics in as one synthetic
            # "shard": merge treats it like any completed part, so the
            # resumed run's totals continue from the checkpoint.
            base = resumed.as_base_result(limits)
            state.shard_results.append(base)
            state.total_executions += base.executions
            state.total_transitions += base.transitions
            for bug in base.context.bugs.values():
                known = state.bugs.get(bug.signature)
                if known is None or _better_witness(bug, known):
                    # Seed directly: these witnesses were persisted by
                    # the interrupted run already.
                    state.bugs[bug.signature] = bug
            if self.obs is not None:
                state.known_states.update(base.context.states)
                if resumed.metrics is not None:
                    state.metric_snapshots.append(resumed.metrics)
        completed, reason = True, "exhausted state space"
        bound = start_bound
        carry = list(carry or [])
        try:
            while True:
                next_frontier, bound_ok, fail_reason = self._run_bound(
                    bound, frontier, task_queue, result_queue, stop_event,
                    procs, state, limits, deadline, extras, carry,
                )
                carry = []
                if bound_ok:
                    extras["completed_bound"] = bound
                else:
                    completed = False
                    reason = state.budget_reason or fail_reason or "bound incomplete"
                    frontier = next_frontier
                    break
                if limits.stop_on_first_bug and state.bugs:
                    # The bound barrier, not an eager stop, preserves
                    # the minimal-preemption guarantee: the whole bound
                    # finished, so the smallest witness is in hand.
                    completed, reason = False, "stopping at first bug"
                    frontier = next_frontier
                    break
                if not next_frontier:
                    frontier = []
                    break
                if self.max_bound is not None and bound >= self.max_bound:
                    frontier = next_frontier
                    break
                bound += 1
                frontier = next_frontier
        finally:
            stop_event.set()
            for _ in procs:
                task_queue.put(STOP_TASK)
            self._drain_stray_messages(result_queue, state)
            self._shutdown(procs, settings.join_timeout)
            extras["worker_failures"] = sum(
                1 for p in procs.values() if p.exitcode not in (0, None)
            )
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()

        extras["final_frontier"] = len(frontier)
        return self._merged_result(state, limits, completed, reason, extras)

    # -- one bound under the barrier -----------------------------------------

    def _run_bound(
        self,
        bound: int,
        frontier: List[WorkItem],
        task_queue: Any,
        result_queue: Any,
        stop_event: Any,
        procs: Dict[int, Any],
        state: _RunState,
        limits: SearchLimits,
        deadline: Optional[float],
        extras: Dict[str, Any],
        carry: Optional[List[WorkItem]] = None,
    ) -> Tuple[List[WorkItem], bool, Optional[str]]:
        settings = self.settings
        obs = self.obs
        outstanding: Dict[int, ShardState] = {}
        deferred: Dict[int, Tuple[WorkItem, ...]] = {}
        #: Next-bound items inherited from a resumed checkpoint (the
        #: deferrals of shards that completed before the interruption).
        carried: List[WorkItem] = list(carry or [])
        bound_ok = True
        fail_reason: Optional[str] = None
        if obs is not None:
            obs.bound_started(bound, len(frontier))

        def save_checkpoint(completed_bound: Optional[int] = None) -> None:
            """Journal the bound's remaining work (see docs/service.md).

            Outstanding shards are checkpointed *whole*: a shard in
            flight has no incremental state, so on resume it is simply
            re-dispatched and its lost partial work redone.
            """
            if self.checkpointer is None:
                return
            if not bound_ok or state.budget_reason is not None:
                # The bound can no longer complete: partial shard
                # results are now mixed into the run state, so any save
                # from here would record their statistics without their
                # remaining items.  The last consistent checkpoint
                # (every absorbed shard completed, every other shard
                # whole) stays authoritative for the resume.
                return
            work = [
                item
                for sid in sorted(outstanding)
                for item in outstanding[sid].task.items
            ]
            nxt = carried + [
                item for sid in sorted(deferred) for item in deferred[sid]
            ]
            if completed_bound is None:
                completed_bound = extras.get("completed_bound")
            self._save_checkpoint(state, bound, work, nxt, extras, completed_bound)

        for items in chunk_frontier(
            frontier, self.workers, settings.overpartition, settings.chunk_size
        ):
            sid = state.next_shard_id
            state.next_shard_id += 1
            outstanding[sid] = ShardState(task=ShardTask(sid, bound, items))
            task_queue.put(outstanding[sid].task)
        extras["shards"] += len(outstanding)
        save_checkpoint()

        while outstanding:
            budget_reason = self._global_budget_reason(state, limits, deadline)
            if budget_reason is not None and state.budget_reason is None:
                state.budget_reason = budget_reason
                stop_event.set()
            try:
                msg = result_queue.get(timeout=settings.poll_interval)
            except queue.Empty:
                lost, requeued = self._reap(
                    outstanding, procs, state, extras, task_queue, stop_event
                )
                if lost:
                    bound_ok = False
                    fail_reason = fail_reason or "worker failure: shard(s) unexplored"
                if requeued:
                    # Make the requeue durable: a crash right now must
                    # re-dispatch the shard from the journal on resume,
                    # not from this process's memory.  (A *lost* shard
                    # deliberately stays in the journal as pending work:
                    # resuming gets a fresh pool and another chance.)
                    save_checkpoint()
                continue
            tag = msg[0]
            if tag == MSG_CLAIM:
                _, wid, sid = msg
                shard = outstanding.get(sid)
                if shard is not None:
                    shard.worker_id = wid
                    shard.claimed_at = time.monotonic()
            elif tag == MSG_PROGRESS:
                _, wid, exec_delta, trans_delta = msg
                state.total_executions += exec_delta
                state.total_transitions += trans_delta
                if obs is not None:
                    prior_e, prior_t = state.worker_totals.get(wid, (0, 0))
                    totals = (prior_e + exec_delta, prior_t + trans_delta)
                    state.worker_totals[wid] = totals
                    obs.worker_heartbeat(wid, totals[0], totals[1])
            elif tag == MSG_BUG:
                _, _wid, bug = msg
                state.note_bug(bug)
            elif tag == MSG_DONE:
                _, _wid, sid, outcome = msg
                shard = outstanding.pop(sid, None)
                if shard is None:
                    continue  # duplicate after a requeue race; first wins
                state.shard_results.append(outcome.search)
                deferred[sid] = outcome.deferred
                if obs is not None:
                    if outcome.metrics is not None:
                        state.metric_snapshots.append(outcome.metrics)
                    state.known_states.update(outcome.search.context.states)
                for bug in outcome.search.context.bugs.values():
                    state.note_bug(bug)
                if not outcome.completed:
                    bound_ok = False
                    fail_reason = fail_reason or outcome.stop_reason
                save_checkpoint()

        merged_frontier: List[WorkItem] = []
        merged_frontier.extend(carried)
        for sid in sorted(deferred):
            merged_frontier.extend(deferred[sid])
        if state.budget_reason is not None:
            bound_ok = False
            fail_reason = state.budget_reason
        if obs is not None and bound_ok:
            obs.bound_completed(
                bound, state.total_executions, len(state.known_states)
            )
        if bound_ok and self.checkpointer is not None:
            # Bound-completion save: empty current queue, the merged
            # next-bound frontier deferred.  Resuming this shape
            # re-enters the (empty) bound and advances immediately.
            self._save_checkpoint(
                state, bound, [], merged_frontier, extras, bound
            )
        return merged_frontier, bound_ok, fail_reason

    def _reap(
        self,
        outstanding: Dict[int, ShardState],
        procs: Dict[int, Any],
        state: _RunState,
        extras: Dict[str, Any],
        task_queue: Any,
        stop_event: Any,
    ) -> Tuple[bool, bool]:
        """Handle dead/stuck workers and a stopped pool.

        Returns ``(lost, requeued)``: whether any shard had to be
        abandoned as unexplored, and whether any was re-dispatched.
        """
        settings = self.settings
        now = time.monotonic()
        any_alive = any(p.is_alive() for p in procs.values())
        lost = False
        requeued = False
        for sid, shard in list(outstanding.items()):
            if shard.worker_id is None:
                # Still queued.  Nobody will ever claim it if the pool
                # stopped (budget) or every worker is gone.
                if stop_event.is_set():
                    outstanding.pop(sid)
                elif not any_alive:
                    outstanding.pop(sid)
                    extras["unexplored_items"] += len(shard.task.items)
                    lost = True
                continue
            proc = procs.get(shard.worker_id)
            dead = proc is None or not proc.is_alive()
            if dead and stop_event.is_set():
                # Pool is stopping: no retry target exists, and the
                # stop reason (budget) already marks the run incomplete.
                outstanding.pop(sid)
                continue
            if (
                not dead
                and settings.shard_timeout is not None
                and shard.claimed_at is not None
                and now - shard.claimed_at > settings.shard_timeout
                and not stop_event.is_set()
            ):
                proc.terminate()
                proc.join(timeout=1.0)
                dead = True
            if not dead:
                continue
            healthy = any(
                p.is_alive() for wid, p in procs.items() if wid != shard.worker_id
            )
            if shard.retries >= settings.max_shard_retries or not healthy:
                outstanding.pop(sid)
                extras["unexplored_items"] += len(shard.task.items)
                lost = True
            else:
                shard.retries += 1
                shard.worker_id = None
                shard.claimed_at = None
                extras["shard_retries"] += 1
                # Bump the attempt counter so the re-dispatched task is
                # distinguishable from the original claim (targeted
                # fault injection and diagnostics key on it).
                shard.task = dataclasses.replace(
                    shard.task, attempt=shard.task.attempt + 1
                )
                task_queue.put(shard.task)
                requeued = True
        return lost, requeued

    # -- checkpointing --------------------------------------------------------

    def _save_checkpoint(
        self,
        state: _RunState,
        bound: int,
        work_items: List[WorkItem],
        next_items: List[WorkItem],
        extras: Dict[str, Any],
        completed_bound: Optional[int],
    ) -> None:
        """Persist the run's current frontier and merged statistics."""
        assert self.checkpointer is not None
        if state.shard_results:
            ordered = sorted(
                state.shard_results,
                key=lambda r: (r.extras.get("bound", 0), r.extras.get("shard_id", 0)),
            )
            ctx = SearchResult.merge(ordered).context
        else:
            ctx = SearchContext()
        for bug in state.bugs.values():
            known = ctx.bugs.get(bug.signature)
            if known is None or _better_witness(bug, known):
                ctx.bugs[bug.signature] = bug
        metrics = (
            MetricsSnapshot.merge(state.metric_snapshots)
            if state.metric_snapshots
            else None
        )
        parallel = {
            key: extras[key]
            for key in ("workers", "shards", "shard_retries", "unexplored_items")
            if isinstance(extras.get(key), int)
        }
        if self.checkpointer.obs is None and self.obs is not None:
            # The merged context carries no instrumentation, so route
            # the checkpoint_saved event through the run's own obs.
            self.checkpointer.obs = self.obs
        self.checkpointer.save_state(
            bound,
            work_items,
            next_items,
            ctx,
            completed_bound,
            metrics=metrics,
            parallel=parallel,
        )

    # -- budgets --------------------------------------------------------------

    @staticmethod
    def _global_budget_reason(
        state: _RunState, limits: SearchLimits, deadline: Optional[float]
    ) -> Optional[str]:
        if (
            limits.max_executions is not None
            and state.total_executions >= limits.max_executions
        ):
            return f"execution budget {limits.max_executions} reached"
        if (
            limits.max_transitions is not None
            and state.total_transitions >= limits.max_transitions
        ):
            return f"transition budget {limits.max_transitions} reached"
        if deadline is not None and time.monotonic() >= deadline:
            return f"time budget {limits.max_seconds}s reached"
        return None

    # -- shutdown and merging --------------------------------------------------

    def _drain_stray_messages(self, result_queue: Any, state: _RunState) -> None:
        """Salvage bug reports still buffered when the run stops."""
        while True:
            try:
                msg = result_queue.get_nowait()
            except queue.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - teardown races
                return
            if msg and msg[0] == MSG_BUG:
                state.note_bug(msg[2])

    @staticmethod
    def _shutdown(procs: Dict[int, Any], join_timeout: float) -> None:
        deadline = time.monotonic() + join_timeout
        for proc in procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs.values():
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)

    def _merged_result(
        self,
        state: _RunState,
        limits: SearchLimits,
        completed: bool,
        reason: str,
        extras: Dict[str, Any],
    ) -> SearchResult:
        if state.shard_results:
            ordered = sorted(
                state.shard_results,
                key=lambda r: (r.extras.get("bound", 0), r.extras.get("shard_id", 0)),
            )
            merged = SearchResult.merge(
                ordered,
                strategy=self.strategy_name,
                completed=completed,
                stop_reason=reason,
            )
            ctx = merged.context
            ctx.limits = limits
        else:
            # Every shard was lost before reporting; return what the
            # coordinator knows (streamed bugs) rather than nothing.
            ctx = SearchContext(limits)
            space = ProgramStateSpace(self.program, self.config)
            ctx.record_initial(space, space.initial_state())
            merged = SearchResult(self.strategy_name, completed, reason, ctx, {})
        for bug in state.bugs.values():
            known = ctx.bugs.get(bug.signature)
            if known is None or _better_witness(bug, known):
                ctx.bugs[bug.signature] = bug
        merged.extras = extras
        obs = self.obs
        if obs is not None:
            if state.metric_snapshots:
                obs.metrics.absorb(MetricsSnapshot.merge(state.metric_snapshots))
            # Summed worker snapshots double-count cross-worker state
            # revisits and re-found bugs; the merged context has the
            # true union, so install it as ground truth.
            obs.metrics.reconcile_states(ctx.states_by_bound(), bugs=len(ctx.bugs))
            obs.search_finished(
                self.strategy_name,
                completed,
                reason,
                ctx.executions,
                ctx.transitions,
                len(ctx.states),
                len(ctx.bugs),
            )
        return merged
