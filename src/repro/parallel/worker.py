"""The worker process of the parallel exploration engine.

Each worker owns a private :class:`~repro.core.transition.ProgramStateSpace`
(its own live execution, replayed on demand) and loops over shard
tasks from the coordinator's task queue.  For every work item it runs
the *serial* ICB item exploration --
:meth:`~repro.search.icb.IterativeContextBounding._search_item` -- so
the parallel engine explores, transition for transition, exactly the
executions the serial engine would; only the partitioning of the
frontier differs.

Workers communicate exclusively through the result queue:

* ``("claim", worker_id, shard_id)`` -- announces which shard this
  worker is processing, so the coordinator can requeue it if the
  worker dies;
* ``("progress", worker_id, exec_delta, trans_delta)`` -- periodic
  counters letting the coordinator enforce *global* execution and
  transition budgets across the pool;
* ``("bug", worker_id, report)`` -- streamed immediately on discovery
  (deduplicated coordinator-side, so resending after a retry is safe);
* ``("done", worker_id, shard_id, outcome)`` -- the shard's final
  :class:`~repro.parallel.workitem.ShardOutcome`.

Budgets are honored cooperatively: the context checks the
coordinator-broadcast stop event and the shared wall-clock deadline
every few transitions and unwinds with ``SearchBudgetExceeded``, which
marks the shard (and therefore the bound and the whole run) incomplete.
"""

from __future__ import annotations

import os
import queue
import time
from dataclasses import replace
from typing import Any, List, Optional, Tuple

from ..core.execution import ExecutionConfig
from ..core.program import Program
from ..core.transition import ProgramStateSpace
from ..errors import BugReport, SearchBudgetExceeded, SearchInterrupted
from ..obs.instrument import Instrumentation
from ..search.icb import IterativeContextBounding
from ..search.strategy import SearchContext, SearchLimits, SearchResult
from .workitem import ShardOutcome, ShardTask, WorkItem

#: Result-queue message tags (kept as constants so coordinator and
#: worker cannot drift apart silently).
MSG_CLAIM = "claim"
MSG_PROGRESS = "progress"
MSG_BUG = "bug"
MSG_DONE = "done"

#: Task-queue sentinel telling a worker to exit its loop.
STOP_TASK = "stop"


class WorkerContext(SearchContext):
    """A :class:`SearchContext` wired into the coordinator's queues.

    Differences from the serial context:

    * ``stop_on_first_bug`` never raises locally -- the bound barrier
      is what preserves the minimal-preemption guarantee, so the
      coordinator stops the pool at the end of the bound instead;
    * wall-clock budgets use a *shared* absolute deadline (monotonic
      clocks are system-wide on the supported platforms), so every
      worker times out together;
    * the coordinator's stop event is polled every
      ``stop_check_interval`` budget checks;
    * executions/transitions are streamed as deltas every
      ``progress_interval`` transitions for global budget accounting.
    """

    def __init__(
        self,
        limits: SearchLimits,
        worker_id: int,
        stop_event: Any,
        result_queue: Any,
        deadline: Optional[float],
        stop_check_interval: int = 64,
        progress_interval: int = 256,
        obs: Optional[Instrumentation] = None,
        parent_pid: Optional[int] = None,
    ) -> None:
        super().__init__(
            replace(limits, stop_on_first_bug=False, max_seconds=None), obs=obs
        )
        self.worker_id = worker_id
        self.stop_event = stop_event
        self.result_queue = result_queue
        self.deadline = deadline
        self.stop_check_interval = max(1, stop_check_interval)
        self.progress_interval = max(1, progress_interval)
        self.parent_pid = parent_pid
        self._checks = 0
        self._reported_executions = 0
        self._reported_transitions = 0

    # -- cooperative budgets -------------------------------------------------

    def _check_budget(self) -> None:
        super()._check_budget()
        self._checks += 1
        if self._checks % self.stop_check_interval == 0:
            if self.stop_event.is_set():
                raise SearchBudgetExceeded("coordinator stop")
            if self.deadline is not None and time.monotonic() >= self.deadline:
                raise SearchBudgetExceeded("time budget reached")
            if self.parent_pid is not None and os.getppid() != self.parent_pid:
                # The coordinator died without cleanup (SIGKILL): this
                # worker was reparented.  Stop exploring instead of
                # grinding on as an orphan; the resumed coordinator
                # re-dispatches the shard from its checkpoint journal.
                raise SearchBudgetExceeded("coordinator process vanished")
        if self.transitions - self._reported_transitions >= self.progress_interval:
            self.flush_progress()

    def flush_progress(self) -> None:
        """Stream execution/transition deltas to the coordinator."""
        exec_delta = self.executions - self._reported_executions
        trans_delta = self.transitions - self._reported_transitions
        if exec_delta or trans_delta:
            self.result_queue.put(
                (MSG_PROGRESS, self.worker_id, exec_delta, trans_delta)
            )
            self._reported_executions = self.executions
            self._reported_transitions = self.transitions

    @property
    def residual_executions(self) -> int:
        return self.executions - self._reported_executions

    @property
    def residual_transitions(self) -> int:
        return self.transitions - self._reported_transitions

    # -- bug streaming -------------------------------------------------------

    def note_bug(self, bug: BugReport) -> None:
        before = self.bugs.get(bug.signature)
        super().note_bug(bug)
        after = self.bugs[bug.signature]
        if after is not before:
            # New defect, or a better (fewer-preemption) witness.
            self.result_queue.put((MSG_BUG, self.worker_id, after))

    # -- shipping ------------------------------------------------------------

    def snapshot(self) -> SearchContext:
        """A queue-free copy safe to pickle back to the coordinator."""
        ctx = SearchContext(self.limits)
        ctx.states = dict(self.states)
        ctx.bugs = dict(self.bugs)
        ctx.executions = self.executions
        ctx.transitions = self.transitions
        ctx.history = list(self.history)
        ctx.max_steps = self.max_steps
        ctx.max_blocking = self.max_blocking
        ctx.max_preemptions = self.max_preemptions
        return ctx


class _DeferSink:
    """Adapter letting ``_search_item`` defer into :class:`WorkItem` s.

    The serial loop appends raw ``(state, tid)`` pairs; here every
    deferred pair is wrapped with its prefix preemption count.  The
    query is cheap: at the moment of deferral the space's live
    execution is positioned exactly at ``state``.
    """

    def __init__(self, space: ProgramStateSpace) -> None:
        self.space = space
        self.items: List[WorkItem] = []

    def append(self, pair: Tuple[object, Any]) -> None:
        state, tid = pair
        self.items.append(
            WorkItem(
                schedule=tuple(state),  # type: ignore[arg-type]
                tid=tid,
                preemptions=self.space.preemptions(state),
            )
        )


def explore_shard(
    space: ProgramStateSpace,
    task: ShardTask,
    ctx: WorkerContext,
) -> ShardOutcome:
    """Explore every item of ``task`` within the current bound.

    Uses the serial ICB item loop verbatim, so a shard's exploration
    is indistinguishable from the same items being drained by the
    serial engine.  Stops early (``completed=False``) only when a
    budget or the coordinator's stop event fires.
    """

    icb = IterativeContextBounding()
    sink = _DeferSink(space)
    completed, reason = True, "shard exhausted"
    explored = 0
    ctx.record_initial(space, space.initial_state())
    for item in task.items:
        try:
            icb._search_item(space, ctx, item.as_pair(), sink, None)
            explored += 1
        except (SearchBudgetExceeded, SearchInterrupted) as exc:
            completed, reason = False, str(exc)
            break
    ctx.flush_progress()
    return ShardOutcome(
        shard_id=task.shard_id,
        worker_id=ctx.worker_id,
        items_explored=explored,
        completed=completed,
        stop_reason=reason,
        search=SearchResult(
            strategy="icb-shard",
            completed=completed,
            stop_reason=reason,
            context=ctx.snapshot(),
            extras={"shard_id": task.shard_id, "bound": task.bound},
        ),
        deferred=tuple(sink.items),
        residual_executions=0,  # flushed above
        residual_transitions=0,
        metrics=ctx.obs.snapshot() if ctx.obs is not None else None,
    )


def worker_main(
    worker_id: int,
    program: Program,
    config: Optional[ExecutionConfig],
    task_queue: Any,
    result_queue: Any,
    stop_event: Any,
    limits: SearchLimits,
    deadline: Optional[float],
    stop_check_interval: int,
    progress_interval: int,
    crash_on_first_claim: bool = False,
    collect_metrics: bool = False,
    fault_crash_shard: Optional[int] = None,
    fault_crash_attempts: int = 0,
) -> None:
    """Entry point of one worker process.

    ``crash_on_first_claim`` is a fault-injection hook used by the
    robustness tests: the worker claims its first shard and then dies
    hard (``os._exit``), exactly like a segfault in the program under
    test would kill a real worker.  ``fault_crash_shard`` /
    ``fault_crash_attempts`` are the targeted variant: *any* worker
    claiming that shard dies while ``task.attempt`` is below the
    attempt threshold, so a shard can be made to kill several workers
    in a row (the worker-killed-twice path) before one survives.
    """

    parent_pid = os.getppid()
    space = ProgramStateSpace(program, config)
    while True:
        try:
            task = task_queue.get(timeout=0.2)
        except queue.Empty:
            if stop_event.is_set():
                break
            if os.getppid() != parent_pid:
                # Reparented: the coordinator is gone and nobody will
                # ever send STOP_TASK.  Exit instead of idling forever.
                break
            continue
        if task == STOP_TASK:
            break
        assert isinstance(task, ShardTask)
        result_queue.put((MSG_CLAIM, worker_id, task.shard_id))
        crash = crash_on_first_claim or (
            fault_crash_shard is not None
            and task.shard_id == fault_crash_shard
            and task.attempt < fault_crash_attempts
        )
        if crash:
            # Give the queue's feeder thread a moment to flush the
            # claim, then die without any cleanup.
            time.sleep(0.2)
            os._exit(17)
        obs: Optional[Instrumentation] = None
        if collect_metrics:
            # One fresh Instrumentation per task: its snapshot ships in
            # the ShardOutcome, so cross-task aggregation happens
            # coordinator-side and double counting is impossible.
            obs = Instrumentation()
            obs.current_bound = task.bound
            space.attach_obs(obs)
        ctx = WorkerContext(
            limits,
            worker_id,
            stop_event,
            result_queue,
            deadline,
            stop_check_interval=stop_check_interval,
            progress_interval=progress_interval,
            obs=obs,
            parent_pid=parent_pid,
        )
        outcome = explore_shard(space, task, ctx)
        if collect_metrics:
            space.attach_obs(None)
        result_queue.put((MSG_DONE, worker_id, task.shard_id, outcome))
