"""Serializable units of parallel exploration work.

The stateless checker makes parallel search almost trivial: a frontier
state *is* its schedule, so any process can reconstruct it by
deterministic replay through :class:`~repro.core.execution.Execution`.
A :class:`WorkItem` is exactly one entry of the serial ICB work queue
-- ``(schedule_prefix, next_tid)`` -- plus the preemption count of the
prefix, so the coordinator can account items to bounds without
replaying them itself.

Everything in this module must stay picklable with the standard
library pickler: work items and shard outcomes cross process
boundaries through ``multiprocessing`` queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..core.execution import Schedule
from ..core.thread import ThreadId
from ..search.strategy import SearchResult

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..obs.metrics import MetricsSnapshot


@dataclass(frozen=True)
class WorkItem:
    """One deferred exploration obligation.

    Attributes:
        schedule: the scheduling choices reaching the frontier state
            (a complete replay recipe, per the stateless design).
        tid: the thread to run next from that state.
        preemptions: preempting context switches already spent along
            ``schedule`` (NP of the prefix).  Purely bookkeeping: the
            replay recomputes it, but the coordinator uses it to
            sanity-check bound accounting without replaying.
    """

    schedule: Schedule
    tid: ThreadId
    preemptions: int = 0

    def as_pair(self) -> Tuple[Schedule, ThreadId]:
        """The ``(state, tid)`` pair the serial ICB loop consumes."""
        return (self.schedule, self.tid)


@dataclass(frozen=True)
class ShardTask:
    """A batch of work items dispatched to one worker.

    ``attempt`` counts prior dispatches of this shard: the coordinator
    bumps it on every crash requeue, so a requeued task is
    distinguishable from the original.  Targeted fault injection (the
    worker-killed-twice robustness tests) keys on it.
    """

    shard_id: int
    bound: int
    items: Tuple[WorkItem, ...]
    attempt: int = 0


@dataclass
class ShardOutcome:
    """What a worker reports back for one explored shard.

    ``search`` carries the shard's full statistics as an ordinary
    :class:`~repro.search.strategy.SearchResult`, so the coordinator
    can fold shards together with :meth:`SearchResult.merge`.
    ``residual_executions``/``residual_transitions`` are the counts
    *not yet* streamed through progress messages, letting the
    coordinator keep a running global total for budget enforcement
    without double counting.
    """

    shard_id: int
    worker_id: int
    items_explored: int
    completed: bool
    stop_reason: str
    search: SearchResult
    deferred: Tuple[WorkItem, ...] = ()
    residual_executions: int = 0
    residual_transitions: int = 0
    #: Frozen per-shard metrics when the run is instrumented
    #: (``None`` otherwise); the coordinator folds these with
    #: :meth:`MetricsSnapshot.merge`.
    metrics: Optional["MetricsSnapshot"] = None


@dataclass
class ShardState:
    """Coordinator-side tracking of one outstanding shard."""

    task: ShardTask
    retries: int = 0
    worker_id: Optional[int] = None
    claimed_at: Optional[float] = None


def chunk_frontier(
    items: List[WorkItem], workers: int, overpartition: int, chunk_size: Optional[int]
) -> List[Tuple[WorkItem, ...]]:
    """Partition a frontier into contiguous shards.

    With ``chunk_size`` unset the frontier is cut into roughly
    ``workers * overpartition`` chunks: enough slack that a fast
    worker keeps pulling new shards while a slow one grinds, without
    paying one queue round-trip per item.
    """

    if not items:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // max(1, workers * overpartition)))
    return [tuple(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]
