"""Command-line interface: ``python -m repro``.

Checks a built-in benchmark program (or any program importable as
``module:factory``) with a chosen strategy::

    python -m repro list
    python -m repro check bluetooth --bound 2
    python -m repro check wsq:pop-race --stop-on-first-bug
    python -m repro check mypkg.mymod:make_program --strategy dfs
    python -m repro check --module examples.invivo.bounded_queue:make_program
    python -m repro explain wsq:pop-race

A misspelled built-in name exits 1 with close-match suggestions;
``--module`` imports a ``module:factory`` entry point explicitly (the
usual way to check :mod:`repro.invivo` programs -- real ``threading``
code; see ``docs/invivo.md``).

The static-analysis subsystem (see ``docs/analysis.md``) is exposed
three ways: ``analyze`` prints a program's access summaries, lock
graph and race candidates; ``lint`` reports static anomalies (exiting
non-zero on findings not recorded in a ``--baseline`` file); and
``check --analysis`` applies the analysis-driven scheduling-point
reduction during the search::

    python -m repro analyze wsq:pop-race
    python -m repro lint --all --baseline ci/lint-baseline.txt
    python -m repro check toy:stats-race --analysis

``check`` exits non-zero when a bug is found, so the CLI slots into CI
pipelines the way the paper envisions systematic testing replacing
stress testing.  Found bugs become durable, shippable artifacts
through the trace subsystem (see ``docs/trace.md``)::

    python -m repro check bluetooth --trace-dir traces/
    python -m repro trace save wsq:pop-race pop-race.trace.json
    python -m repro trace replay pop-race.trace.json
    python -m repro trace minimize pop-race.trace.json
    python -m repro corpus run traces/

``trace replay`` exits 0 only when the stored bug is ``REPRODUCED``;
``corpus run`` exits non-zero iff any stored trace fails to reproduce
-- the regression loop for a directory of known bugs.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Callable, Dict, Optional

from .chess.checker import ChessChecker
from .core.execution import ExecutionConfig, RaceDetection, SchedulingPolicy
from .core.program import Program
from .programs import builtin_registry
from .search import (
    DepthFirstSearch,
    EnabledThreadsHeuristic,
    IterativeDeepening,
    RandomWalk,
    SearchLimits,
    Strategy,
)


def _builtin_programs() -> Dict[str, Callable[[], Program]]:
    return builtin_registry()


def _import_factory(spec: str) -> Program:
    """Build a program from a ``module:factory`` spec, with CLI errors."""
    module_name, _, factory_name = spec.partition(":")
    if not module_name or not factory_name:
        raise SystemExit(f"expected module:factory, got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"cannot import module {module_name!r}: {exc}")
    try:
        factory = getattr(module, factory_name)
    except AttributeError:
        raise SystemExit(f"module {module_name!r} has no attribute {factory_name!r}")
    program = factory()
    if not isinstance(program, Program):
        raise SystemExit(f"{spec} did not produce a repro Program")
    return program


def _resolve_program(spec: str) -> Program:
    registry = _builtin_programs()
    if spec in registry:
        return registry[spec]()
    if ":" in spec and "." in spec.split(":", 1)[0]:
        return _import_factory(spec)
    import difflib

    message = (
        f"unknown program {spec!r}; run `python -m repro list` for the "
        "built-ins, or pass `package.module:factory`"
    )
    close = difflib.get_close_matches(spec, sorted(registry), n=3, cutoff=0.5)
    if close:
        message += "\ndid you mean: " + ", ".join(close)
    raise SystemExit(message)


def _make_strategy(args: argparse.Namespace) -> Optional[Strategy]:
    name = args.strategy
    if name == "icb":
        return None  # checker default, honours --bound
    if name == "dfs":
        return DepthFirstSearch(depth_bound=args.depth_bound)
    if name == "idfs":
        return IterativeDeepening()
    if name == "random":
        return RandomWalk(executions=args.executions or 1000, seed=args.seed)
    if name == "most-enabled":
        return EnabledThreadsHeuristic()
    raise SystemExit(f"unknown strategy {name!r}")


def _make_config(args: argparse.Namespace) -> ExecutionConfig:
    return ExecutionConfig(
        policy=SchedulingPolicy(args.policy),
        race_detection=RaceDetection.NONE
        if args.no_race_detection
        else RaceDetection.VECTOR_CLOCK,
    )


def _check_spec(args: argparse.Namespace) -> str:
    """The program spec a check/explain/save invocation targets.

    Exactly one of the PROGRAM positional and ``--module`` must be
    given; the returned spec doubles as the trace spec recorded in
    saved witnesses, so replays can rebuild the program.
    """
    if args.program is not None and args.module is not None:
        raise SystemExit("pass a PROGRAM or --module, not both")
    if args.program is not None:
        return args.program
    if args.module is not None:
        if ":" not in args.module:
            raise SystemExit(
                f"--module expects module:factory, got {args.module!r}"
            )
        return args.module
    raise SystemExit("pass a PROGRAM (see `python -m repro list`) or --module")


def _resolve_check_program(args: argparse.Namespace, spec: str) -> Program:
    if args.module is not None:
        return _import_factory(spec)
    return _resolve_program(spec)


def _add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", nargs="?", default=None,
                        help="built-in name or module:factory")
    parser.add_argument("--module", default=None, metavar="MODULE:FACTORY",
                        help="check the Program returned by this factory "
                        "(e.g. examples.invivo.bounded_queue:make_program; "
                        "the usual entry point for repro.invivo programs)")
    parser.add_argument("--bound", "--max-bound", dest="bound", type=int, default=None,
                        help="stop ICB after this preemption bound")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the ICB frontier across this many worker "
                        "processes (only with --strategy icb)")
    parser.add_argument("--strategy", default="icb",
                        choices=["icb", "dfs", "idfs", "random", "most-enabled"])
    parser.add_argument("--depth-bound", type=int, default=None,
                        help="depth bound for --strategy dfs")
    parser.add_argument("--executions", type=int, default=None,
                        help="execution budget")
    parser.add_argument("--seconds", type=float, default=None,
                        help="wall-clock budget")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --strategy random")
    parser.add_argument("--stop-on-first-bug", action="store_true")
    parser.add_argument("--policy", default="sync-only",
                        choices=[p.value for p in SchedulingPolicy])
    parser.add_argument("--no-race-detection", action="store_true")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="persist every found bug's witness as a "
                        "*.trace.json file under this directory")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write a repro-metrics JSON snapshot of the run "
                        "(inspect with `repro stats FILE`)")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the structured event stream as JSONL "
                        "(inspect with `repro stats FILE`)")
    parser.add_argument("--progress", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="render a live progress line on stderr")
    parser.add_argument("--progress-interval", type=int, default=None, metavar="N",
                        help="with --workers: stream worker progress every N "
                        "transitions (drives heartbeats and global budgets)")
    parser.add_argument("--profile", action="store_true",
                        help="time every schedule/execute/fingerprint/"
                        "race-detect/cache-lookup call and print a phase "
                        "profile (adds overhead)")
    parser.add_argument("--analysis", action="store_true",
                        help="run the static analysis pass first and apply "
                        "the scheduling-point reduction it proves sound "
                        "(see docs/analysis.md; not with --workers)")
    parser.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="durable checkpoint file: resume from it if it "
                        "exists, journal the search into it while running "
                        "(see docs/service.md; only with --strategy icb)")
    parser.add_argument("--checkpoint-stride", type=int, default=None, metavar="N",
                        help="save the checkpoint every N processed work "
                        "items (bound completions always save)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache: identical "
                        "re-checks are served from here without exploring "
                        "(see docs/service.md; only with --strategy icb)")


def _make_obs(args: argparse.Namespace, limits: SearchLimits):
    """Build an Instrumentation from the observability flags, or None
    when no flag asks for one (keeping the run entirely uninstrumented)."""
    wanted = (
        args.metrics_out or args.events_out or args.progress or args.profile
    )
    if not wanted:
        return None
    from .obs import EventBus, Instrumentation, JsonlEventSink, LiveProgressSink

    bus = EventBus()
    if args.events_out:
        bus.subscribe(JsonlEventSink(args.events_out))
    if args.progress:
        bus.subscribe(LiveProgressSink(limits=limits))
    return Instrumentation(bus=bus, profiling=args.profile)


def _finish_obs(args: argparse.Namespace, obs) -> None:
    """Freeze and persist instrumentation output after a run."""
    if obs is None:
        return
    snapshot = obs.snapshot()
    obs.close()
    if args.metrics_out:
        snapshot.save(args.metrics_out)
    if args.profile:
        from .obs import Profiler

        print(Profiler.render(snapshot.profile, snapshot.elapsed), file=sys.stderr)


def _parallel_settings(args: argparse.Namespace):
    if args.progress_interval is None:
        return None
    if args.progress_interval < 1:
        raise SystemExit("--progress-interval must be at least 1")
    if args.workers is None or args.workers < 2:
        raise SystemExit("--progress-interval requires --workers 2 or more")
    from .parallel.coordinator import ParallelSettings

    return ParallelSettings(progress_interval=args.progress_interval)


def _analysis_specs(args: argparse.Namespace) -> list:
    """The program specs an analyze/lint invocation covers."""
    module = getattr(args, "module", None)
    if module is not None:
        if args.program is not None or getattr(args, "all", False):
            raise SystemExit(
                "pass a PROGRAM, --all or --module, not a combination"
            )
        if ":" not in module:
            raise SystemExit(
                f"--module expects module:factory, got {module!r}"
            )
        return [module]
    if getattr(args, "all", False):
        if args.program is not None:
            raise SystemExit("pass a PROGRAM or --all, not both")
        return sorted(_builtin_programs())
    if args.program is None:
        raise SystemExit("pass a PROGRAM, --all or --module")
    return [args.program]


def _resolve_analysis_program(args: argparse.Namespace, spec: str) -> Program:
    """Resolve one analyze/lint spec (built-in, spec'd, or --module)."""
    if getattr(args, "module", None) is not None:
        return _import_factory(spec)
    return _resolve_program(spec)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze

    first = True
    for spec in _analysis_specs(args):
        if not first:
            print()
        first = False
        print(analyze(_resolve_analysis_program(args, spec)).render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import analyze, format_baseline, load_baseline

    findings: list = []
    for spec in _analysis_specs(args):
        findings.extend(analyze(_resolve_analysis_program(args, spec)).findings)
    if args.update_baseline:
        with open(args.update_baseline, "w", encoding="utf-8") as fh:
            fh.write(format_baseline(findings))
        print(f"wrote {len(findings)} fingerprint(s) to {args.update_baseline}")
        return 0
    baseline = set()
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = load_baseline(fh.read())
        except OSError as exc:
            raise SystemExit(str(exc))
    fresh: list = []
    for finding in findings:
        known = finding.fingerprint in baseline
        if not known:
            fresh.append(finding)
        suffix = "  (baselined)" if known else ""
        print(f"{finding.program}: {finding.describe()}{suffix}")
    if fresh:
        print(
            f"{len(fresh)} finding(s) not in the baseline", file=sys.stderr
        )
        return 1
    if findings:
        print(f"{len(findings)} finding(s), all baselined")
    else:
        print("no findings")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        MetricsSnapshot,
        ObsFormatError,
        render_event_summary,
        validate_event_log,
    )

    try:
        with open(args.file, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise SystemExit(str(exc))
    except json.JSONDecodeError:
        data = None  # multi-line JSONL parses line by line below
    if isinstance(data, dict) and data.get("format") == "repro-metrics":
        try:
            snapshot = MetricsSnapshot.from_dict(data)
        except ObsFormatError as exc:
            raise SystemExit(f"bad metrics file: {exc}")
        print(snapshot.summary())
        return 0
    try:
        events = validate_event_log(args.file)
    except ObsFormatError as exc:
        raise SystemExit(
            f"{args.file} is neither a repro-metrics JSON nor a "
            f"repro-events JSONL file: {exc}"
        )
    print(render_event_summary(events))
    return 0


def _resolve_trace_target(args: argparse.Namespace, trace) -> Program:
    """The program a trace subcommand replays against: an explicit
    ``--program`` override, or the trace's own recorded resolution."""
    from .trace.corpus import resolve_trace_program

    if getattr(args, "program", None):
        return _resolve_program(args.program)
    try:
        return resolve_trace_program(trace)
    except Exception as exc:
        raise SystemExit(f"cannot resolve the trace's program: {exc}; pass --program")


def _cmd_trace_save(args: argparse.Namespace) -> int:
    from .trace.format import TraceRecord

    if args.out is None and args.module is not None and args.program is not None:
        # With --module the single positional is OUT, but argparse
        # bound it to the optional PROGRAM slot.
        args.program, args.out = None, args.program
    if args.out is None:
        raise SystemExit("trace save needs an OUT path for the witness")
    spec = _check_spec(args)
    program = _resolve_check_program(args, spec)
    checker = ChessChecker(program, _make_config(args))
    limits = SearchLimits(
        max_executions=args.executions, max_seconds=args.seconds,
        stop_on_first_bug=True,
    )
    obs = _make_obs(args, limits)
    bug = checker.find_bug(
        max_bound=args.bound, limits=limits, workers=args.workers, obs=obs,
        analysis=args.analysis,
    )
    _finish_obs(args, obs)
    if bug is None:
        print("no bug found; nothing to save")
        return 1
    trace = TraceRecord.from_bug(program, checker.config, bug, spec=spec)
    path = trace.save(args.out)
    print(f"saved {path}")
    print(trace.summary())
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from .trace.format import TraceFormatError, TraceRecord
    from .trace.replay import replay_trace

    try:
        trace = TraceRecord.load(args.trace)
    except TraceFormatError as exc:
        raise SystemExit(f"bad trace file: {exc}")
    program = _resolve_trace_target(args, trace)
    report = replay_trace(trace, program)
    print(report.explain())
    return 0 if report.reproduced else 1


def _cmd_trace_minimize(args: argparse.Namespace) -> int:
    from .trace.format import TraceFormatError, TraceRecord
    from .trace.minimize import MinimizationError, minimize_trace

    try:
        trace = TraceRecord.load(args.trace)
    except TraceFormatError as exc:
        raise SystemExit(f"bad trace file: {exc}")
    program = _resolve_trace_target(args, trace)
    try:
        result = minimize_trace(trace, program)
    except MinimizationError as exc:
        raise SystemExit(str(exc))
    out = args.out or args.trace
    result.trace.save(out)
    print(result.summary())
    print(f"wrote {out}")
    return 0


def _cmd_corpus_run(args: argparse.Namespace) -> int:
    from .trace.corpus import TraceCorpus

    corpus = TraceCorpus(args.dir)
    if not corpus.paths():
        print(f"no *.trace.json files under {args.dir}")
        return 1
    report = corpus.run()
    print(report.summary())
    return 0 if report.ok else 1


def _serve_obs(args: argparse.Namespace):
    """Instrumentation for a daemon run, if --metrics-out asked for it."""
    if not getattr(args, "metrics_out", None):
        return None
    from .obs import Instrumentation

    return Instrumentation()


def _report_serve(queue, handled: int) -> int:
    print(f"handled {handled} job(s)")
    failed = [job for job in queue.jobs() if job.status == "failed"]
    for job in failed:
        print(job.describe(), file=sys.stderr)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    obs = _serve_obs(args)
    fleet_mode = args.fleet or args.http is not None or args.peer
    if fleet_mode:
        from .net import FleetDaemon

        daemon = FleetDaemon(
            args.root,
            daemon_id=args.daemon_id,
            lease_ttl=args.lease_ttl,
            http_port=args.http,
            peers=args.peer or (),
            max_attempts=args.max_attempts,
            obs=obs,
        )
        daemon.start()
        if daemon.url:
            print(f"listening on {daemon.url}", flush=True)
        try:
            handled = daemon.serve(
                once=args.once,
                poll_interval=args.poll_interval,
                max_jobs=args.max_jobs,
            )
        finally:
            daemon.close()
            if obs is not None:
                obs.snapshot().save(args.metrics_out)
        return _report_serve(daemon.service.queue, handled)

    from .service import CheckingService

    service = CheckingService(args.root, max_attempts=args.max_attempts, obs=obs)
    handled = service.serve(
        once=args.once,
        poll_interval=args.poll_interval,
        max_jobs=args.max_jobs,
    )
    if obs is not None:
        obs.snapshot().save(args.metrics_out)
    return _report_serve(service.queue, handled)


def _service_client(args: argparse.Namespace):
    from .net import ServiceClient

    return ServiceClient(args.server, timeout=args.timeout, retries=args.retries)


def _cmd_submit(args: argparse.Namespace) -> int:
    if args.server:
        # With --server the ROOT positional is dropped, so the single
        # positional (bound to `root` by argparse) is the program.
        if args.program is not None:
            raise SystemExit("pass PROGRAM only (no ROOT) with --server")
        if args.root is None:
            raise SystemExit("submit --server needs a PROGRAM")
        from .net import ServiceClientError

        try:
            job = _service_client(args).submit(
                args.root,
                priority=args.priority,
                max_bound=args.bound,
                workers=args.workers,
                stop_on_first_bug=args.stop_on_first_bug,
                max_executions=args.executions,
                max_transitions=args.transitions,
                state_caching=args.state_caching,
            )
        except ServiceClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(job["id"])
        return 0
    if args.root is None or args.program is None:
        raise SystemExit("submit needs ROOT and PROGRAM (or --server URL PROGRAM)")
    from .service import JobQueue

    queue = JobQueue(args.root)
    job = queue.submit(
        args.program,
        priority=args.priority,
        max_bound=args.bound,
        workers=args.workers,
        stop_on_first_bug=args.stop_on_first_bug,
        max_executions=args.executions,
        max_transitions=args.transitions,
        state_caching=args.state_caching,
    )
    print(job.id)
    return 0


def _wire_job_record(record: dict):
    """A Job view of a wire job dict, for uniform describe()/asdict."""
    from .service import Job

    return Job(**{k: v for k, v in record.items() if k != "identity"})


def _cmd_status(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    if args.server:
        from .net import ServiceClientError

        job_id = args.job if args.job is not None else args.root
        client = _service_client(args)
        try:
            records = [client.job(job_id)] if job_id else client.jobs()
        except ServiceClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        jobs = [_wire_job_record(record) for record in records]
        source = args.server
    else:
        if args.root is None:
            raise SystemExit("status needs a ROOT (or --server URL)")
        from .service import JobQueue

        queue = JobQueue(args.root)
        if args.job is not None:
            job = queue.get(args.job)
            if job is None:
                print(
                    f"error: unknown job id {args.job!r} under {args.root} "
                    "(run `repro status` without a job id to list them)",
                    file=sys.stderr,
                )
                return 1
            jobs = [job]
        else:
            jobs = queue.jobs()
        source = args.root
    if args.json:
        print(json.dumps([dataclasses.asdict(job) for job in jobs], indent=2))
        return 0
    if not jobs:
        print(f"no jobs under {source}")
        return 0
    for job in jobs:
        print(job.describe())
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    import json

    if args.server:
        from .net import ServiceClientError

        job_id = args.job if args.job is not None else args.root
        if not job_id:
            raise SystemExit("results --server needs a JOB id")
        try:
            payload = _service_client(args).results(job_id)
        except ServiceClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        if args.root is None or args.job is None:
            raise SystemExit("results needs ROOT and JOB (or --server URL JOB)")
        from .errors import ReproError
        from .service import CheckingService

        service = CheckingService(args.root)
        record = service.queue.get(args.job)
        if record is None:
            print(
                f"error: unknown job id {args.job!r} under {args.root} "
                f"(run `repro status {args.root}` to list jobs)",
                file=sys.stderr,
            )
            return 1
        if record.status != "done":
            print(
                f"error: job {args.job} is {record.status}; no result yet",
                file=sys.stderr,
            )
            return 1
        try:
            payload = service.load_result(args.job)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(json.dumps(payload, sort_keys=True, indent=2))
    return 0


def _add_server_arguments(parser: argparse.ArgumentParser) -> None:
    """The remote-service flags shared by submit/status/results."""
    parser.add_argument("--server", default=None, metavar="URL",
                        help="talk to a daemon's HTTP API (e.g. "
                        "http://host:8080) instead of a local service "
                        "directory; the ROOT positional is dropped")
    parser.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                        help="per-request timeout for --server")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="bounded retries (jittered backoff) for --server")


def _result_cache(args: argparse.Namespace):
    """Build the --cache-dir result cache (with the --trace-dir corpus
    as its fast path), or None when caching was not requested."""
    if args.cache_dir is None:
        return None
    if args.strategy != "icb":
        raise SystemExit("--cache-dir requires the default icb strategy")
    from .service import ResultCache
    from .trace.corpus import TraceCorpus

    corpus = TraceCorpus(args.trace_dir) if args.trace_dir else None
    return ResultCache(args.cache_dir, corpus=corpus)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systematic concurrency testing with iterative "
        "context bounding (PLDI 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list built-in benchmark programs"
    )
    list_parser.add_argument("--json", action="store_true",
                             help="emit a machine-readable registry (spec, "
                             "display name, thread count, expected bug class)")

    check_parser = commands.add_parser("check", help="model-check a program")
    _add_check_arguments(check_parser)

    explain_parser = commands.add_parser(
        "explain", help="find the minimal bug and print its annotated trace"
    )
    _add_check_arguments(explain_parser)

    trace_parser = commands.add_parser(
        "trace", help="save, replay or minimize witness traces"
    )
    trace_commands = trace_parser.add_subparsers(dest="trace_command", required=True)

    save_parser = trace_commands.add_parser(
        "save", help="find the minimal bug and save its witness trace"
    )
    _add_check_arguments(save_parser)
    # nargs="?" (reconciled in _cmd_trace_save) because argparse cannot
    # match an optional PROGRAM followed by a required OUT when option
    # flags separate them.
    save_parser.add_argument("out", nargs="?", default=None,
                             help="output file (or directory) for the trace")

    replay_parser = trace_commands.add_parser(
        "replay", help="replay a saved trace and classify the outcome"
    )
    replay_parser.add_argument("trace", help="a *.trace.json file")
    replay_parser.add_argument("--program", default=None,
                               help="override the program to replay against "
                               "(built-in name or module:factory)")

    minimize_parser = trace_commands.add_parser(
        "minimize", help="shrink a saved trace, re-validating by replay"
    )
    minimize_parser.add_argument("trace", help="a *.trace.json file")
    minimize_parser.add_argument("--out", default=None,
                                 help="write the minimized trace here instead "
                                 "of overwriting the input")
    minimize_parser.add_argument("--program", default=None,
                                 help="override the program to replay against")

    corpus_parser = commands.add_parser(
        "corpus", help="operate on a directory of witness traces"
    )
    corpus_commands = corpus_parser.add_subparsers(dest="corpus_command", required=True)
    corpus_run_parser = corpus_commands.add_parser(
        "run", help="replay every stored trace; fail unless all reproduce"
    )
    corpus_run_parser.add_argument("dir", help="directory of *.trace.json files")

    serve_parser = commands.add_parser(
        "serve",
        help="run the durable checking service over a service directory "
        "(see docs/service.md)",
    )
    serve_parser.add_argument("root", help="service directory (created if missing)")
    serve_parser.add_argument("--once", action="store_true",
                              help="drain the queue and exit instead of "
                              "waiting for new submissions")
    serve_parser.add_argument("--poll-interval", type=float, default=0.2,
                              metavar="SECONDS",
                              help="idle sleep between queue polls")
    serve_parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                              help="exit after handling N jobs")
    serve_parser.add_argument("--max-attempts", type=int, default=3, metavar="N",
                              help="give up on a job after N failed attempts")
    serve_parser.add_argument("--http", type=int, default=None, metavar="PORT",
                              help="serve the HTTP API on this port (0 picks "
                              "a free one; prints the bound URL); implies "
                              "fleet mode")
    serve_parser.add_argument("--fleet", action="store_true",
                              help="claim jobs under lease fencing so several "
                              "daemons can share this service root "
                              "(see docs/service.md)")
    serve_parser.add_argument("--daemon-id", default=None, metavar="NAME",
                              help="this daemon's identity in lease records "
                              "(default: host-pid)")
    serve_parser.add_argument("--lease-ttl", type=float, default=5.0,
                              metavar="SECONDS",
                              help="lease time-to-live; a daemon silent this "
                              "long forfeits its running jobs to the fleet")
    serve_parser.add_argument("--peer", action="append", default=None,
                              metavar="URL",
                              help="peer daemon base URL for cache/trace sync "
                              "(repeatable); implies fleet mode")
    serve_parser.add_argument("--metrics-out", default=None, metavar="FILE",
                              help="write a repro-metrics JSON snapshot on "
                              "exit (inspect with `repro stats FILE`)")

    submit_parser = commands.add_parser(
        "submit", help="enqueue a checking job for `repro serve`"
    )
    submit_parser.add_argument("root", nargs="?", default=None,
                               help="service directory (omit with --server)")
    submit_parser.add_argument("program", nargs="?", default=None,
                               help="built-in name or module:factory")
    submit_parser.add_argument("--bound", "--max-bound", dest="bound", type=int,
                               default=None,
                               help="stop ICB after this preemption bound")
    submit_parser.add_argument("--workers", type=int, default=None,
                               help="run the job with this many worker processes")
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="higher runs first")
    submit_parser.add_argument("--stop-on-first-bug", action="store_true")
    submit_parser.add_argument("--executions", type=int, default=None,
                               help="execution budget")
    submit_parser.add_argument("--transitions", type=int, default=None,
                               help="transition budget")
    submit_parser.add_argument("--state-caching", action="store_true",
                               help="enable Algorithm 1's work-item table")
    _add_server_arguments(submit_parser)

    status_parser = commands.add_parser(
        "status", help="show every job in a service directory"
    )
    status_parser.add_argument("root", nargs="?", default=None,
                               help="service directory (omit with --server)")
    status_parser.add_argument("job", nargs="?", default=None,
                               help="show only this job id (errors if unknown)")
    status_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable job records")
    _add_server_arguments(status_parser)

    results_parser = commands.add_parser(
        "results", help="print a finished job's result report"
    )
    results_parser.add_argument("root", nargs="?", default=None,
                                help="service directory (omit with --server)")
    results_parser.add_argument("job", nargs="?", default=None,
                                help="job id (see `repro status`)")
    _add_server_arguments(results_parser)

    stats_parser = commands.add_parser(
        "stats", help="summarize a --metrics-out JSON or --events-out JSONL file"
    )
    stats_parser.add_argument("file", help="a repro-metrics or repro-events file")

    analyze_parser = commands.add_parser(
        "analyze",
        help="print a program's static access summaries, lock graph and "
        "race candidates",
    )
    analyze_parser.add_argument("program", nargs="?", default=None,
                                help="built-in name or module:factory")
    analyze_parser.add_argument("--all", action="store_true",
                                help="analyze every built-in program")
    analyze_parser.add_argument("--module", default=None,
                                metavar="MODULE:FACTORY",
                                help="analyze the Program returned by this "
                                "factory (e.g. examples.invivo."
                                "bounded_queue:make_program)")

    lint_parser = commands.add_parser(
        "lint",
        help="report static synchronization anomalies; non-zero exit on "
        "findings missing from the baseline",
    )
    lint_parser.add_argument("program", nargs="?", default=None,
                             help="built-in name or module:factory")
    lint_parser.add_argument("--all", action="store_true",
                             help="lint every built-in program")
    lint_parser.add_argument("--module", default=None,
                             metavar="MODULE:FACTORY",
                             help="lint the Program returned by this factory "
                             "(e.g. examples.invivo.hidden_state:"
                             "make_program)")
    lint_parser.add_argument("--baseline", default=None, metavar="FILE",
                             help="known-findings file; only findings not "
                             "listed there fail the run")
    lint_parser.add_argument("--update-baseline", default=None, metavar="FILE",
                             help="write the current findings as the new "
                             "baseline and exit 0")

    args, extras = parser.parse_known_args(argv)
    if extras:
        # `trace save PROGRAM --flag X OUT`: both optional positionals
        # were consumed at the first positional chunk, leaving OUT
        # unrecognized -- argparse cannot fill a later chunk once every
        # optional positional is spent.  Reclaim it.
        if (
            args.command == "trace"
            and getattr(args, "trace_command", None) == "save"
            and getattr(args, "out", None) is None
            and len(extras) == 1
            and not extras[0].startswith("-")
        ):
            args.out = extras[0]
        else:
            parser.error("unrecognized arguments: " + " ".join(extras))

    if args.command == "list":
        if args.json:
            import json

            from .programs import builtin_summaries

            summaries = builtin_summaries()
            print(json.dumps(
                [summaries[spec] for spec in sorted(summaries)], indent=2
            ))
            return 0
        for name in sorted(_builtin_programs()):
            print(name)
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "trace":
        if args.trace_command == "save":
            return _cmd_trace_save(args)
        if args.trace_command == "replay":
            return _cmd_trace_replay(args)
        return _cmd_trace_minimize(args)
    if args.command == "corpus":
        return _cmd_corpus_run(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "lint":
        return _cmd_lint(args)

    spec = _check_spec(args)
    program = _resolve_check_program(args, spec)
    checker = ChessChecker(program, _make_config(args))
    limits = SearchLimits(
        max_executions=args.executions,
        max_seconds=args.seconds,
        stop_on_first_bug=args.stop_on_first_bug or args.command == "explain",
    )

    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.workers is not None and args.strategy != "icb":
        raise SystemExit("--workers requires the default icb strategy")
    if args.analysis and args.workers is not None and args.workers > 1:
        raise SystemExit("--analysis is not supported with --workers")
    if args.checkpoint is not None and args.strategy != "icb":
        raise SystemExit("--checkpoint requires the default icb strategy")
    parallel_settings = _parallel_settings(args)
    cache = _result_cache(args)
    obs = _make_obs(args, limits)

    if args.command == "explain":
        from .trace.format import TraceRecord
        from .trace.replay import replay_trace

        bug = checker.find_bug(
            max_bound=args.bound, limits=limits, workers=args.workers,
            parallel_settings=parallel_settings,
            trace_dir=args.trace_dir, trace_spec=spec, obs=obs,
            analysis=args.analysis,
            checkpoint=args.checkpoint,
            checkpoint_stride=args.checkpoint_stride,
            cache=cache,
        )
        _finish_obs(args, obs)
        if bug is None:
            print("no bug found")
            return 0
        # Replay through the trace subsystem from the (possibly merged,
        # cross-process) result's witness -- never by re-searching.
        trace = TraceRecord.from_bug(program, checker.config, bug, spec=spec)
        print(replay_trace(trace, program, config=checker.config).explain())
        return 1

    result = checker.check(
        strategy=_make_strategy(args),
        max_bound=args.bound,
        limits=limits,
        workers=args.workers,
        parallel_settings=parallel_settings,
        trace_dir=args.trace_dir,
        trace_spec=spec,
        obs=obs,
        analysis=args.analysis,
        checkpoint=args.checkpoint,
        checkpoint_stride=args.checkpoint_stride,
        cache=cache,
    )
    _finish_obs(args, obs)
    print(result.summary())
    return 1 if result.found_bug else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
