"""Command-line interface: ``python -m repro``.

Checks a built-in benchmark program (or any program importable as
``module:factory``) with a chosen strategy::

    python -m repro list
    python -m repro check bluetooth --bound 2
    python -m repro check wsq:pop-race --stop-on-first-bug
    python -m repro check mypkg.mymod:make_program --strategy dfs
    python -m repro explain wsq:pop-race

``check`` exits non-zero when a bug is found, so the CLI slots into CI
pipelines the way the paper envisions systematic testing replacing
stress testing.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Callable, Dict, Optional

from .chess.checker import ChessChecker
from .core.execution import ExecutionConfig, RaceDetection, SchedulingPolicy
from .core.program import Program
from .search import (
    DepthFirstSearch,
    EnabledThreadsHeuristic,
    IterativeDeepening,
    RandomWalk,
    SearchLimits,
    Strategy,
)


def _builtin_programs() -> Dict[str, Callable[[], Program]]:
    from .programs.ape import VARIANTS as APE_VARIANTS, ape
    from .programs.bluetooth import bluetooth
    from .programs.dryad import VARIANTS as DRYAD_VARIANTS, dryad_channels
    from .programs.filesystem import filesystem
    from .programs.workstealqueue import VARIANTS as WSQ_VARIANTS, work_steal_queue
    from .programs import toy

    registry: Dict[str, Callable[[], Program]] = {
        "bluetooth": lambda: bluetooth(buggy=True),
        "bluetooth:fixed": lambda: bluetooth(buggy=False),
        "filesystem": filesystem,
        "wsq": work_steal_queue,
        "ape": ape,
        "dryad": lambda: dryad_channels(workers=2, data_items=1),
        "toy:racy-counter": toy.racy_counter,
        "toy:atomic-counter": toy.atomic_counter_assert,
        "toy:deadlock": toy.lock_order_deadlock,
        "toy:dekker": toy.dekker,
        "toy:peterson": toy.peterson,
        "toy:uaf": toy.use_after_free_toy,
    }
    for variant in WSQ_VARIANTS:
        registry[f"wsq:{variant}"] = lambda v=variant: work_steal_queue(variant=v)
    for variant in APE_VARIANTS:
        registry[f"ape:{variant}"] = lambda v=variant: ape(variant=v)
    for variant in DRYAD_VARIANTS:
        registry[f"dryad:{variant}"] = lambda v=variant: dryad_channels(
            variant=v, workers=2, data_items=1
        )
    return registry


def _resolve_program(spec: str) -> Program:
    registry = _builtin_programs()
    if spec in registry:
        return registry[spec]()
    if ":" in spec and "." in spec.split(":", 1)[0]:
        module_name, factory_name = spec.split(":", 1)
        module = importlib.import_module(module_name)
        factory = getattr(module, factory_name)
        program = factory()
        if not isinstance(program, Program):
            raise SystemExit(f"{spec} did not produce a repro Program")
        return program
    raise SystemExit(
        f"unknown program {spec!r}; run `python -m repro list` for the "
        "built-ins, or pass `package.module:factory`"
    )


def _make_strategy(args: argparse.Namespace) -> Optional[Strategy]:
    name = args.strategy
    if name == "icb":
        return None  # checker default, honours --bound
    if name == "dfs":
        return DepthFirstSearch(depth_bound=args.depth_bound)
    if name == "idfs":
        return IterativeDeepening()
    if name == "random":
        return RandomWalk(executions=args.executions or 1000, seed=args.seed)
    if name == "most-enabled":
        return EnabledThreadsHeuristic()
    raise SystemExit(f"unknown strategy {name!r}")


def _make_config(args: argparse.Namespace) -> ExecutionConfig:
    return ExecutionConfig(
        policy=SchedulingPolicy(args.policy),
        race_detection=RaceDetection.NONE
        if args.no_race_detection
        else RaceDetection.VECTOR_CLOCK,
    )


def _add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="built-in name or module:factory")
    parser.add_argument("--bound", "--max-bound", dest="bound", type=int, default=None,
                        help="stop ICB after this preemption bound")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the ICB frontier across this many worker "
                        "processes (only with --strategy icb)")
    parser.add_argument("--strategy", default="icb",
                        choices=["icb", "dfs", "idfs", "random", "most-enabled"])
    parser.add_argument("--depth-bound", type=int, default=None,
                        help="depth bound for --strategy dfs")
    parser.add_argument("--executions", type=int, default=None,
                        help="execution budget")
    parser.add_argument("--seconds", type=float, default=None,
                        help="wall-clock budget")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --strategy random")
    parser.add_argument("--stop-on-first-bug", action="store_true")
    parser.add_argument("--policy", default="sync-only",
                        choices=[p.value for p in SchedulingPolicy])
    parser.add_argument("--no-race-detection", action="store_true")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systematic concurrency testing with iterative "
        "context bounding (PLDI 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list built-in benchmark programs")

    check_parser = commands.add_parser("check", help="model-check a program")
    _add_check_arguments(check_parser)

    explain_parser = commands.add_parser(
        "explain", help="find the minimal bug and print its annotated trace"
    )
    _add_check_arguments(explain_parser)

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(_builtin_programs()):
            print(name)
        return 0

    program = _resolve_program(args.program)
    checker = ChessChecker(program, _make_config(args))
    limits = SearchLimits(
        max_executions=args.executions,
        max_seconds=args.seconds,
        stop_on_first_bug=args.stop_on_first_bug or args.command == "explain",
    )

    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.workers is not None and args.strategy != "icb":
        raise SystemExit("--workers requires the default icb strategy")

    if args.command == "explain":
        bug = checker.find_bug(
            max_bound=args.bound, limits=limits, workers=args.workers
        )
        if bug is None:
            print("no bug found")
            return 0
        print(checker.explain(bug))
        return 1

    result = checker.check(
        strategy=_make_strategy(args),
        max_bound=args.bound,
        limits=limits,
        workers=args.workers,
    )
    print(result.summary())
    return 1 if result.found_bug else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
