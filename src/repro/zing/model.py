"""The ZING-style modeling framework.

A :class:`ZingModel` describes a concurrent system as a fixed set of
threads, each a straight-line list of :class:`Instr` instructions over
shared *globals* and per-thread *locals*.  Each instruction is an
atomic guarded action -- the granularity of a ZING ``atomic`` block:

* the **guard** (optional) decides enabledness; a thread whose next
  instruction's guard is false is blocked (a context switch away from
  it is nonpreempting);
* the **action** runs atomically: it reads and writes globals/locals
  through a :class:`ZingCtx` and may jump (``ctx.goto``), terminate the
  thread (``ctx.finish``) or fail an assertion (``ctx.require``).

States are plain nested dicts, frozen and canonicalized (including
heap-symmetry renaming of :class:`~repro.zing.symmetry.Ref` values) by
the checker.

Example -- two threads incrementing under a lock::

    class Counter(ZingModel):
        name = "counter"
        thread_labels = ("a", "b")

        def initial_globals(self):
            return {"lock": None, "n": 0}

        def program(self, index):
            return [
                acquire("lock"),
                atomic(lambda ctx: ctx.g.__setitem__("n", ctx.g["n"] + 1)),
                release("lock"),
            ]
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ProgramAssertionError, ProgramDefinitionError


class ZingCtx:
    """The view an instruction's action gets of the model state.

    ``g`` and ``l`` are mutable dicts (shared globals and the thread's
    locals); mutations become the successor state.  ``me`` is the
    executing thread's index.
    """

    def __init__(self, me: int, g: Dict[str, Any], l: Dict[str, Any]) -> None:
        self.me = me
        self.g = g
        self.l = l
        self.jump: Optional[str] = None
        self.finished = False

    def goto(self, label: str) -> None:
        """Continue at the instruction with the given label."""
        self.jump = label

    def finish(self) -> None:
        """Terminate the executing thread."""
        self.finished = True

    def require(self, condition: Any, message: str = "assertion failed") -> None:
        """Model assertion; a falsy condition is a bug in the model."""
        if not condition:
            raise ProgramAssertionError(message)


@dataclass(frozen=True)
class Instr:
    """One atomic instruction of a thread's program."""

    action: Callable[[ZingCtx], None]
    guard: Optional[Callable[[ZingCtx], bool]] = None
    label: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = self.label or getattr(self.action, "__name__", "action")
        blocking = " guarded" if self.guard else ""
        return f"<Instr {tag}{blocking}>"


def atomic(action: Callable[[ZingCtx], None], label: Optional[str] = None) -> Instr:
    """An always-enabled atomic action."""
    return Instr(action=action, label=label)


def guarded(
    guard: Callable[[ZingCtx], bool],
    action: Callable[[ZingCtx], None],
    label: Optional[str] = None,
) -> Instr:
    """A potentially-blocking atomic action."""
    return Instr(action=action, guard=guard, label=label)


def acquire(lock: str, label: Optional[str] = None) -> Instr:
    """Block until global ``lock`` is free (None), then take it."""

    def guard(ctx: ZingCtx) -> bool:
        return ctx.g[lock] is None

    def action(ctx: ZingCtx) -> None:
        ctx.g[lock] = ctx.me

    return Instr(action=action, guard=guard, label=label)


def release(lock: str, label: Optional[str] = None) -> Instr:
    """Release global ``lock``; asserts the caller holds it."""

    def action(ctx: ZingCtx) -> None:
        ctx.require(ctx.g[lock] == ctx.me, f"release of {lock} not held by releaser")
        ctx.g[lock] = None

    return Instr(action=action, label=label)


class ZingModel(abc.ABC):
    """A closed concurrent system in the modeling language.

    Subclasses define ``name``, ``thread_labels``, the initial globals
    and per-thread programs (and optionally per-thread initial locals).
    """

    name: str = "zing-model"
    thread_labels: Tuple[str, ...] = ()

    @abc.abstractmethod
    def initial_globals(self) -> Dict[str, Any]:
        """The initial shared state."""

    @abc.abstractmethod
    def program(self, index: int) -> Sequence[Instr]:
        """The instruction list of thread ``index``."""

    def initial_locals(self, index: int) -> Dict[str, Any]:
        """The initial locals of thread ``index`` (default empty)."""
        return {}

    # -- compiled form -----------------------------------------------------

    def compile(self) -> "CompiledModel":
        """Resolve labels and validate the model."""
        if not self.thread_labels:
            raise ProgramDefinitionError(f"model {self.name!r} declares no threads")
        programs: List[Tuple[Instr, ...]] = []
        label_maps: List[Dict[str, int]] = []
        for index in range(len(self.thread_labels)):
            instrs = tuple(self.program(index))
            if not instrs:
                raise ProgramDefinitionError(
                    f"thread {self.thread_labels[index]!r} of {self.name!r} "
                    "has an empty program"
                )
            labels: Dict[str, int] = {}
            for pc, instr in enumerate(instrs):
                if instr.label is not None:
                    if instr.label in labels:
                        raise ProgramDefinitionError(
                            f"duplicate label {instr.label!r} in thread "
                            f"{self.thread_labels[index]!r}"
                        )
                    labels[instr.label] = pc
            programs.append(instrs)
            label_maps.append(labels)
        return CompiledModel(self, tuple(programs), tuple(label_maps))


@dataclass(frozen=True)
class CompiledModel:
    """A validated model with label-resolved programs."""

    model: ZingModel
    programs: Tuple[Tuple[Instr, ...], ...]
    label_maps: Tuple[Dict[str, int], ...]

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def thread_labels(self) -> Tuple[str, ...]:
        return self.model.thread_labels

    def resolve(self, index: int, label: str) -> int:
        try:
            return self.label_maps[index][label]
        except KeyError:
            raise ProgramDefinitionError(
                f"goto to unknown label {label!r} in thread "
                f"{self.thread_labels[index]!r}"
            ) from None
