"""Delta-compressed state stacks.

ZING "maintains the stack compactly using state-delta compression":
instead of storing every state on the DFS stack in full, each entry
stores only the differences from the entry below it.  This module
implements that structure for the flattened dict states of the
modeling framework: pushes store *inverse* deltas (how to get back to
the previous top), so pops cost only the size of the diff.  The
compression ratio it achieves on real search stacks is measured by the
ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

Flat = Dict[Tuple[Hashable, ...], Any]

#: Sentinel: the key was absent in the previous state.
_ABSENT = object()


def flatten(value: Any, prefix: Tuple[Hashable, ...] = ()) -> Flat:
    """Flatten nested dicts/sequences into path -> leaf mappings."""
    out: Flat = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            out.update(flatten(sub, prefix + (key,)))
        if not value:
            out[prefix + ("<empty-dict>",)] = True
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            out.update(flatten(sub, prefix + (index,)))
        out[prefix + ("<len>",)] = len(value)
    else:
        out[prefix] = value
    return out


class DeltaStack:
    """A stack of flattened states stored as successive inverse diffs."""

    def __init__(self) -> None:
        #: Inverse deltas: applying ``_deltas[i]`` to the state at
        #: position ``i`` yields the state at position ``i - 1``.
        self._deltas: List[Flat] = []
        self._top: Flat = {}
        #: Total diff entries stored (the compressed footprint).
        self.stored_entries = 0
        #: Total leaf entries a naive full-state stack would store.
        self.naive_entries = 0

    def __len__(self) -> int:
        return len(self._deltas)

    def push(self, flat: Flat) -> None:
        """Push a flattened state, storing only its diff from the top."""
        inverse: Flat = {}
        for path, value in flat.items():
            previous = self._top.get(path, _ABSENT)
            if previous is _ABSENT:
                inverse[path] = _ABSENT
            elif previous != value:
                inverse[path] = previous
        for path, previous in self._top.items():
            if path not in flat:
                inverse[path] = previous
        self._deltas.append(inverse)
        self._top = dict(flat)
        self.stored_entries += len(inverse)
        self.naive_entries += len(flat)

    def pop(self) -> Flat:
        """Pop and return the top state, in full."""
        if not self._deltas:
            raise IndexError("pop from empty DeltaStack")
        top = dict(self._top)
        inverse = self._deltas.pop()
        for path, previous in inverse.items():
            if previous is _ABSENT:
                self._top.pop(path, None)
            else:
                self._top[path] = previous
        return top

    def peek(self) -> Flat:
        """The top state, in full."""
        if not self._deltas:
            raise IndexError("peek of empty DeltaStack")
        return dict(self._top)

    def reconstruct(self, index: int) -> Flat:
        """The state at stack position ``index`` (0 = bottom), in full.

        Costs the sum of the diff sizes above ``index``; the common
        cases (top, near-top) are cheap.
        """
        if not 0 <= index < len(self._deltas):
            raise IndexError(f"no state at index {index}")
        state = dict(self._top)
        for inverse in reversed(self._deltas[index + 1 :]):
            for path, previous in inverse.items():
                if previous is _ABSENT:
                    state.pop(path, None)
                else:
                    state[path] = previous
        return state

    @property
    def compression_ratio(self) -> float:
        """Stored diff entries / naive full-state entries."""
        if self.naive_entries == 0:
            return 1.0
        return self.stored_entries / self.naive_entries
