"""Heap-symmetry reduction: canonical freezing of model states.

ZING "performs state-space reduction by exploiting heap-symmetry": two
states that differ only in the identities of heap objects are the same
state.  Models represent heap identities with :class:`Ref` values;
:func:`canonicalize` freezes a nested state and renumbers every ``Ref``
by first encounter along a deterministic traversal, so any bijective
renaming of references yields the identical canonical state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable

from ..errors import ProgramDefinitionError


@dataclass(frozen=True)
class Ref:
    """A symbolic heap reference (identity, not value).

    Allocate fresh ones with increasing ids (e.g. from a model-global
    counter); symmetry reduction erases the concrete ids.
    """

    id: int

    def __repr__(self) -> str:
        return f"Ref({self.id})"


@dataclass(frozen=True)
class _CanonRef:
    """A reference renumbered to its canonical (traversal-order) id."""

    id: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ref#{self.id}"


def canonicalize(value: Any, _renaming: Dict[int, int] | None = None) -> Hashable:
    """Freeze ``value`` into a hashable canonical form.

    Dicts become key-sorted tuples, lists/tuples become tuples, sets
    become sorted tuples, and :class:`Ref` values are renumbered in
    first-encounter order.  Keys must not themselves be references (the
    traversal must be orderable before renaming); store ref-keyed maps
    as sorted association lists or key them by stable data instead.
    """
    if _renaming is None:
        _renaming = {}
    return _freeze(value, _renaming)


def _freeze(value: Any, renaming: Dict[int, int]) -> Hashable:
    if isinstance(value, Ref):
        canonical = renaming.get(value.id)
        if canonical is None:
            canonical = len(renaming)
            renaming[value.id] = canonical
        return _CanonRef(canonical)
    if isinstance(value, dict):
        items = []
        for key in sorted(value, key=_key_order):
            if isinstance(key, Ref):
                raise ProgramDefinitionError(
                    "dict keys must not be Refs (order would depend on "
                    "concrete ids); use an association list"
                )
            items.append((key, _freeze(value[key], renaming)))
        return ("dict", tuple(items))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze(v, renaming) for v in value))
    if isinstance(value, (set, frozenset)):
        frozen = [_freeze(v, renaming) for v in value]
        try:
            frozen.sort(key=repr)
        except TypeError:  # pragma: no cover - repr sort cannot fail
            pass
        return ("set", tuple(frozen))
    if isinstance(value, (int, float, str, bool, bytes)) or value is None:
        return value
    raise ProgramDefinitionError(
        f"model state contains unfreezable value {value!r} "
        f"({type(value).__name__}); use ints, strings, tuples, lists, "
        "dicts, sets and Refs"
    )


def _key_order(key: Any) -> tuple:
    return (type(key).__name__, repr(key))
