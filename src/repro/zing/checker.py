"""The explicit-state checker over ZING models.

:class:`ZingStateSpace` realizes the uniform
:class:`~repro.core.transition.StateSpace` interface with *explicit*
states: every node carries a full (canonicalized) snapshot, so ICB and
all baseline strategies run on models exactly as they do on native
programs -- with state caching available, the configuration the paper
used for the transaction-manager benchmark.

:class:`ZingChecker` adds the classic ZING search loop: depth-first
search with a state cache and a delta-compressed stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Set, Tuple

from ..core.thread import ThreadId

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..obs.instrument import Instrumentation
from ..core.transition import StateSpace
from ..errors import BugKind, BugReport, ProgramAssertionError
from ..search.icb import IterativeContextBounding
from ..search.strategy import SearchLimits, SearchResult, Strategy
from .delta import DeltaStack, flatten
from .model import CompiledModel, ZingCtx, ZingModel
from .symmetry import canonicalize


def _copy_value(value: Any) -> Any:
    """Deep-copy the mutable containers of a model state."""
    if isinstance(value, dict):
        return {key: _copy_value(sub) for key, sub in value.items()}
    if isinstance(value, list):
        return [_copy_value(sub) for sub in value]
    if isinstance(value, set):
        return {_copy_value(sub) for sub in value}
    if isinstance(value, tuple):
        return tuple(_copy_value(sub) for sub in value)
    return value


@dataclass(frozen=True)
class _ThreadRaw:
    """Mutable-state carrier for one model thread (copied per step)."""

    pc: int
    locals: Dict[str, Any]
    finished: bool


@dataclass(frozen=True)
class ZingNode:
    """One node of the explicit-state search.

    ``frozen`` is the canonical state used for fingerprints and
    caching; ``preemptions``, ``schedule`` and ``bugs`` are path
    properties and deliberately excluded from it.
    """

    frozen: Hashable
    globals_raw: Dict[str, Any]
    threads_raw: Tuple[_ThreadRaw, ...]
    last: Optional[ThreadId]
    preemptions: int
    steps: int
    blocking_steps: int
    bugs: Tuple[BugReport, ...]
    schedule: Tuple[ThreadId, ...]


class ZingStateSpace(StateSpace):
    """Explicit-state view of a compiled ZING model."""

    def __init__(
        self,
        model: ZingModel | CompiledModel,
        obs: Optional["Instrumentation"] = None,
    ) -> None:
        self.compiled = model if isinstance(model, CompiledModel) else model.compile()
        self.obs = obs
        self.tids = tuple(
            ThreadId((i,), label)
            for i, label in enumerate(self.compiled.thread_labels)
        )

    # -- node construction --------------------------------------------------

    def _freeze(
        self, globals_raw: Dict[str, Any], threads_raw: Tuple[_ThreadRaw, ...]
    ) -> Hashable:
        state = {
            "g": globals_raw,
            "t": [
                {"pc": t.pc, "l": t.locals, "done": t.finished}
                for t in threads_raw
            ],
        }
        return canonicalize(state)

    def initial_state(self) -> ZingNode:
        model = self.compiled.model
        globals_raw = _copy_value(model.initial_globals())
        threads_raw = tuple(
            _ThreadRaw(pc=0, locals=_copy_value(model.initial_locals(i)), finished=False)
            for i in range(len(self.tids))
        )
        return ZingNode(
            frozen=self._freeze(globals_raw, threads_raw),
            globals_raw=globals_raw,
            threads_raw=threads_raw,
            last=None,
            preemptions=0,
            steps=0,
            blocking_steps=0,
            bugs=(),
            schedule=(),
        )

    # -- StateSpace interface ---------------------------------------------------

    def enabled(self, state: object) -> Tuple[ThreadId, ...]:
        obs = self.obs
        if obs is None:
            return self._enabled(state)
        t0 = obs.hook_schedule.start()
        result = self._enabled(state)
        obs.hook_schedule.stop(t0)
        return result

    def _enabled(self, state: object) -> Tuple[ThreadId, ...]:
        node = self._node(state)
        if node.bugs:
            return ()
        enabled: List[ThreadId] = []
        for index, tid in enumerate(self.tids):
            if self._thread_enabled(node, index):
                enabled.append(tid)
        return tuple(enabled)

    def _thread_enabled(self, node: ZingNode, index: int) -> bool:
        thread = node.threads_raw[index]
        if thread.finished:
            return False
        program = self.compiled.programs[index]
        if thread.pc >= len(program):
            return False
        instr = program[thread.pc]
        if instr.guard is None:
            return True
        # Guards must be pure: they read the state through the same ctx
        # view as actions but must not mutate it.
        ctx = ZingCtx(index, node.globals_raw, thread.locals)
        return bool(instr.guard(ctx))

    def execute(self, state: object, tid: ThreadId) -> ZingNode:
        obs = self.obs
        if obs is None:
            return self._execute(state, tid)
        t0 = obs.hook_execute.start()
        result = self._execute(state, tid)
        obs.hook_execute.stop(t0)
        return result

    def _execute(self, state: object, tid: ThreadId) -> ZingNode:
        node = self._node(state)
        index = tid.path[0]
        enabled = self._enabled(node)
        preempting = (
            node.last is not None and tid != node.last and node.last in enabled
        )
        preemptions = node.preemptions + (1 if preempting else 0)
        schedule = node.schedule + (tid,)

        globals_raw = _copy_value(node.globals_raw)
        threads_raw = list(node.threads_raw)
        thread = threads_raw[index]
        locals_raw = _copy_value(thread.locals)
        program = self.compiled.programs[index]
        instr = program[thread.pc]

        ctx = ZingCtx(index, globals_raw, locals_raw)
        bugs = node.bugs
        try:
            instr.action(ctx)
        except ProgramAssertionError as exc:
            bugs = bugs + (
                BugReport(
                    kind=BugKind.ASSERTION,
                    message=exc.message,
                    thread=tid,
                    schedule=schedule,
                    preemptions=preemptions,
                    step_index=node.steps,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - model fault
            bugs = bugs + (
                BugReport(
                    kind=BugKind.UNCAUGHT_EXCEPTION,
                    message=f"{type(exc).__name__}: {exc}",
                    thread=tid,
                    schedule=schedule,
                    preemptions=preemptions,
                    step_index=node.steps,
                ),
            )

        if ctx.finished:
            next_pc, finished = thread.pc, True
        elif ctx.jump is not None:
            next_pc, finished = self.compiled.resolve(index, ctx.jump), False
        else:
            next_pc = thread.pc + 1
            finished = next_pc >= len(program)
        threads_raw[index] = _ThreadRaw(pc=next_pc, locals=locals_raw, finished=finished)
        threads_tuple = tuple(threads_raw)

        return ZingNode(
            frozen=self._freeze(globals_raw, threads_tuple),
            globals_raw=globals_raw,
            threads_raw=threads_tuple,
            last=tid,
            preemptions=preemptions,
            steps=node.steps + 1,
            blocking_steps=node.blocking_steps + (1 if instr.guard is not None else 0),
            bugs=bugs,
            schedule=schedule,
        )

    def last_thread(self, state: object) -> Optional[ThreadId]:
        return self._node(state).last

    def preemptions(self, state: object) -> int:
        return self._node(state).preemptions

    def fingerprint(self, state: object) -> Hashable:
        obs = self.obs
        if obs is None:
            return hash(self._node(state).frozen)
        t0 = obs.hook_fingerprint.start()
        result = hash(self._node(state).frozen)
        obs.hook_fingerprint.stop(t0)
        return result

    def is_terminal(self, state: object) -> bool:
        node = self._node(state)
        return bool(node.bugs) or not self._enabled(node)

    def bugs(self, state: object) -> Tuple[BugReport, ...]:
        node = self._node(state)
        if node.bugs:
            return node.bugs
        if not self._enabled(node):
            stuck = [
                str(self.tids[i])
                for i, t in enumerate(node.threads_raw)
                if not t.finished
            ]
            if stuck:
                return (
                    BugReport(
                        kind=BugKind.DEADLOCK,
                        message=f"deadlock: threads blocked forever: {', '.join(stuck)}",
                        schedule=node.schedule,
                        preemptions=node.preemptions,
                        step_index=node.steps,
                    ),
                )
        return ()

    def schedule_of(self, state: object) -> Tuple[ThreadId, ...]:
        return self._node(state).schedule

    def execution_stats(self, state: object) -> Tuple[int, int, int]:
        """(steps K, blocking steps B, preemptions c) of the path."""
        node = self._node(state)
        return node.steps, node.blocking_steps, node.preemptions

    def thread_count(self, state: object) -> int:
        return len(self.tids)

    @staticmethod
    def _node(state: object) -> ZingNode:
        assert isinstance(state, ZingNode)
        return state


def _node_state_dict(node: ZingNode) -> Dict[str, Any]:
    """The raw nested-dict state of a node (for stack flattening)."""
    return {
        "g": node.globals_raw,
        "t": [
            {"pc": t.pc, "l": t.locals, "done": t.finished}
            for t in node.threads_raw
        ],
    }


class ZingChecker:
    """Model checking of ZING models, defaulting to ICB with caching."""

    def __init__(self, model: ZingModel | CompiledModel) -> None:
        self.compiled = model if isinstance(model, CompiledModel) else model.compile()

    def space(self, obs: Optional["Instrumentation"] = None) -> ZingStateSpace:
        """A fresh explicit-state space for this model."""
        return ZingStateSpace(self.compiled, obs=obs)

    def check(
        self,
        strategy: Optional[Strategy] = None,
        max_bound: Optional[int] = None,
        limits: Optional[SearchLimits] = None,
        state_caching: bool = True,
        obs: Optional["Instrumentation"] = None,
    ) -> SearchResult:
        """Explore the model; ICB with state caching by default."""
        if strategy is None:
            strategy = IterativeContextBounding(
                max_bound=max_bound, state_caching=state_caching
            )
        elif max_bound is not None:
            raise ValueError("pass max_bound only when using the default strategy")
        return strategy.run(self.space(obs=obs), limits=limits, obs=obs)

    def find_bug(
        self, max_bound: Optional[int] = None, limits: Optional[SearchLimits] = None
    ) -> Optional[BugReport]:
        """ICB until the first (minimal-preemption) bug."""
        base = limits or SearchLimits()
        limits = SearchLimits(
            max_executions=base.max_executions,
            max_transitions=base.max_transitions,
            max_seconds=base.max_seconds,
            stop_on_first_bug=True,
        )
        result = self.check(max_bound=max_bound, limits=limits)
        return result.first_bug

    def dfs_with_delta_stack(
        self, max_states: Optional[int] = None
    ) -> Dict[str, Any]:
        """Classic ZING search: DFS + state cache + delta-packed stack.

        Returns statistics including the stack compression ratio, the
        quantity the delta-compression ablation benchmark reports.
        """
        space = self.space()
        visited: Set[Hashable] = set()
        stack_states = DeltaStack()
        max_stack_depth = 0

        root = space.initial_state()
        visited.add(space.fingerprint(root))
        bugs: List[BugReport] = []
        #: frames: (node, remaining thread choices)
        frames: List[Tuple[ZingNode, List[ThreadId]]] = [
            (root, list(space.enabled(root)))
        ]
        stack_states.push(flatten(_node_state_dict(root)))
        while frames:
            max_stack_depth = max(max_stack_depth, len(frames))
            node, choices = frames[-1]
            if not choices:
                frames.pop()
                stack_states.pop()
                continue
            tid = choices.pop(0)
            successor = space.execute(node, tid)
            bugs.extend(space.bugs(successor))
            fingerprint = space.fingerprint(successor)
            if fingerprint in visited:
                continue
            visited.add(fingerprint)
            if max_states is not None and len(visited) >= max_states:
                break
            if not space.is_terminal(successor):
                frames.append((successor, list(space.enabled(successor))))
                stack_states.push(flatten(_node_state_dict(successor)))
        return {
            "visited_states": len(visited),
            "bugs": bugs,
            "max_stack_depth": max_stack_depth,
            "stack_compression_ratio": stack_states.compression_ratio,
        }
