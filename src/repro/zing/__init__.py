"""The ZING-style explicit-state model checker.

ZING, the second model checker the paper implements ICB in, verifies
*models* of concurrent software: explicit-state transition systems
explored depth-first with state caching, heap-symmetry reduction and
delta-compressed search stacks.  This package provides:

* :mod:`repro.zing.model` -- a small modeling framework: threads are
  straight-line instruction lists over shared globals, each
  instruction an atomic guarded action (the granularity of a ZING
  ``atomic`` block);
* :mod:`repro.zing.symmetry` -- canonicalization of states containing
  symbolic heap references (heap-symmetry reduction);
* :mod:`repro.zing.delta` -- delta-compressed state stacks (ZING
  "maintains the stack compactly using state-delta compression");
* :mod:`repro.zing.checker` -- the explicit-state realization of the
  :class:`~repro.core.transition.StateSpace` interface, so ICB and
  every baseline strategy run on ZING models unchanged, plus a
  classic DFS-with-caching checker.
"""

from .checker import ZingChecker, ZingStateSpace
from .delta import DeltaStack
from .model import Instr, ZingCtx, ZingModel, acquire, atomic, guarded, release
from .symmetry import Ref, canonicalize

__all__ = [
    "DeltaStack",
    "Instr",
    "Ref",
    "ZingChecker",
    "ZingCtx",
    "ZingModel",
    "ZingStateSpace",
    "acquire",
    "atomic",
    "canonicalize",
    "guarded",
    "release",
]
