"""The durable checking service (see ``docs/service.md``).

Three layers turn the checker into infrastructure you can kill,
restart and resubmit to without losing or repeating work:

* :mod:`repro.service.checkpoint` -- versioned on-disk snapshots of a
  live ICB search.  Both engines (serial
  :class:`~repro.search.icb.IterativeContextBounding` and the
  :class:`~repro.parallel.coordinator.ParallelCoordinator`) journal
  their frontier and resume from it; an interrupted-then-resumed run
  reports exactly what an uninterrupted one would.
* :mod:`repro.service.cache` -- a content-addressed store of completed
  results, plus a witness-trace fast path for bug-finding checks.
* :mod:`repro.service.jobs` / :mod:`repro.service.daemon` -- a
  crash-safe JSONL job queue and the ``repro serve`` loop dispatching
  it, with submissions deduplicated and died-mid-run jobs requeued.
"""

from .cache import (
    RESULT_CACHE_FORMAT,
    RESULT_CACHE_SUFFIX,
    RESULT_CACHE_VERSION,
    ResultCache,
    ResultCacheError,
    result_cache_key,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SUFFIX,
    CHECKPOINT_VERSION,
    DEFAULT_STRIDE,
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    Checkpointer,
    search_fingerprint,
)
from .daemon import CheckingService, resolve_spec
from .jobs import Job, JobQueue, JobQueueError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SUFFIX",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointMismatch",
    "Checkpointer",
    "CheckingService",
    "DEFAULT_STRIDE",
    "Job",
    "JobQueue",
    "JobQueueError",
    "RESULT_CACHE_FORMAT",
    "RESULT_CACHE_SUFFIX",
    "RESULT_CACHE_VERSION",
    "ResultCache",
    "ResultCacheError",
    "result_cache_key",
    "resolve_spec",
    "search_fingerprint",
]
