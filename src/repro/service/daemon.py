"""The checking service daemon: ``repro serve``.

One directory is the whole service::

    <root>/
      jobs.jsonl        the durable job queue (repro.service.jobs)
      checkpoints/      one live checkpoint per job (repro.service.checkpoint)
      cache/            content-addressed results (repro.service.cache)
      results/          one JSON report per finished job
      traces/           witness-trace corpus shared by every job

The daemon folds the journal, requeues whatever a previous daemon left
running (:meth:`~repro.service.jobs.JobQueue.recover`), then loops:
claim the best queued job, resolve its program spec, and run
:meth:`~repro.chess.checker.ChessChecker.check` with the job's knobs
plus the service's durability plumbing -- a per-job checkpoint file,
the shared result cache, and the shared trace corpus.  Killing the
daemon (or its worker processes) at any point therefore loses no
work: on restart the job is requeued by the journal and its search
resumes from the checkpoint; a resubmission of finished work is
served from the cache without exploring anything.

A failed job is requeued until it exhausts ``max_attempts``; the
failure log accumulates in the journal (``repro status`` shows the
latest error).
"""

from __future__ import annotations

import importlib
import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Union

from ..chess.checker import ChessChecker, CheckResult
from ..core.program import Program
from ..errors import ReproError
from ..obs.instrument import Instrumentation
from ..search.strategy import SearchLimits
from ..trace.corpus import TraceCorpus
from .cache import ResultCache
from .checkpoint import CHECKPOINT_SUFFIX, Checkpointer
from .jobs import Job, JobQueue

RESULT_SUFFIX = ".json"


def resolve_spec(spec: str) -> Program:
    """Build a program from a job spec (builtin or ``module:factory``)."""
    from ..programs import resolve_builtin

    program = resolve_builtin(spec)
    if program is not None:
        return program
    if ":" in spec and "." in spec.split(":", 1)[0]:
        module_name, factory_name = spec.split(":", 1)
        try:
            module = importlib.import_module(module_name)
            program = getattr(module, factory_name)()
        except Exception as exc:
            raise ReproError(f"cannot resolve spec {spec!r}: {exc}") from exc
        if isinstance(program, Program):
            return program
        raise ReproError(f"spec {spec!r} did not produce a Program")
    raise ReproError(f"unknown program spec {spec!r}")


class CheckingService:
    """Dispatches queued jobs to the checker (see module docstring)."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        max_attempts: int = 3,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.queue = JobQueue(self.root)
        self.results_dir = self.root / "results"
        self.checkpoints_dir = self.root / "checkpoints"
        self.traces_dir = self.root / "traces"
        self.max_attempts = max(1, max_attempts)
        self.obs = obs
        self.cache = ResultCache(
            self.root / "cache", corpus=TraceCorpus(self.traces_dir), obs=obs
        )

    # -- paths ---------------------------------------------------------------

    def checkpoint_path(self, job: Job) -> pathlib.Path:
        return self.checkpoints_dir / f"{job.id}{CHECKPOINT_SUFFIX}"

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.results_dir / f"{job_id}{RESULT_SUFFIX}"

    def load_result(self, job_id: str) -> Dict[str, Any]:
        path = self.result_path(job_id)
        try:
            return json.loads(path.read_text())
        except OSError as exc:
            raise ReproError(f"no result for {job_id}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"result for {job_id} is corrupt: {exc}") from exc

    # -- serving -------------------------------------------------------------

    def serve(
        self,
        once: bool = False,
        poll_interval: float = 0.2,
        max_jobs: Optional[int] = None,
    ) -> int:
        """Process queued jobs; returns how many were handled.

        ``once`` drains the queue and returns instead of idling for
        new submissions -- the mode CI and the tests use.
        """
        self.queue.recover()
        handled = 0
        while True:
            if max_jobs is not None and handled >= max_jobs:
                return handled
            job = self.queue.claim()
            if job is None:
                if once:
                    return handled
                time.sleep(poll_interval)
                continue
            self._handle(job)
            handled += 1

    def _handle(self, job: Job) -> None:
        try:
            result = self.run_job(job)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self.queue.fail(
                job.id, str(exc), requeue=job.attempts < self.max_attempts
            )
            return
        path = self.write_result(job, result)
        cache_hit = bool(result.search.extras.get("cache_hit"))
        self.queue.complete(job.id, result_path=str(path), cache_hit=cache_hit)
        # The search is decided; its checkpoint has nothing to resume.
        self.clear_checkpoint(job)

    def clear_checkpoint(self, job: Job) -> None:
        Checkpointer(self.checkpoint_path(job), {}).clear()

    def run_job(self, job: Job) -> CheckResult:
        program = resolve_spec(job.spec)
        limits = SearchLimits(
            max_executions=job.max_executions,
            max_transitions=job.max_transitions,
            stop_on_first_bug=job.stop_on_first_bug,
        )
        return ChessChecker(program).check(
            max_bound=job.max_bound,
            limits=limits,
            state_caching=job.state_caching,
            workers=job.workers,
            trace_dir=self.traces_dir,
            trace_spec=job.spec,
            obs=self.obs,
            checkpoint=self.checkpoint_path(job),
            cache=self.cache,
        )

    def write_result(self, job: Job, result: CheckResult) -> pathlib.Path:
        search = result.search
        bugs: List[Dict[str, Any]] = [
            {
                "kind": bug.kind.value,
                "message": bug.message,
                "preemptions": bug.preemptions,
                "schedule_length": len(bug.schedule),
            }
            for bug in search.bugs
        ]
        payload = {
            "format": "repro-service-result",
            "version": 1,
            "job": job.id,
            "spec": job.spec,
            "program": result.program,
            "completed": search.completed,
            "stop_reason": search.stop_reason,
            "certified_bound": result.certified_bound,
            "executions": result.executions,
            "transitions": result.transitions,
            "distinct_states": result.distinct_states,
            "found_bug": result.found_bug,
            "bugs": bugs,
            "cache_hit": bool(search.extras.get("cache_hit")),
            "corpus_fastpath": bool(search.extras.get("corpus_fastpath")),
            "resumed": bool(search.extras.get("resumed")),
        }
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(job.id)
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path
