"""Content-addressed cache of completed checking results (format v1).

A systematic-testing service re-checks the same programs over and
over: every CI run resubmits the whole suite, most of which did not
change.  This module makes the second check of an unchanged program
free.

**Keying.**  A cache entry is addressed by the SHA-256 of everything
that determines a check's outcome: the program fingerprint (name plus
thread-structure hash), the replay-relevant ``ExecutionConfig`` knobs,
the outcome-relevant budget knobs (``max_executions``,
``max_transitions``, ``stop_on_first_bug``) and the strategy shape
(``max_bound``, state caching, analysis reduction).  ``workers`` is
deliberately *excluded*: serial and parallel runs report identical
results, so they share entries.  ``max_seconds`` is excluded too, but
differently: a wall-clock budget makes the outcome machine-dependent,
so such runs are never cached at all (:meth:`ResultCache.cacheable`).

**Storing.**  Only *authoritative* results are stored: runs that
exhausted their space (or reached their configured ``max_bound``), or
``stop_on_first_bug`` runs that found their bug.  A run cut short by
an execution budget is reproducible and therefore also storable; one
cut short by wall clock is not.

**Serving.**  A hit rebuilds a :class:`~repro.chess.checker.CheckResult`
without constructing a state space or executing a single transition.
Distinct states are restored as synthetic ``("cached", bound, i)``
fingerprints carrying the per-bound histogram -- counts, certificates
and bug reports are exact; only the raw fingerprint values (which are
``PYTHONHASHSEED``-dependent anyway) are gone.  Served results carry
``extras["cache_hit"] = True`` and ``extras["served_from"]``.

**Corpus fast path.**  Independently of exact-key hits, a cache built
with a :class:`~repro.trace.corpus.TraceCorpus` can answer
``stop_on_first_bug`` checks by replaying stored witness traces for
the same program: a reproduced trace *is* the answer the search would
eventually produce, at the cost of one schedule replay instead of an
exploration (``extras["corpus_fastpath"] = True``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from ..core.execution import ExecutionConfig
from ..core.program import Program
from ..errors import ReproError
from ..obs.instrument import Instrumentation
from ..search.strategy import SearchContext, SearchLimits, SearchResult
from ..trace.format import ProgramFingerprint, config_to_json
from .checkpoint import (
    CheckpointError,
    _bug_from_json,
    _bug_to_json,
    _require,
    _sanitize_detail,
    _ThreadTable,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..chess.checker import CheckResult
    from ..trace.corpus import TraceCorpus

RESULT_CACHE_FORMAT = "repro-result-cache"
RESULT_CACHE_VERSION = 1
RESULT_CACHE_SUFFIX = ".result.json"


class ResultCacheError(ReproError):
    """A cache entry violates the schema (or cannot be written)."""


def result_cache_key(
    program: Program,
    config: Optional[ExecutionConfig] = None,
    limits: Optional[SearchLimits] = None,
    max_bound: Optional[int] = None,
    state_caching: bool = False,
    analysis: bool = False,
) -> str:
    """The content address of one check's outcome (see module docstring)."""
    fp = ProgramFingerprint.of(program)
    limits = limits or SearchLimits()
    payload = {
        "program": {"name": fp.name, "structure": fp.structure},
        "config": config_to_json(config or ExecutionConfig()),
        "limits": {
            "max_executions": limits.max_executions,
            "max_transitions": limits.max_transitions,
            "stop_on_first_bug": limits.stop_on_first_bug,
        },
        "strategy": {
            "name": "icb",
            "max_bound": max_bound,
            "state_caching": state_caching,
            "analysis": analysis,
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest


def _extras_to_json(extras: Dict[str, Any]) -> List[List[Any]]:
    return [[key, _sanitize_detail(value)] for key, value in sorted(extras.items())]


def _extras_from_json(data: Any, where: str) -> Dict[str, Any]:
    if not isinstance(data, list):
        raise ResultCacheError(f"{where}: extras must be a list of pairs")
    extras: Dict[str, Any] = {}
    for i, pair in enumerate(data):
        if not isinstance(pair, list) or len(pair) != 2 or not isinstance(pair[0], str):
            raise ResultCacheError(f"{where}[{i}]: must be a [key, value] pair")
        extras[pair[0]] = pair[1]
    return extras


class ResultCache:
    """A directory of completed :class:`CheckResult` s, by content key.

    Args:
        root: directory holding ``<key>.result.json`` entries.
        corpus: optional witness-trace corpus enabling the
            ``stop_on_first_bug`` fast path (see module docstring).
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        corpus: Optional["TraceCorpus"] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.corpus = corpus
        self.obs = obs

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}{RESULT_CACHE_SUFFIX}"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1 for p in self.root.iterdir() if p.name.endswith(RESULT_CACHE_SUFFIX)
        )

    # -- policy --------------------------------------------------------------

    @staticmethod
    def cacheable(limits: Optional[SearchLimits]) -> bool:
        """Whether a check with these budgets may use the cache at all.

        Wall-clock budgets make the outcome a function of machine
        speed; such runs neither consult nor populate the cache.
        """
        return limits is None or limits.max_seconds is None

    @staticmethod
    def storable(result: "CheckResult") -> bool:
        """Whether ``result`` is authoritative enough to store.

        Completed searches are; so are ``stop_on_first_bug`` searches
        that found their bug (their early stop is the *defined*
        outcome, not an accident of scheduling).
        """
        search = result.search
        if search.completed:
            return True
        return bool(
            search.context.limits.stop_on_first_bug and search.context.bugs
        )

    # -- storing -------------------------------------------------------------

    def store(self, key: str, result: "CheckResult") -> Optional[pathlib.Path]:
        """Persist ``result`` under ``key`` if it is storable."""
        if not self.storable(result):
            return None
        search = result.search
        ctx = search.context
        table = _ThreadTable()
        bugs = [_bug_to_json(bug, table) for bug in ctx.bugs.values()]
        by_bound: Dict[int, int] = {}
        for bound in ctx.states.values():
            by_bound[bound] = by_bound.get(bound, 0) + 1
        payload = {
            "format": RESULT_CACHE_FORMAT,
            "version": RESULT_CACHE_VERSION,
            "key": key,
            "program": result.program,
            "strategy": search.strategy,
            "completed": search.completed,
            "stop_reason": search.stop_reason,
            "certified_bound": result.certified_bound,
            "stop_on_first_bug": ctx.limits.stop_on_first_bug,
            "threads": table.to_json(),
            "extras": _extras_to_json(search.extras),
            "context": {
                "executions": ctx.executions,
                "transitions": ctx.transitions,
                "analysis_pruned": ctx.analysis_pruned,
                "max_steps": ctx.max_steps,
                "max_blocking": ctx.max_blocking,
                "max_preemptions": ctx.max_preemptions,
                "states_by_bound": [
                    [bound, count] for bound, count in sorted(by_bound.items())
                ],
                "bugs": bugs,
                "history": [[e, s] for e, s in ctx.history],
            },
        }
        target = self.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
            os.replace(tmp, target)
        except OSError as exc:
            raise ResultCacheError(f"cannot write cache entry {target}: {exc}") from exc
        return target

    # -- serving -------------------------------------------------------------

    def lookup(self, key: str) -> Optional["CheckResult"]:
        """Rebuild the cached result for ``key``, or ``None`` on miss."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultCacheError(f"cannot read cache entry {path}: {exc}") from exc
        result = self._decode(data, key)
        if self.obs is not None:
            self.obs.cache_served(key, result.program)
        return result

    def _decode(self, data: Any, key: str) -> "CheckResult":
        from ..chess.checker import CheckResult

        where = "cache entry"
        if not isinstance(data, dict):
            raise ResultCacheError(f"{where}: must be a JSON object")
        try:
            fmt = _require(data, "format", str, where)
            if fmt != RESULT_CACHE_FORMAT:
                raise ResultCacheError(
                    f"not a {RESULT_CACHE_FORMAT} file (format={fmt!r})"
                )
            version = _require(data, "version", int, where)
            if version != RESULT_CACHE_VERSION:
                raise ResultCacheError(
                    f"unsupported cache version {version} "
                    f"(this build reads {RESULT_CACHE_VERSION})"
                )
            threads = _ThreadTable.decode(
                _require(data, "threads", list, where), "threads"
            )
            context = _require(data, "context", dict, where)
            stop_on_first = bool(data.get("stop_on_first_bug"))
            ctx = SearchContext(SearchLimits(stop_on_first_bug=stop_on_first))
            ctx.executions = _require(context, "executions", int, "context")
            ctx.transitions = _require(context, "transitions", int, "context")
            ctx.analysis_pruned = _require(context, "analysis_pruned", int, "context")
            ctx.max_steps = _require(context, "max_steps", int, "context")
            ctx.max_blocking = _require(context, "max_blocking", int, "context")
            ctx.max_preemptions = _require(context, "max_preemptions", int, "context")
            states: Dict[Any, int] = {}
            for i, pair in enumerate(
                _require(context, "states_by_bound", list, "context")
            ):
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not all(
                        isinstance(v, int) and not isinstance(v, bool) for v in pair
                    )
                ):
                    raise ResultCacheError(
                        f"context.states_by_bound[{i}] must be a "
                        "[bound, count] int pair"
                    )
                bound, count = pair
                for j in range(count):
                    # Synthetic fingerprints: the histogram is exact,
                    # the raw hash values are not worth persisting.
                    states[("cached", bound, j)] = bound
            ctx.states = states
            for i, entry in enumerate(_require(context, "bugs", list, "context")):
                bug = _bug_from_json(entry, threads, f"context.bugs[{i}]")
                ctx.bugs[bug.signature] = bug
            history: List[Tuple[int, int]] = []
            for i, pair in enumerate(_require(context, "history", list, "context")):
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not all(
                        isinstance(v, int) and not isinstance(v, bool) for v in pair
                    )
                ):
                    raise ResultCacheError(
                        f"context.history[{i}] must be an [executions, states] pair"
                    )
                history.append((pair[0], pair[1]))
            ctx.history = history
            extras = _extras_from_json(_require(data, "extras", list, where), "extras")
            extras["cache_hit"] = True
            extras["served_from"] = key
            certified = data.get("certified_bound")
            if certified is not None and (
                not isinstance(certified, int) or isinstance(certified, bool)
            ):
                raise ResultCacheError("certified_bound must be an integer or null")
            search = SearchResult(
                strategy=_require(data, "strategy", str, where),
                completed=_require(data, "completed", bool, where),
                stop_reason=_require(data, "stop_reason", str, where),
                context=ctx,
                extras=extras,
            )
            return CheckResult(
                program=_require(data, "program", str, where),
                search=search,
                certified_bound=certified,
            )
        except CheckpointError as exc:
            # The shared decoding helpers raise their own error type.
            raise ResultCacheError(str(exc)) from exc

    # -- corpus fast path ----------------------------------------------------

    def corpus_fastpath(
        self,
        program: Program,
        config: Optional[ExecutionConfig] = None,
    ) -> Optional["CheckResult"]:
        """Answer a ``stop_on_first_bug`` check by replaying a stored
        witness trace of the same program, if one reproduces."""
        if self.corpus is None:
            return None
        from ..chess.checker import CheckResult
        from ..trace.replay import replay_trace

        for path, trace in self.corpus.matching(program):
            report = replay_trace(trace, program, config=config)
            if not report.reproduced or report.bug is None:
                continue
            bug = report.bug
            ctx = SearchContext(SearchLimits(stop_on_first_bug=True))
            ctx.executions = 1
            ctx.transitions = report.steps_replayed
            ctx.bugs[bug.signature] = bug
            result = CheckResult(
                program=program.name,
                search=SearchResult(
                    strategy="corpus-fastpath",
                    completed=False,
                    stop_reason="stopping at first bug",
                    context=ctx,
                    extras={
                        "corpus_fastpath": True,
                        "trace": path.name,
                    },
                ),
                certified_bound=None,
            )
            if self.obs is not None:
                self.obs.cache_served(f"corpus:{path.name}", program.name)
            return result
        return None
