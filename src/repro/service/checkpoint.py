"""Durable checkpoints of a live ICB search (format v1).

A checkpoint freezes everything the iterative context-bounding loop
needs to continue after process death: the current preemption bound,
the two work queues (current-bound frontier and next-bound deferrals,
both as replayable :class:`~repro.parallel.workitem.WorkItem` s), the
accumulated :class:`~repro.search.strategy.SearchContext` statistics
(states, deduplicated bugs, counters, coverage history), the optional
work-item cache, and a frozen :class:`~repro.obs.metrics.MetricsSnapshot`.

**Exactness.**  Checkpoints are only ever taken *between* work items
(serial engine) or at shard boundaries (parallel engine), never in the
middle of one.  Work performed after the last checkpoint dies with the
process and is simply redone on resume, so an interrupted-then-resumed
run reports exactly the executions, distinct states, certified bound
and ``BugReport.identity`` set of an uninterrupted run -- the property
``tests/service`` asserts over every buggy builtin.

**Identity.**  A checkpoint binds to a search via a *fingerprint*:
program name + thread-structure hash, the replay-relevant
``ExecutionConfig`` knobs, the strategy shape (name, state caching,
analysis reduction) and a hash probe.  State fingerprints are Python
hashes and therefore depend on ``PYTHONHASHSEED``; the probe --
``hash("repro-checkpoint-probe")`` recorded at save time -- detects a
mismatched hash seed at load time and fails with
:class:`CheckpointMismatch` instead of silently merging incomparable
fingerprints.  Budgets (``SearchLimits``) and ``max_bound`` are
deliberately *excluded* from the fingerprint: resuming an interrupted
run with a bigger budget or a deeper bound is the point of the
exercise.

The on-disk representation is versioned JSON, written atomically
(temp file + ``os.replace``) so a crash mid-save leaves the previous
checkpoint intact.  See ``docs/service.md`` for the full schema.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.execution import ExecutionConfig
from ..core.program import Program
from ..core.thread import ThreadId
from ..errors import BugKind, BugReport, ReproError
from ..obs.instrument import Instrumentation
from ..obs.metrics import MetricsSnapshot
from ..parallel.workitem import WorkItem
from ..search.statecache import WorkItemCache
from ..search.strategy import SearchContext, SearchLimits, SearchResult
from ..trace.format import ProgramFingerprint, config_from_json, config_to_json

#: Identifies a file as a checkpoint regardless of extension.
CHECKPOINT_FORMAT = "repro-checkpoint"
#: Bumped on every incompatible schema change; loaders reject unknown
#: versions instead of guessing.
CHECKPOINT_VERSION = 1
#: Canonical file suffix for checkpoint files.
CHECKPOINT_SUFFIX = ".ckpt.json"

#: The string whose hash is stored in every checkpoint.  Two processes
#: agree on all state fingerprints iff they agree on this one value,
#: so comparing probes at load time detects a PYTHONHASHSEED mismatch
#: before any fingerprint is trusted.
HASH_PROBE_TEXT = "repro-checkpoint-probe"

#: Default save cadence of the serial engine, in processed work items.
DEFAULT_STRIDE = 128


class CheckpointError(ReproError):
    """A checkpoint file violates the schema (or cannot be written)."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint belongs to a different search than the one resuming.

    Raised when the program fingerprint, execution config, strategy
    shape or hash probe recorded in the checkpoint disagrees with the
    resuming process.  Resuming anyway would silently corrupt state
    and bug accounting, so this is always fatal.
    """


def hash_probe() -> int:
    """This process's value of the fingerprint-compatibility probe."""
    return hash(HASH_PROBE_TEXT)


def _require(data: Dict[str, Any], key: str, kind: type, where: str) -> Any:
    if not isinstance(data, dict) or key not in data:
        raise CheckpointError(f"{where}: missing required key {key!r}")
    value = data[key]
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise CheckpointError(
            f"{where}: key {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def search_fingerprint(
    program: Program,
    config: Optional[ExecutionConfig] = None,
    strategy: str = "icb",
    state_caching: bool = False,
    analysis: bool = False,
) -> Dict[str, Any]:
    """The identity a checkpoint binds to (see module docstring).

    Serial and parallel ICB share the strategy name ``"icb"``: they
    explore the same executions, so a checkpoint written by either
    engine can be resumed by the other.
    """
    fp = ProgramFingerprint.of(program)
    return {
        "program": {"name": fp.name, "structure": fp.structure},
        "config": config_to_json(config or ExecutionConfig()),
        "strategy": strategy,
        "state_caching": state_caching,
        "analysis": analysis,
        "hash_probe": hash_probe(),
    }


class _ThreadTable:
    """Deduplicating encoder for :class:`ThreadId` s in one checkpoint."""

    def __init__(self) -> None:
        self.threads: List[ThreadId] = []
        self._index: Dict[ThreadId, int] = {}

    def index(self, tid: ThreadId) -> int:
        known = self._index.get(tid)
        if known is None:
            known = self._index[tid] = len(self.threads)
            self.threads.append(tid)
        return known

    def encode_schedule(self, schedule: Iterable[ThreadId]) -> List[int]:
        return [self.index(tid) for tid in schedule]

    def to_json(self) -> List[Dict[str, Any]]:
        return [{"path": list(t.path), "label": t.label} for t in self.threads]

    @staticmethod
    def decode(data: Any, where: str) -> List[ThreadId]:
        if not isinstance(data, list):
            raise CheckpointError(f"{where}: threads must be a list")
        threads: List[ThreadId] = []
        for i, entry in enumerate(data):
            path = _require(entry, "path", list, f"{where}[{i}]")
            label = _require(entry, "label", str, f"{where}[{i}]")
            try:
                threads.append(ThreadId.from_path(path, label))
            except ValueError as exc:
                raise CheckpointError(f"{where}[{i}]: {exc}") from exc
        return threads


def _decode_schedule(
    data: Any, threads: List[ThreadId], where: str
) -> Tuple[ThreadId, ...]:
    if not isinstance(data, list):
        raise CheckpointError(f"{where}: schedule must be a list")
    out: List[ThreadId] = []
    for i, idx in enumerate(data):
        if not isinstance(idx, int) or isinstance(idx, bool) or not (
            0 <= idx < len(threads)
        ):
            raise CheckpointError(
                f"{where}[{i}]: index {idx!r} out of range for "
                f"{len(threads)} thread(s)"
            )
        out.append(threads[idx])
    return tuple(out)


def _sanitize_detail(value: Any) -> Any:
    """Reduce a bug-detail value to JSON primitives.

    Details never participate in bug signatures or identities, so a
    lossy ``str()`` fallback cannot affect dedup or parity -- only the
    human-facing rendering of exotic payloads.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize_detail(v) for v in value]
    return str(value)


def _bug_to_json(bug: BugReport, table: _ThreadTable) -> Dict[str, Any]:
    return {
        "kind": bug.kind.value,
        "message": bug.message,
        "thread": table.index(bug.thread) if bug.thread is not None else None,
        "schedule": table.encode_schedule(bug.schedule),
        "preemptions": bug.preemptions,
        "step_index": bug.step_index,
        "details": [[key, _sanitize_detail(value)] for key, value in bug.details],
    }


def _bug_from_json(data: Any, threads: List[ThreadId], where: str) -> BugReport:
    try:
        kind = BugKind(_require(data, "kind", str, where))
    except ValueError as exc:
        raise CheckpointError(f"{where}: {exc}") from exc
    thread_raw = data.get("thread") if isinstance(data, dict) else None
    if thread_raw is not None:
        if not isinstance(thread_raw, int) or isinstance(thread_raw, bool) or not (
            0 <= thread_raw < len(threads)
        ):
            raise CheckpointError(f"{where}: thread index {thread_raw!r} out of range")
        thread: Optional[ThreadId] = threads[thread_raw]
    else:
        thread = None
    details_raw = _require(data, "details", list, where)
    details: List[Tuple[str, Any]] = []
    for i, pair in enumerate(details_raw):
        if not isinstance(pair, list) or len(pair) != 2 or not isinstance(pair[0], str):
            raise CheckpointError(f"{where}: details[{i}] must be a [key, value] pair")
        value = pair[1]
        details.append((pair[0], tuple(value) if isinstance(value, list) else value))
    return BugReport(
        kind=kind,
        message=_require(data, "message", str, where),
        thread=thread,
        schedule=_decode_schedule(data.get("schedule"), threads, f"{where}.schedule"),
        preemptions=_require(data, "preemptions", int, where),
        step_index=_require(data, "step_index", int, where),
        details=tuple(details),
    )


def _items_to_json(
    items: Sequence[WorkItem], table: _ThreadTable
) -> List[Dict[str, Any]]:
    return [
        {
            "schedule": table.encode_schedule(item.schedule),
            "tid": table.index(item.tid),
            "preemptions": item.preemptions,
        }
        for item in items
    ]


def _items_from_json(
    data: Any, threads: List[ThreadId], where: str
) -> Tuple[WorkItem, ...]:
    if not isinstance(data, list):
        raise CheckpointError(f"{where}: must be a list")
    items: List[WorkItem] = []
    for i, entry in enumerate(data):
        schedule = _decode_schedule(
            entry.get("schedule") if isinstance(entry, dict) else None,
            threads,
            f"{where}[{i}].schedule",
        )
        tid_idx = _require(entry, "tid", int, f"{where}[{i}]")
        if not (0 <= tid_idx < len(threads)):
            raise CheckpointError(f"{where}[{i}]: tid index {tid_idx!r} out of range")
        items.append(
            WorkItem(
                schedule=schedule,
                tid=threads[tid_idx],
                preemptions=_require(entry, "preemptions", int, f"{where}[{i}]"),
            )
        )
    return tuple(items)


def normalize_items(raw_items: Iterable[Tuple[object, ThreadId]]) -> List[WorkItem]:
    """Wrap the serial engine's raw ``(state, tid)`` queue entries.

    A stateless state *is* its schedule, so ``tuple(state)`` is the
    replay recipe; the preemption count is advisory (``as_pair``
    discards it on the way back in) and recorded as zero.
    """
    return [WorkItem(schedule=tuple(state), tid=tid) for state, tid in raw_items]  # type: ignore[arg-type]


@dataclass
class Checkpoint:
    """One frozen snapshot of a live ICB search (see module docstring)."""

    fingerprint: Dict[str, Any]
    bound: int
    completed_bound: Optional[int]
    work_items: Tuple[WorkItem, ...]
    next_items: Tuple[WorkItem, ...]
    executions: int
    transitions: int
    analysis_pruned: int
    max_steps: int
    max_blocking: int
    max_preemptions: int
    #: state fingerprint -> minimal preemption count (the ground truth
    #: every resumed statistic reconciles against).
    states: Dict[int, int]
    bugs: Tuple[BugReport, ...]
    history: Tuple[Tuple[int, int], ...]
    #: Serialized work-item cache (``None`` when state caching is off).
    cache: Optional[Dict[str, Any]] = None
    #: Frozen metrics at save time (``None`` for uninstrumented runs).
    metrics: Optional[MetricsSnapshot] = None
    #: Parallel bookkeeping extras (shards, retries, ...) carried so a
    #: resumed coordinator run reports cumulative numbers.
    parallel: Dict[str, int] = field(default_factory=dict)
    sequence: int = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def capture(
        cls,
        fingerprint: Dict[str, Any],
        bound: int,
        work_items: Sequence[WorkItem],
        next_items: Sequence[WorkItem],
        ctx: SearchContext,
        completed_bound: Optional[int],
        cache: Optional[WorkItemCache] = None,
        metrics: Optional[MetricsSnapshot] = None,
        parallel: Optional[Dict[str, int]] = None,
        sequence: int = 0,
    ) -> "Checkpoint":
        states: Dict[int, int] = {}
        for fp, preemptions in ctx.states.items():
            if not isinstance(fp, int) or isinstance(fp, bool):
                raise CheckpointError(
                    "only integer state fingerprints can be checkpointed "
                    f"(got {type(fp).__name__})"
                )
            states[fp] = preemptions
        cache_state: Optional[Dict[str, Any]] = None
        if cache is not None:
            cache_state = cache.export_state()
        return cls(
            fingerprint=dict(fingerprint),
            bound=bound,
            completed_bound=completed_bound,
            work_items=tuple(work_items),
            next_items=tuple(next_items),
            executions=ctx.executions,
            transitions=ctx.transitions,
            analysis_pruned=ctx.analysis_pruned,
            max_steps=ctx.max_steps,
            max_blocking=ctx.max_blocking,
            max_preemptions=ctx.max_preemptions,
            states=states,
            bugs=tuple(ctx.bugs.values()),
            history=tuple(ctx.history),
            cache=cache_state,
            metrics=metrics,
            parallel=dict(parallel or {}),
            sequence=sequence,
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        table = _ThreadTable()
        work = _items_to_json(self.work_items, table)
        nxt = _items_to_json(self.next_items, table)
        bugs = [_bug_to_json(bug, table) for bug in self.bugs]
        cache_json: Optional[Dict[str, Any]] = None
        if self.cache is not None:
            cache_json = {
                "items": [
                    [fp, table.index(tid)] for fp, tid in self.cache["items"]
                ],
                "hits": self.cache["hits"],
                "misses": self.cache["misses"],
            }
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "sequence": self.sequence,
            "bound": self.bound,
            "completed_bound": self.completed_bound,
            "threads": table.to_json(),
            "work_items": work,
            "next_items": nxt,
            "context": {
                "executions": self.executions,
                "transitions": self.transitions,
                "analysis_pruned": self.analysis_pruned,
                "max_steps": self.max_steps,
                "max_blocking": self.max_blocking,
                "max_preemptions": self.max_preemptions,
                "states": [[fp, pre] for fp, pre in sorted(self.states.items())],
                "bugs": bugs,
                "history": [[e, s] for e, s in self.history],
            },
            "cache": cache_json,
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
            "parallel": dict(self.parallel),
        }

    @classmethod
    def from_json(cls, data: Any) -> "Checkpoint":
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint must be a JSON object, got {type(data).__name__}"
            )
        where = "checkpoint"
        fmt = _require(data, "format", str, where)
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(f"not a {CHECKPOINT_FORMAT} file (format={fmt!r})")
        version = _require(data, "version", int, where)
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        fingerprint = _require(data, "fingerprint", dict, where)
        threads = _ThreadTable.decode(_require(data, "threads", list, where), "threads")
        context = _require(data, "context", dict, where)
        states_raw = _require(context, "states", list, "context")
        states: Dict[int, int] = {}
        for i, pair in enumerate(states_raw):
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not all(isinstance(v, int) and not isinstance(v, bool) for v in pair)
            ):
                raise CheckpointError(
                    f"context.states[{i}] must be a [fingerprint, bound] int pair"
                )
            states[pair[0]] = pair[1]
        bugs_raw = _require(context, "bugs", list, "context")
        bugs = tuple(
            _bug_from_json(entry, threads, f"context.bugs[{i}]")
            for i, entry in enumerate(bugs_raw)
        )
        history_raw = _require(context, "history", list, "context")
        history: List[Tuple[int, int]] = []
        for i, pair in enumerate(history_raw):
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not all(isinstance(v, int) and not isinstance(v, bool) for v in pair)
            ):
                raise CheckpointError(
                    f"context.history[{i}] must be an [executions, states] int pair"
                )
            history.append((pair[0], pair[1]))
        completed_bound = data.get("completed_bound")
        if completed_bound is not None and (
            not isinstance(completed_bound, int) or isinstance(completed_bound, bool)
        ):
            raise CheckpointError("completed_bound must be an integer or null")
        cache_raw = data.get("cache")
        cache: Optional[Dict[str, Any]] = None
        if cache_raw is not None:
            items_raw = _require(cache_raw, "items", list, "cache")
            cache_items: List[Tuple[int, ThreadId]] = []
            for i, pair in enumerate(items_raw):
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not isinstance(pair[0], int)
                    or isinstance(pair[0], bool)
                    or not isinstance(pair[1], int)
                    or isinstance(pair[1], bool)
                    or not (0 <= pair[1] < len(threads))
                ):
                    raise CheckpointError(
                        f"cache.items[{i}] must be a [fingerprint, thread-index] pair"
                    )
                cache_items.append((pair[0], threads[pair[1]]))
            cache = {
                "items": cache_items,
                "hits": _require(cache_raw, "hits", int, "cache"),
                "misses": _require(cache_raw, "misses", int, "cache"),
            }
        metrics_raw = data.get("metrics")
        metrics = (
            MetricsSnapshot.from_dict(metrics_raw) if metrics_raw is not None else None
        )
        parallel_raw = data.get("parallel") or {}
        if not isinstance(parallel_raw, dict):
            raise CheckpointError("parallel must be an object")
        parallel = {
            str(k): v
            for k, v in parallel_raw.items()
            if isinstance(v, int) and not isinstance(v, bool)
        }
        return cls(
            fingerprint=fingerprint,
            bound=_require(data, "bound", int, where),
            completed_bound=completed_bound,
            work_items=_items_from_json(
                _require(data, "work_items", list, where), threads, "work_items"
            ),
            next_items=_items_from_json(
                _require(data, "next_items", list, where), threads, "next_items"
            ),
            executions=_require(context, "executions", int, "context"),
            transitions=_require(context, "transitions", int, "context"),
            analysis_pruned=_require(context, "analysis_pruned", int, "context"),
            max_steps=_require(context, "max_steps", int, "context"),
            max_blocking=_require(context, "max_blocking", int, "context"),
            max_preemptions=_require(context, "max_preemptions", int, "context"),
            states=states,
            bugs=bugs,
            history=tuple(history),
            cache=cache,
            metrics=metrics,
            parallel=parallel,
            sequence=_require(data, "sequence", int, where),
        )

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Atomically persist this checkpoint (temp file + rename)."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_json(), sort_keys=True)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, target)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc
        return target

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Checkpoint":
        source = pathlib.Path(path)
        try:
            text = source.read_text()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {source}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        return cls.from_json(data)

    # -- resuming -----------------------------------------------------------

    def validate(self, fingerprint: Dict[str, Any]) -> None:
        """Fail with :class:`CheckpointMismatch` unless this checkpoint
        belongs to the search described by ``fingerprint``."""
        saved, current = dict(self.fingerprint), dict(fingerprint)
        saved_probe = saved.pop("hash_probe", None)
        current_probe = current.pop("hash_probe", None)
        if saved != current:
            differing = sorted(
                key
                for key in set(saved) | set(current)
                if saved.get(key) != current.get(key)
            )
            raise CheckpointMismatch(
                "checkpoint belongs to a different search "
                f"(differs in: {', '.join(differing)})"
            )
        if saved_probe != current_probe:
            raise CheckpointMismatch(
                "checkpoint was written under a different PYTHONHASHSEED; "
                "state fingerprints are not comparable across hash seeds "
                "(pin PYTHONHASHSEED to resume across processes)"
            )

    def restore_context(self, ctx: SearchContext) -> None:
        """Install this checkpoint's statistics into a live context.

        Overwrites (rather than merges) every accumulated quantity:
        the context is expected to be fresh apart from the
        ``record_initial`` call the strategy driver already made.  When
        the context is instrumented, the saved metrics snapshot is
        absorbed and state/bug counts reconciled from the restored
        ground truth, so resumed metrics line up with the context.
        """
        ctx.states = dict(self.states)
        ctx.bugs = {bug.signature: bug for bug in self.bugs}
        ctx.executions = self.executions
        ctx.transitions = self.transitions
        ctx.analysis_pruned = self.analysis_pruned
        ctx.max_steps = self.max_steps
        ctx.max_blocking = self.max_blocking
        ctx.max_preemptions = self.max_preemptions
        ctx.history = list(self.history)
        obs = ctx.obs
        if obs is not None:
            if self.metrics is not None:
                obs.metrics.absorb(self.metrics)
            else:
                # Uninstrumented save, instrumented resume: recover the
                # totals (per-bound execution breakdowns are lost).
                obs.metrics.add("executions", self.executions)
                obs.metrics.add("transitions", self.transitions)
            obs.metrics.reconcile_states(ctx.states_by_bound(), bugs=len(ctx.bugs))
            obs.checkpoint_resumed(
                self.sequence, self.bound, self.executions, self.transitions
            )

    def restore_cache(self, cache: WorkItemCache) -> None:
        if self.cache is not None:
            cache.restore_state(
                self.cache["items"], self.cache["hits"], self.cache["misses"]
            )

    def as_base_result(self, limits: Optional[SearchLimits] = None) -> SearchResult:
        """This checkpoint's statistics as a mergeable shard result.

        The parallel coordinator seeds its per-run result list with
        this, so ``SearchResult.merge`` folds pre-interruption work in
        exactly like any completed shard.  The ``bound: -1`` extra
        sorts it before every real shard, keeping merge order (and the
        merged coverage history) deterministic.
        """
        ctx = SearchContext(limits)
        ctx.states = dict(self.states)
        ctx.bugs = {bug.signature: bug for bug in self.bugs}
        ctx.executions = self.executions
        ctx.transitions = self.transitions
        ctx.analysis_pruned = self.analysis_pruned
        ctx.max_steps = self.max_steps
        ctx.max_blocking = self.max_blocking
        ctx.max_preemptions = self.max_preemptions
        ctx.history = list(self.history)
        return SearchResult(
            strategy="icb-checkpoint",
            completed=False,
            stop_reason="resumed from checkpoint",
            context=ctx,
            extras={"bound": -1, "shard_id": -1},
        )


class Checkpointer:
    """Save/resume driver handed to the search engines.

    One instance manages one checkpoint file.  The serial ICB loop
    calls :meth:`note_item` after every processed work item and saves
    when the stride elapses; both engines call :meth:`save_state` at
    forced save points (bound completions, shard requeues).  The file
    is loaded at most once, via :meth:`resume_state`, and validated
    against this checkpointer's fingerprint.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fingerprint: Dict[str, Any],
        stride: int = DEFAULT_STRIDE,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = dict(fingerprint)
        self.stride = max(1, stride)
        self.obs = obs
        self.sequence = 0
        self._since_save = 0
        self._resumed: Optional[Checkpoint] = None
        self._loaded = False

    @classmethod
    def for_program(
        cls,
        path: Union[str, pathlib.Path],
        program: Program,
        config: Optional[ExecutionConfig] = None,
        stride: int = DEFAULT_STRIDE,
        state_caching: bool = False,
        analysis: bool = False,
        obs: Optional[Instrumentation] = None,
    ) -> "Checkpointer":
        """Convenience constructor computing the fingerprint."""
        return cls(
            path,
            search_fingerprint(
                program, config, state_caching=state_caching, analysis=analysis
            ),
            stride=stride,
            obs=obs,
        )

    # -- resuming -----------------------------------------------------------

    def resume_state(self) -> Optional[Checkpoint]:
        """The validated checkpoint to continue from, if one exists."""
        if not self._loaded:
            self._loaded = True
            if self.path.exists():
                checkpoint = Checkpoint.load(self.path)
                checkpoint.validate(self.fingerprint)
                self.sequence = checkpoint.sequence
                self._resumed = checkpoint
        return self._resumed

    # -- saving -------------------------------------------------------------

    def note_item(self) -> bool:
        """Count one processed work item; True when a save is due."""
        self._since_save += 1
        return self._since_save >= self.stride

    def save_state(
        self,
        bound: int,
        work_items: Sequence[WorkItem],
        next_items: Sequence[WorkItem],
        ctx: SearchContext,
        completed_bound: Optional[int],
        cache: Optional[WorkItemCache] = None,
        metrics: Optional[MetricsSnapshot] = None,
        parallel: Optional[Dict[str, int]] = None,
    ) -> Checkpoint:
        """Capture and atomically persist the current search state."""
        if metrics is None and ctx.obs is not None:
            metrics = ctx.obs.snapshot()
        self.sequence += 1
        self._since_save = 0
        checkpoint = Checkpoint.capture(
            self.fingerprint,
            bound,
            work_items,
            next_items,
            ctx,
            completed_bound,
            cache=cache,
            metrics=metrics,
            parallel=parallel,
            sequence=self.sequence,
        )
        checkpoint.save(self.path)
        obs = self.obs or ctx.obs
        if obs is not None:
            obs.checkpoint_saved(
                self.sequence, bound, len(work_items), len(next_items), ctx.executions
            )
        return checkpoint

    def clear(self) -> None:
        """Remove the checkpoint file (the run completed)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
