"""A durable job queue over an append-only JSONL journal.

The queue's entire state is the fold of ``jobs.jsonl``: every mutation
(``submitted``, ``started``, ``completed``, ``failed``, ``requeued``)
is one appended, fsynced line, and the in-memory view is rebuilt by
replaying the journal from the top.  That makes the queue trivially
crash-safe -- a killed daemon loses at most the *acknowledgement* of
work, never the work itself: :meth:`JobQueue.recover` folds the
journal, finds jobs stuck ``running`` with no live owner, and requeues
them.  Re-running a recovered job is cheap by construction, because
the daemon gives every job a durable checkpoint file
(:mod:`repro.service.checkpoint`) and a shared result cache
(:mod:`repro.service.cache`).

Scheduling is by ``(-priority, submission order)``; submissions are
deduplicated against *active* (queued or running) jobs with the same
work description, so hammering ``repro submit`` is idempotent.

**Fleet mode** (see :mod:`repro.net.lease`) adds lease events to the
same journal: ``claimed``/``renewed``/``lease_expired`` carry a
*fencing token* -- a per-job monotonic counter -- and the fold only
honours the event whose fence matches the job's current lease.  Two
daemons racing to claim the same job both append, but journal order
arbitrates deterministically: the first ``claimed`` wins and the
second is a no-op.  A ``completed``/``failed`` event carrying a stale
fence (a daemon finishing work whose lease was taken over) is likewise
ignored, so a job's effective completion happens exactly once.

**Torn tails.**  A crash in the middle of an append can leave a
partial final line with no terminating newline.  Such a record was
never committed: the fold ignores it, and the next append (or
:meth:`JobQueue.recover`) truncates the journal back to the last valid
record.  A newline-*terminated* garbage line is real corruption and
still raises :class:`JobQueueError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError

JOURNAL_NAME = "jobs.jsonl"

#: Job lifecycle states (the fold of the journal's event stream).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class JobQueueError(ReproError):
    """The journal is malformed or an operation is invalid."""


@dataclass
class Job:
    """One unit of checking work and its current lifecycle state."""

    id: str
    spec: str
    priority: int = 0
    max_bound: Optional[int] = None
    workers: Optional[int] = None
    stop_on_first_bug: bool = False
    max_executions: Optional[int] = None
    max_transitions: Optional[int] = None
    state_caching: bool = False
    #: Lifecycle, maintained by the journal fold -- never set directly.
    status: str = QUEUED
    attempts: int = 0
    seq: int = 0
    result_path: Optional[str] = None
    error: Optional[str] = None
    cache_hit: bool = False
    #: Lease state (fleet mode only; see repro.net.lease).  ``fence``
    #: is the per-job monotonic fencing token, never reset: each new
    #: claim must carry exactly ``fence + 1``.
    owner: Optional[str] = None
    fence: int = 0
    lease_expires: Optional[float] = None

    def work_key(self) -> Tuple[Any, ...]:
        """What makes two submissions "the same work" for dedup."""
        return (
            self.spec,
            self.max_bound,
            self.workers,
            self.stop_on_first_bug,
            self.max_executions,
            self.max_transitions,
            self.state_caching,
        )

    def identity(self) -> str:
        """The content address of this job's work: the SHA-256 of its
        sorted-JSON work description.  Two submissions with the same
        identity are the same work, which is what makes resubmits over
        the wire idempotent (see :mod:`repro.net`)."""
        names = (
            "spec",
            "max_bound",
            "workers",
            "stop_on_first_bug",
            "max_executions",
            "max_transitions",
            "state_caching",
        )
        payload = dict(zip(names, self.work_key()))
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    def describe(self) -> str:
        extra = ""
        if self.status == DONE and self.cache_hit:
            extra = " (cache hit)"
        elif self.status == FAILED and self.error:
            extra = f" ({self.error})"
        return (
            f"{self.id}  {self.status:<7}  prio={self.priority}  "
            f"attempts={self.attempts}  {self.spec}{extra}"
        )


_JOB_FIELDS = (
    "spec",
    "priority",
    "max_bound",
    "workers",
    "stop_on_first_bug",
    "max_executions",
    "max_transitions",
    "state_caching",
)


def _fence_of(event: Dict[str, Any]) -> int:
    try:
        return int(event.get("fence", 0))
    except (TypeError, ValueError):
        return -1


def _expires_of(event: Dict[str, Any]) -> Optional[float]:
    value = event.get("expires")
    try:
        return float(value) if value is not None else None
    except (TypeError, ValueError):
        return None


def _fence_current(event: Dict[str, Any], job: Job) -> bool:
    """Whether a lifecycle event speaks for the job's current lease.

    Legacy events carry no fence and are always honoured (the
    single-daemon topology has no contention to arbitrate).  A fenced
    event is honoured only when its token matches: a daemon finishing
    work whose lease was expired and re-claimed appends a stale fence,
    which folds to a no-op -- the "exactly once" half of fencing.
    """
    if "fence" not in event:
        return True
    return _fence_of(event) == job.fence


class JobQueue:
    """Fold-of-a-journal job queue (see module docstring).

    Not safe for *concurrent writers*: the intended topology is one
    ``repro serve`` daemon owning the journal, with ``submit``/
    ``status`` CLI invocations running between daemon polls.  Each
    public method re-reads the journal, so separate processes always
    see each other's appended events.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.journal = self.root / JOURNAL_NAME

    # -- journal primitives --------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.repair()
        line = json.dumps(event, sort_keys=True)
        with open(self.journal, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    @staticmethod
    def _parse_line(line: str) -> Optional[Dict[str, Any]]:
        """One journal record, or ``None`` if the line is not one."""
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(event, dict) or "event" not in event:
            return None
        return event

    def _read(self) -> Tuple[List[Dict[str, Any]], int]:
        """Parse the journal; returns ``(events, valid_length)``.

        ``valid_length`` is the byte offset just past the last
        committed record.  A record is committed iff its line is
        newline-terminated: appends write line+newline in one call, so
        only a crash mid-append leaves an *unterminated* tail, and
        such a tail -- whatever its bytes -- was never acknowledged
        and is ignored (then truncated by :meth:`repair`).  A
        newline-terminated line that fails to parse is real corruption
        and raises.
        """
        try:
            raw = self.journal.read_bytes()
        except FileNotFoundError:
            return [], 0
        except OSError as exc:
            raise JobQueueError(f"cannot read journal {self.journal}: {exc}") from exc
        events: List[Dict[str, Any]] = []
        offset = 0
        lineno = 0
        while offset < len(raw):
            lineno += 1
            end = raw.find(b"\n", offset)
            if end == -1:
                # Torn tail: a crashed append never committed this
                # record.  valid_length excludes it.
                return events, offset
            line = raw[offset:end].decode("utf-8", errors="replace").strip()
            if line:
                event = self._parse_line(line)
                if event is None:
                    raise JobQueueError(
                        f"{self.journal}:{lineno}: not a valid journal record"
                    )
                events.append(event)
            offset = end + 1
        return events, offset

    def _events(self) -> List[Dict[str, Any]]:
        return self._read()[0]

    def repair(self) -> bool:
        """Truncate a torn final record (see :meth:`_read`); returns
        whether anything was cut."""
        if not self.journal.exists():
            return False
        _, valid = self._read()
        if valid >= self.journal.stat().st_size:
            return False
        with open(self.journal, "r+b") as fh:
            fh.truncate(valid)
            fh.flush()
            os.fsync(fh.fileno())
        return True

    def _fold(self) -> Dict[str, Job]:
        """Replay the journal into the current job table."""
        jobs: Dict[str, Job] = {}
        for event in self._events():
            kind = event["event"]
            if kind == "submitted":
                data = event.get("job")
                if not isinstance(data, dict) or "id" not in data:
                    raise JobQueueError("submitted event without a job object")
                job = Job(
                    id=str(data["id"]),
                    seq=int(data.get("seq", 0)),
                    **{name: data.get(name) for name in _JOB_FIELDS},
                )
                job.priority = int(job.priority or 0)
                job.stop_on_first_bug = bool(job.stop_on_first_bug)
                job.state_caching = bool(job.state_caching)
                jobs[job.id] = job
                continue
            job = jobs.get(str(event.get("id")))
            if job is None:
                # An event for an unknown job: tolerate (a truncated
                # journal head) rather than refuse to serve the rest.
                continue
            if kind == "started":
                job.status = RUNNING
                job.attempts += 1
            elif kind == "claimed":
                # A lease claim is honoured only on a queued job and
                # only with the next fencing token; the loser of a
                # two-daemon race appends a claim that fails one of
                # the two tests and folds to a no-op.
                if job.status == QUEUED and _fence_of(event) == job.fence + 1:
                    job.status = RUNNING
                    job.attempts += 1
                    job.owner = str(event.get("daemon", ""))
                    job.fence += 1
                    job.lease_expires = _expires_of(event)
            elif kind == "renewed":
                if (
                    job.status == RUNNING
                    and _fence_of(event) == job.fence
                    and str(event.get("daemon", "")) == job.owner
                ):
                    job.lease_expires = _expires_of(event)
            elif kind == "lease_expired":
                # A takeover: some daemon observed the lease deadline
                # pass and requeued the job.  The fence check means an
                # expiry raced against a newer claim cannot clobber it.
                if job.status == RUNNING and _fence_of(event) == job.fence:
                    job.status = QUEUED
                    job.owner = None
                    job.lease_expires = None
                    job.error = event.get("error", job.error)
            elif kind == "completed":
                if _fence_current(event, job):
                    job.status = DONE
                    job.result_path = event.get("result_path")
                    job.cache_hit = bool(event.get("cache_hit"))
                    job.owner = None
                    job.lease_expires = None
            elif kind == "failed":
                if _fence_current(event, job):
                    job.status = FAILED
                    job.error = event.get("error")
                    job.owner = None
                    job.lease_expires = None
            elif kind == "requeued":
                if _fence_current(event, job):
                    job.status = QUEUED
                    job.error = event.get("error", job.error)
                    job.owner = None
                    job.lease_expires = None
        return jobs

    # -- public API ----------------------------------------------------------

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return sorted(self._fold().values(), key=lambda job: job.seq)

    def get(self, job_id: str) -> Optional[Job]:
        return self._fold().get(job_id)

    def submit(
        self,
        spec: str,
        priority: int = 0,
        max_bound: Optional[int] = None,
        workers: Optional[int] = None,
        stop_on_first_bug: bool = False,
        max_executions: Optional[int] = None,
        max_transitions: Optional[int] = None,
        state_caching: bool = False,
    ) -> Job:
        """Append a new job, or return the active duplicate if any."""
        jobs = self._fold()
        candidate = Job(
            id="",
            spec=spec,
            priority=priority,
            max_bound=max_bound,
            workers=workers,
            stop_on_first_bug=stop_on_first_bug,
            max_executions=max_executions,
            max_transitions=max_transitions,
            state_caching=state_caching,
        )
        for job in sorted(jobs.values(), key=lambda j: j.seq):
            if job.status in (QUEUED, RUNNING) and job.work_key() == candidate.work_key():
                return job
        seq = 1 + max((job.seq for job in jobs.values()), default=0)
        candidate.id = f"job-{seq:06d}"
        candidate.seq = seq
        payload = asdict(candidate)
        # Lifecycle and lease fields are derived from later events,
        # not recorded at submission.
        for name in (
            "status",
            "attempts",
            "result_path",
            "error",
            "cache_hit",
            "owner",
            "fence",
            "lease_expires",
        ):
            payload.pop(name, None)
        self._append({"event": "submitted", "job": payload})
        return candidate

    def claim(self) -> Optional[Job]:
        """Take the best queued job and mark it running."""
        queued = [job for job in self._fold().values() if job.status == QUEUED]
        if not queued:
            return None
        job = min(queued, key=lambda j: (-j.priority, j.seq))
        self._append({"event": "started", "id": job.id})
        job.status = RUNNING
        job.attempts += 1
        return job

    def complete(
        self,
        job_id: str,
        result_path: Optional[str] = None,
        cache_hit: bool = False,
        daemon: Optional[str] = None,
        fence: Optional[int] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "event": "completed",
            "id": job_id,
            "result_path": result_path,
            "cache_hit": cache_hit,
        }
        if fence is not None:
            event["fence"] = fence
            event["daemon"] = daemon
        self._append(event)

    def fail(
        self,
        job_id: str,
        error: str,
        requeue: bool = False,
        daemon: Optional[str] = None,
        fence: Optional[int] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "event": "requeued" if requeue else "failed",
            "id": job_id,
            "error": error,
        }
        if fence is not None:
            event["fence"] = fence
            event["daemon"] = daemon
        self._append(event)

    # -- lease events (fleet mode; see repro.net.lease) ----------------------

    def append_claim(
        self, job_id: str, daemon: str, fence: int, expires: float
    ) -> None:
        self._append(
            {
                "event": "claimed",
                "id": job_id,
                "daemon": daemon,
                "fence": fence,
                "expires": expires,
            }
        )

    def append_renewal(
        self, job_id: str, daemon: str, fence: int, expires: float
    ) -> None:
        self._append(
            {
                "event": "renewed",
                "id": job_id,
                "daemon": daemon,
                "fence": fence,
                "expires": expires,
            }
        )

    def append_expiry(
        self, job_id: str, fence: int, daemon: str, error: str
    ) -> None:
        """Journal a lease takeover: ``daemon`` observed the lease
        deadline pass and is returning the job to the queue."""
        self._append(
            {
                "event": "lease_expired",
                "id": job_id,
                "fence": fence,
                "daemon": daemon,
                "error": error,
            }
        )

    def recover(self) -> List[Job]:
        """Requeue every job left ``running`` by a dead daemon.

        Called on daemon startup, before any claim: at that moment no
        worker legitimately owns a job, so anything still marked
        running is an orphan of a crash.  The requeued jobs resume
        from their durable checkpoints rather than starting over.
        """
        self.repair()
        recovered: List[Job] = []
        for job in self.jobs():
            if job.status == RUNNING:
                self.fail(job.id, "daemon died while running", requeue=True)
                job.status = QUEUED
                recovered.append(job)
        return recovered
