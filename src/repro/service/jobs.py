"""A durable job queue over an append-only JSONL journal.

The queue's entire state is the fold of ``jobs.jsonl``: every mutation
(``submitted``, ``started``, ``completed``, ``failed``, ``requeued``)
is one appended, fsynced line, and the in-memory view is rebuilt by
replaying the journal from the top.  That makes the queue trivially
crash-safe -- a killed daemon loses at most the *acknowledgement* of
work, never the work itself: :meth:`JobQueue.recover` folds the
journal, finds jobs stuck ``running`` with no live owner, and requeues
them.  Re-running a recovered job is cheap by construction, because
the daemon gives every job a durable checkpoint file
(:mod:`repro.service.checkpoint`) and a shared result cache
(:mod:`repro.service.cache`).

Scheduling is by ``(-priority, submission order)``; submissions are
deduplicated against *active* (queued or running) jobs with the same
work description, so hammering ``repro submit`` is idempotent.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError

JOURNAL_NAME = "jobs.jsonl"

#: Job lifecycle states (the fold of the journal's event stream).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class JobQueueError(ReproError):
    """The journal is malformed or an operation is invalid."""


@dataclass
class Job:
    """One unit of checking work and its current lifecycle state."""

    id: str
    spec: str
    priority: int = 0
    max_bound: Optional[int] = None
    workers: Optional[int] = None
    stop_on_first_bug: bool = False
    max_executions: Optional[int] = None
    max_transitions: Optional[int] = None
    state_caching: bool = False
    #: Lifecycle, maintained by the journal fold -- never set directly.
    status: str = QUEUED
    attempts: int = 0
    seq: int = 0
    result_path: Optional[str] = None
    error: Optional[str] = None
    cache_hit: bool = False

    def work_key(self) -> Tuple[Any, ...]:
        """What makes two submissions "the same work" for dedup."""
        return (
            self.spec,
            self.max_bound,
            self.workers,
            self.stop_on_first_bug,
            self.max_executions,
            self.max_transitions,
            self.state_caching,
        )

    def describe(self) -> str:
        extra = ""
        if self.status == DONE and self.cache_hit:
            extra = " (cache hit)"
        elif self.status == FAILED and self.error:
            extra = f" ({self.error})"
        return (
            f"{self.id}  {self.status:<7}  prio={self.priority}  "
            f"attempts={self.attempts}  {self.spec}{extra}"
        )


_JOB_FIELDS = (
    "spec",
    "priority",
    "max_bound",
    "workers",
    "stop_on_first_bug",
    "max_executions",
    "max_transitions",
    "state_caching",
)


class JobQueue:
    """Fold-of-a-journal job queue (see module docstring).

    Not safe for *concurrent writers*: the intended topology is one
    ``repro serve`` daemon owning the journal, with ``submit``/
    ``status`` CLI invocations running between daemon polls.  Each
    public method re-reads the journal, so separate processes always
    see each other's appended events.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.journal = self.root / JOURNAL_NAME

    # -- journal primitives --------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(event, sort_keys=True)
        with open(self.journal, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _events(self) -> List[Dict[str, Any]]:
        if not self.journal.exists():
            return []
        events: List[Dict[str, Any]] = []
        try:
            text = self.journal.read_text()
        except OSError as exc:
            raise JobQueueError(f"cannot read journal {self.journal}: {exc}") from exc
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JobQueueError(
                    f"{self.journal}:{lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(event, dict) or "event" not in event:
                raise JobQueueError(
                    f"{self.journal}:{lineno}: journal entries need an 'event' key"
                )
            events.append(event)
        return events

    def _fold(self) -> Dict[str, Job]:
        """Replay the journal into the current job table."""
        jobs: Dict[str, Job] = {}
        for event in self._events():
            kind = event["event"]
            if kind == "submitted":
                data = event.get("job")
                if not isinstance(data, dict) or "id" not in data:
                    raise JobQueueError("submitted event without a job object")
                job = Job(
                    id=str(data["id"]),
                    seq=int(data.get("seq", 0)),
                    **{name: data.get(name) for name in _JOB_FIELDS},
                )
                job.priority = int(job.priority or 0)
                job.stop_on_first_bug = bool(job.stop_on_first_bug)
                job.state_caching = bool(job.state_caching)
                jobs[job.id] = job
                continue
            job = jobs.get(str(event.get("id")))
            if job is None:
                # An event for an unknown job: tolerate (a truncated
                # journal head) rather than refuse to serve the rest.
                continue
            if kind == "started":
                job.status = RUNNING
                job.attempts += 1
            elif kind == "completed":
                job.status = DONE
                job.result_path = event.get("result_path")
                job.cache_hit = bool(event.get("cache_hit"))
            elif kind == "failed":
                job.status = FAILED
                job.error = event.get("error")
            elif kind == "requeued":
                job.status = QUEUED
                job.error = event.get("error", job.error)
        return jobs

    # -- public API ----------------------------------------------------------

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return sorted(self._fold().values(), key=lambda job: job.seq)

    def get(self, job_id: str) -> Optional[Job]:
        return self._fold().get(job_id)

    def submit(
        self,
        spec: str,
        priority: int = 0,
        max_bound: Optional[int] = None,
        workers: Optional[int] = None,
        stop_on_first_bug: bool = False,
        max_executions: Optional[int] = None,
        max_transitions: Optional[int] = None,
        state_caching: bool = False,
    ) -> Job:
        """Append a new job, or return the active duplicate if any."""
        jobs = self._fold()
        candidate = Job(
            id="",
            spec=spec,
            priority=priority,
            max_bound=max_bound,
            workers=workers,
            stop_on_first_bug=stop_on_first_bug,
            max_executions=max_executions,
            max_transitions=max_transitions,
            state_caching=state_caching,
        )
        for job in sorted(jobs.values(), key=lambda j: j.seq):
            if job.status in (QUEUED, RUNNING) and job.work_key() == candidate.work_key():
                return job
        seq = 1 + max((job.seq for job in jobs.values()), default=0)
        candidate.id = f"job-{seq:06d}"
        candidate.seq = seq
        payload = asdict(candidate)
        # Lifecycle fields are derived from later events, not recorded
        # at submission.
        for name in ("status", "attempts", "result_path", "error", "cache_hit"):
            payload.pop(name, None)
        self._append({"event": "submitted", "job": payload})
        return candidate

    def claim(self) -> Optional[Job]:
        """Take the best queued job and mark it running."""
        queued = [job for job in self._fold().values() if job.status == QUEUED]
        if not queued:
            return None
        job = min(queued, key=lambda j: (-j.priority, j.seq))
        self._append({"event": "started", "id": job.id})
        job.status = RUNNING
        job.attempts += 1
        return job

    def complete(
        self, job_id: str, result_path: Optional[str] = None, cache_hit: bool = False
    ) -> None:
        self._append(
            {
                "event": "completed",
                "id": job_id,
                "result_path": result_path,
                "cache_hit": cache_hit,
            }
        )

    def fail(self, job_id: str, error: str, requeue: bool = False) -> None:
        self._append(
            {
                "event": "requeued" if requeue else "failed",
                "id": job_id,
                "error": error,
            }
        )

    def recover(self) -> List[Job]:
        """Requeue every job left ``running`` by a dead daemon.

        Called on daemon startup, before any claim: at that moment no
        worker legitimately owns a job, so anything still marked
        running is an orphan of a crash.  The requeued jobs resume
        from their durable checkpoints rather than starting over.
        """
        recovered: List[Job] = []
        for job in self.jobs():
            if job.status == RUNNING:
                self.fail(job.id, "daemon died while running", requeue=True)
                job.status = QUEUED
                recovered.append(job)
        return recovered
