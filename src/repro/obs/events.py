"""The typed event stream of a search run.

Events are frozen dataclasses carrying only JSON primitives, so every
event serializes losslessly to one JSONL line and back
(:func:`event_from_dict` is the exact inverse of
:meth:`Event.to_dict`).  The :class:`EventBus` dispatches events to
subscribed sinks; with no sinks it is inert, and instrumented code is
expected to test :attr:`EventBus.active` before even *constructing* an
event, so the disabled path allocates nothing.

Volume discipline: per-transition quantities are aggregated in
:mod:`repro.obs.metrics`; the bus carries discrete milestones only --
new states, completed executions, bounds, bugs, race hits, worker
heartbeats -- keeping event logs proportional to discoveries rather
than to raw transitions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Tuple, Type

from ..errors import ReproError


class ObsFormatError(ReproError):
    """A serialized event or metrics artifact violates its schema."""


@dataclass(frozen=True)
class Event:
    """Base of all instrumentation events.

    ``t`` is seconds since the run's instrumentation was armed
    (monotonic, not wall-clock), so event logs from different machines
    and processes line up on a common axis starting at zero.
    """

    kind: ClassVar[str] = "event"

    t: float

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"e": self.kind, "t": round(self.t, 6)}
        for field in dataclasses.fields(self):
            if field.name != "t":
                data[field.name] = getattr(self, field.name)
        return data


@dataclass(frozen=True)
class SearchStarted(Event):
    """A strategy (or the parallel coordinator) began exploring."""

    kind: ClassVar[str] = "search_started"

    strategy: str
    program: str


@dataclass(frozen=True)
class SearchFinished(Event):
    """The run ended; final totals, mirroring ``SearchResult``."""

    kind: ClassVar[str] = "search_finished"

    strategy: str
    completed: bool
    stop_reason: str
    executions: int
    transitions: int
    states: int
    bugs: int


@dataclass(frozen=True)
class BoundStarted(Event):
    """An iteration bound began (ICB preemption bound, IDDFS depth)."""

    kind: ClassVar[str] = "bound_started"

    bound: int
    frontier: int


@dataclass(frozen=True)
class BoundCompleted(Event):
    """Every execution within ``bound`` has been explored."""

    kind: ClassVar[str] = "bound_completed"

    bound: int
    executions: int
    states: int


@dataclass(frozen=True)
class ExecutionStarted(Event):
    """The first transition of execution number ``index`` ran."""

    kind: ClassVar[str] = "execution_started"

    index: int


@dataclass(frozen=True)
class ExecutionFinished(Event):
    """One terminal state reached; ``states`` is the running distinct
    count -- the series Figure 2 plots."""

    kind: ClassVar[str] = "execution_finished"

    index: int
    states: int


@dataclass(frozen=True)
class StateVisited(Event):
    """A *new* distinct state was discovered (revisits are metrics)."""

    kind: ClassVar[str] = "state_visited"

    states: int
    preemptions: int


@dataclass(frozen=True)
class BugFound(Event):
    """A bug report was recorded (``new`` distinguishes a first
    sighting from a better witness of a known defect)."""

    kind: ClassVar[str] = "bug_found"

    bug_kind: str
    message: str
    preemptions: int
    new: bool


@dataclass(frozen=True)
class RaceChecked(Event):
    """A data-race check flagged ``races`` conflicting accesses."""

    kind: ClassVar[str] = "race_checked"

    races: int


@dataclass(frozen=True)
class AnalysisCompleted(Event):
    """The static analysis pass finished (before the search started).

    ``top_threads`` counts summaries that fell back to TOP; any
    nonzero value means the scheduling-point reduction is disabled
    for the run (see ``docs/analysis.md``).  ``top_reasons`` records
    *why* each TOP thread degraded (``"label: reason"`` joined with
    ``"; "``, empty when none) so no program -- in particular no
    in-vivo program -- silently loses the reduction."""

    kind: ClassVar[str] = "analysis_completed"

    program: str
    threads: int
    top_threads: int
    proven_local: int
    candidates: int
    findings: int
    top_reasons: str


@dataclass(frozen=True)
class WorkerHeartbeat(Event):
    """Progress streamed by one parallel worker (cumulative totals)."""

    kind: ClassVar[str] = "worker_heartbeat"

    worker: int
    executions: int
    transitions: int


@dataclass(frozen=True)
class CheckpointSaved(Event):
    """The live search state was persisted (see ``docs/service.md``).

    ``frontier``/``deferred`` count the work items captured in the
    current and next-bound queues; ``sequence`` increments per save,
    so gaps in an event log reveal lost checkpoints."""

    kind: ClassVar[str] = "checkpoint_saved"

    sequence: int
    bound: int
    frontier: int
    deferred: int
    executions: int


@dataclass(frozen=True)
class CheckpointResumed(Event):
    """A search continued from a persisted checkpoint instead of
    starting fresh; totals are the restored starting point."""

    kind: ClassVar[str] = "checkpoint_resumed"

    sequence: int
    bound: int
    executions: int
    transitions: int


@dataclass(frozen=True)
class ResultCacheServed(Event):
    """A completed result was served from the content-addressed result
    cache without any exploration (``docs/service.md``)."""

    kind: ClassVar[str] = "result_cache_served"

    key: str
    program: str


@dataclass(frozen=True)
class HttpRequestServed(Event):
    """The daemon's HTTP front-end answered one request
    (``repro.net.http_api``)."""

    kind: ClassVar[str] = "http_request_served"

    method: str
    path: str
    status: int


@dataclass(frozen=True)
class LeaseRenewed(Event):
    """A fleet daemon pushed its lease deadline forward while a job
    ran (``repro.net.lease``)."""

    kind: ClassVar[str] = "lease_renewed"

    job: str
    fence: int


@dataclass(frozen=True)
class LeaseTakeover(Event):
    """A fleet daemon observed a peer's lease expire and requeued the
    job; the next claim carries a higher fencing token."""

    kind: ClassVar[str] = "lease_takeover"

    job: str
    fence: int
    prior_owner: str


@dataclass(frozen=True)
class CacheSyncApplied(Event):
    """A cache entry or witness trace was pulled from a peer daemon
    (``repro.net.sync``); ``kind_of`` is ``result`` or ``trace``."""

    kind: ClassVar[str] = "cache_sync_applied"

    key: str
    source: str
    kind_of: str


@dataclass(frozen=True)
class CachePushSent(Event):
    """A freshly computed result-cache entry was pushed to a peer
    daemon at job completion (``repro.net.sync``), ahead of its
    anti-entropy sweep."""

    kind: ClassVar[str] = "cache_push_sent"

    key: str
    peer: str


@dataclass(frozen=True)
class InvivoRun(Event):
    """A checking run over an in-vivo program finished
    (``repro.invivo``); cumulative OS-thread/handshake totals."""

    kind: ClassVar[str] = "invivo_run"

    program: str
    threads: int
    handshakes: int
    abandoned: int


#: Registry of every event type, keyed by its wire tag.  Serialization
#: and validation are driven from this table, so adding an event type
#: here is the single step that extends the schema.
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.kind: cls
    for cls in (
        SearchStarted,
        SearchFinished,
        BoundStarted,
        BoundCompleted,
        ExecutionStarted,
        ExecutionFinished,
        StateVisited,
        BugFound,
        RaceChecked,
        AnalysisCompleted,
        WorkerHeartbeat,
        CheckpointSaved,
        CheckpointResumed,
        ResultCacheServed,
        HttpRequestServed,
        LeaseRenewed,
        LeaseTakeover,
        CacheSyncApplied,
        CachePushSent,
        InvivoRun,
    )
}

#: JSON-primitive validators per annotation; bool is checked before
#: int because bool is an int subclass.
_FIELD_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
}


def event_fields(cls: Type[Event]) -> List[Tuple[str, str]]:
    """The ``(name, annotation)`` schema of one event type."""
    return [(f.name, f.type) for f in dataclasses.fields(cls)]


def event_from_dict(data: Dict[str, Any], where: str = "event") -> Event:
    """Rebuild a typed event from its wire dict, validating strictly.

    The inverse of :meth:`Event.to_dict`: unknown kinds, missing or
    extra keys, and wrong primitive types all raise
    :class:`ObsFormatError` naming the offending key.
    """
    if not isinstance(data, dict):
        raise ObsFormatError(f"{where}: event must be an object")
    kind = data.get("e")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ObsFormatError(f"{where}: unknown event kind {kind!r}")
    fields = event_fields(cls)
    expected = {name for name, _ in fields}
    extra = set(data) - expected - {"e"}
    if extra:
        raise ObsFormatError(f"{where}: unexpected key(s) {sorted(extra)!r}")
    kwargs: Dict[str, Any] = {}
    for name, annotation in fields:
        if name not in data:
            raise ObsFormatError(f"{where}: missing key {name!r}")
        value = data[name]
        checker = _FIELD_CHECKS.get(annotation)
        if checker is not None and not checker(value):
            raise ObsFormatError(
                f"{where}: key {name!r} must be {annotation}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = float(value) if annotation == "float" else value
    return cls(**kwargs)


class Sink:
    """A consumer of the event stream.

    Sinks receive every emitted event through :meth:`handle` and are
    :meth:`close`-d when the run's artifacts should be finalized.
    Subclasses must not raise from ``handle``; a failing sink would
    abort the search it is observing.
    """

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class EventBus:
    """Dispatches events to subscribed sinks; inert with none.

    Emitting sites must guard on :attr:`active` so the disabled path
    (no sinks) costs one attribute read and never allocates an event.
    """

    __slots__ = ("_sinks",)

    def __init__(self) -> None:
        self._sinks: List[Sink] = []

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    def subscribe(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        self._sinks.remove(sink)

    def emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink (flushing files, final progress lines)."""
        for sink in self._sinks:
            sink.close()
