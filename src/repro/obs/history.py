"""Bounded coverage-history recording.

The seed implementation appended one ``(executions, distinct states)``
tuple to an unbounded list after *every* completed execution -- fine
for the paper's budgets, hostile to million-execution runs.
:class:`CoverageRecorder` keeps the same series (the one Figures 2, 5
and 6 plot) under a hard memory bound: points are kept on an execution
stride that doubles whenever the buffer fills, so a run of any length
retains at most ``max_samples`` evenly spaced points plus the exact
final point.

The stride is aligned to the execution counter (``executions %
stride == 0``), so two strategies run under the same budget decimate
onto the *same* x grid -- which is what lets ``bench_fig2`` compare
curves pointwise after decimation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

Point = Tuple[int, int]


class CoverageRecorder:
    """Records a monotone ``(executions, states)`` series, bounded."""

    __slots__ = ("max_samples", "_kept", "_stride", "_pending")

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.max_samples = max_samples
        self._kept: List[Point] = []
        self._stride = 1
        self._pending: Optional[Point] = None

    # -- recording ---------------------------------------------------------

    def record(self, executions: int, states: int) -> None:
        """Feed the point observed after one completed execution."""
        if executions % self._stride:
            # Off-grid: remembered so the final point is never lost.
            self._pending = (executions, states)
            return
        self._kept.append((executions, states))
        self._pending = None
        if len(self._kept) >= self.max_samples:
            self._decimate()

    def extend_raw(self, points: Iterable[Point]) -> None:
        """Append pre-existing points verbatim (used by merge), still
        decimating on overflow."""
        for point in points:
            self._kept.append(point)
            if len(self._kept) >= self.max_samples:
                self._decimate()
        self._pending = None

    def replace(self, points: Iterable[Point]) -> None:
        """Back-compat setter: install an explicit series as-is."""
        self._kept = list(points)
        self._pending = None
        self._stride = 1

    def _decimate(self) -> None:
        self._stride *= 2
        filtered = [p for p in self._kept if p[0] % self._stride == 0]
        if len(filtered) <= len(self._kept) // 2 + 1:
            self._kept = filtered
        else:
            # Merged series need not align with the stride grid; fall
            # back to positional halving so the bound always holds.
            self._kept = self._kept[::2]

    # -- views -------------------------------------------------------------

    def samples(self) -> List[Point]:
        """The retained series, always ending at the latest point."""
        if self._pending is not None:
            return self._kept + [self._pending]
        return list(self._kept)

    @property
    def stride(self) -> int:
        return self._stride

    def __len__(self) -> int:
        return len(self._kept) + (1 if self._pending is not None else 0)
