"""Counters, gauges, latency histograms and mergeable snapshots.

A live :class:`MetricsRegistry` is cheap enough to update on the hot
path: counters are dict increments, per-bound breakdowns are dict
increments keyed by the current bound, and latency distributions are
fed by *sampled* timers (:class:`SampledTimer`) that read the clock on
a stride rather than on every call.

A :class:`MetricsSnapshot` freezes the registry into plain dicts: it
is picklable, JSON-serializable (versioned, like the trace format) and
mergeable across parallel workers with the same algebra as
``SearchResult.merge`` -- sums for counters and per-bound breakdowns,
bucket-wise sums for histograms, maxima for gauges and elapsed time.
``merge`` folds a whole sequence at once, so the result is independent
of how workers are grouped.
"""

from __future__ import annotations

import json
import pathlib
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from .events import ObsFormatError
from .profile import Profiler

#: Identifies a metrics file; version is bumped on schema breaks.
METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

#: Default latency buckets (seconds): 1-2-5 per decade, 1us .. 1s.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0,
)


class Histogram:
    """Fixed-boundary histogram of observed values (seconds).

    ``counts[i]`` counts observations ``<= bounds[i]``; the final
    slot counts overflows.  Fixed shared boundaries make histograms
    from different workers mergeable by plain elementwise addition.
    """

    __slots__ = ("bounds", "counts", "total", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket boundary containing the ``q`` quantile."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(tuple(data["bounds"]))
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ObsFormatError("histogram counts do not match its bounds")
        hist.counts = counts
        hist.total = float(data["total"])
        hist.count = int(data["count"])
        hist.min = float(data["min"]) if hist.count else float("inf")
        hist.max = float(data["max"])
        return hist

    def absorb(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ReproError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class SampledTimer:
    """A stride-sampled latency probe feeding one histogram.

    ``start`` reads the clock only every ``stride``-th call and
    returns 0.0 otherwise, so an un-sampled hot-path call costs one
    increment and one modulo.  The recorded distribution is an
    unbiased sample of per-call latency (not a total)."""

    __slots__ = ("hist", "stride", "_n")

    def __init__(self, hist: Histogram, stride: int = 64) -> None:
        self.hist = hist
        self.stride = max(1, stride)
        self._n = 0

    def start(self) -> float:
        self._n += 1
        if self._n % self.stride:
            return 0.0
        return time.perf_counter()

    def stop(self, t0: float) -> None:
        if t0:
            self.hist.record(time.perf_counter() - t0)


def _merge_int_maps(maps: Sequence[Dict[Any, int]]) -> Dict[Any, int]:
    merged: Dict[Any, int] = {}
    for one in maps:
        for key, value in one.items():
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class MetricsSnapshot:
    """A frozen, picklable, mergeable view of one run's metrics.

    Per-bound breakdowns mirror ``SearchContext`` exactly:
    ``states_by_bound`` is the histogram of minimal reaching
    preemption counts (``SearchContext.states_by_bound``) and
    ``executions_by_bound`` counts completed executions per iteration
    bound of the strategy that ran.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    executions_by_bound: Dict[int, int] = field(default_factory=dict)
    states_by_bound: Dict[int, int] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)
    elapsed: float = 0.0

    # -- conveniences ------------------------------------------------------

    @property
    def executions(self) -> int:
        return self.counters.get("executions", 0)

    @property
    def transitions(self) -> int:
        return self.counters.get("transitions", 0)

    @property
    def distinct_states(self) -> int:
        return self.counters.get("distinct_states", 0)

    def rates(self) -> Dict[str, float]:
        """Derived throughput figures (per second of elapsed time)."""
        if self.elapsed <= 0:
            return {}
        return {
            "executions_per_sec": self.executions / self.elapsed,
            "transitions_per_sec": self.transitions / self.elapsed,
            "states_per_sec": self.distinct_states / self.elapsed,
        }

    # -- merging -----------------------------------------------------------

    @classmethod
    def merge(cls, snapshots: Sequence["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold snapshots of disjoint explorations into one.

        Counters, per-bound breakdowns, histogram buckets and profile
        phases are summed; gauges and ``elapsed`` take the maximum
        (parallel parts overlap in wall time).  The whole sequence is
        folded at once, so grouping workers differently cannot change
        the result (the associativity property the tests check).

        Note: summed ``distinct_states``/``states_by_bound`` count
        cross-worker revisits double; the parallel coordinator
        reconciles them from the merged ``SearchContext``, which holds
        the true union (see ``MetricsRegistry.reconcile_states``).
        """
        if not snapshots:
            raise ValueError("merge needs at least one snapshot")
        merged = cls(
            counters=_merge_int_maps([s.counters for s in snapshots]),
            executions_by_bound=_merge_int_maps(
                [s.executions_by_bound for s in snapshots]
            ),
            states_by_bound=_merge_int_maps([s.states_by_bound for s in snapshots]),
            elapsed=max(s.elapsed for s in snapshots),
        )
        for snap in snapshots:
            for key, value in snap.gauges.items():
                merged.gauges[key] = max(merged.gauges.get(key, value), value)
        names = [n for s in snapshots for n in s.histograms]
        for name in dict.fromkeys(names):
            hist: Optional[Histogram] = None
            for snap in snapshots:
                if name in snap.histograms:
                    part = Histogram.from_dict(snap.histograms[name])
                    if hist is None:
                        hist = part
                    else:
                        hist.absorb(part)
            assert hist is not None
            merged.histograms[name] = hist.to_dict()
        for snap in snapshots:
            for phase, cells in snap.profile.items():
                into = merged.profile.setdefault(phase, {"seconds": 0.0, "calls": 0})
                into["seconds"] += cells["seconds"]
                into["calls"] += cells["calls"]
        return merged

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "executions_by_bound": {str(k): v for k, v in self.executions_by_bound.items()},
            "states_by_bound": {str(k): v for k, v in self.states_by_bound.items()},
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "profile": {k: dict(v) for k, v in self.profile.items()},
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        if not isinstance(data, dict) or data.get("format") != METRICS_FORMAT:
            raise ObsFormatError("not a repro-metrics document")
        if data.get("version") != METRICS_VERSION:
            raise ObsFormatError(
                f"unsupported metrics version {data.get('version')!r}"
            )
        try:
            return cls(
                counters={str(k): int(v) for k, v in data["counters"].items()},
                gauges={str(k): float(v) for k, v in data["gauges"].items()},
                executions_by_bound={
                    int(k): int(v) for k, v in data["executions_by_bound"].items()
                },
                states_by_bound={
                    int(k): int(v) for k, v in data["states_by_bound"].items()
                },
                histograms={
                    str(k): Histogram.from_dict(v).to_dict()
                    for k, v in data["histograms"].items()
                },
                profile={
                    str(k): {"seconds": float(v["seconds"]), "calls": int(v["calls"])}
                    for k, v in data["profile"].items()
                },
                elapsed=float(data["elapsed"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ObsFormatError(f"malformed metrics document: {exc}") from exc

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "MetricsSnapshot":
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsFormatError(f"cannot read metrics file {path}: {exc}") from exc
        return cls.from_dict(data)

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        """Human-readable report (what ``repro stats`` prints)."""
        lines = [
            f"executions: {self.executions}",
            f"transitions: {self.transitions}",
            f"distinct states: {self.distinct_states}",
            f"bugs: {self.counters.get('bugs_found', 0)}",
            f"elapsed: {self.elapsed:.3f}s",
        ]
        for name, value in sorted(self.rates().items()):
            lines.append(f"{name.replace('_', ' ')}: {value:,.0f}")
        if self.counters.get("race_checks"):
            lines.append(
                f"race checks: {self.counters['race_checks']} "
                f"({self.counters.get('races_found', 0)} hit)"
            )
        service = [
            ("checkpoints saved", self.counters.get("checkpoints_saved", 0)),
            ("checkpoint resumes", self.counters.get("checkpoint_resumes", 0)),
            ("result cache hits", self.counters.get("result_cache_hits", 0)),
        ]
        if any(count for _, count in service):
            lines.append(
                "service: " + ", ".join(f"{count} {name}" for name, count in service)
            )
        fleet = [
            ("http requests", self.counters.get("http_requests", 0)),
            ("lease claims", self.counters.get("lease_claims", 0)),
            ("lease renewals", self.counters.get("lease_renewals", 0)),
            ("lease takeovers", self.counters.get("lease_takeovers", 0)),
            ("cache sync hits", self.counters.get("cache_sync_hits", 0)),
            ("cache pushes", self.counters.get("cache_pushes", 0)),
        ]
        if any(count for _, count in fleet):
            lines.append(
                "fleet: " + ", ".join(f"{count} {name}" for name, count in fleet)
            )
        if self.counters.get("invivo_runs"):
            lines.append(
                f"invivo: {self.counters['invivo_runs']} run(s), "
                f"{self.gauges.get('invivo_threads', 0):.0f} os thread(s), "
                f"{self.gauges.get('invivo_handshakes', 0):.0f} handshake(s), "
                f"{self.gauges.get('invivo_abandoned', 0):.0f} abandoned"
            )
        if self.executions_by_bound or self.states_by_bound:
            lines.append("per-bound breakdown:")
            bounds = sorted(set(self.executions_by_bound) | set(self.states_by_bound))
            lines.append("  bound  executions  states")
            for bound in bounds:
                lines.append(
                    f"  {bound:>5}  {self.executions_by_bound.get(bound, 0):>10}"
                    f"  {self.states_by_bound.get(bound, 0):>6}"
                )
        for name in sorted(self.histograms):
            hist = Histogram.from_dict(self.histograms[name])
            if hist.count:
                lines.append(
                    f"{name} (sampled, n={hist.count}): "
                    f"mean {hist.mean * 1e6:.1f}us, "
                    f"p50 <= {hist.quantile(0.5) * 1e6:.1f}us, "
                    f"p99 <= {hist.quantile(0.99) * 1e6:.1f}us"
                )
        if any(cells["calls"] for cells in self.profile.values()):
            lines.append(Profiler.render(self.profile, self.elapsed))
        return "\n".join(lines)


class MetricsRegistry:
    """The live, mutable metrics store of one instrumented run."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.executions_by_bound: Dict[int, int] = {}
        self.states_by_bound: Dict[int, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._started = time.perf_counter()

    # -- updates (hot path: plain dict arithmetic) -------------------------

    def add(self, counter: str, delta: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + delta

    def set_gauge(self, gauge: str, value: float) -> None:
        self.gauges[gauge] = value

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def timer(self, name: str, stride: int = 64) -> SampledTimer:
        return SampledTimer(self.histogram(name), stride=stride)

    # -- cross-process reconciliation --------------------------------------

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (merged) worker snapshot into this registry."""
        for key, value in snapshot.counters.items():
            self.add(key, value)
        for key, value in snapshot.gauges.items():
            self.gauges[key] = max(self.gauges.get(key, value), value)
        for bound, count in snapshot.executions_by_bound.items():
            self.executions_by_bound[bound] = (
                self.executions_by_bound.get(bound, 0) + count
            )
        for bound, count in snapshot.states_by_bound.items():
            self.states_by_bound[bound] = self.states_by_bound.get(bound, 0) + count
        for name, data in snapshot.histograms.items():
            self.histogram(name).absorb(Histogram.from_dict(data))

    def reconcile_states(
        self, states_by_bound: Dict[int, int], bugs: int
    ) -> None:
        """Overwrite state/bug counts with ground truth from a merged
        ``SearchContext``.

        Summing per-worker snapshots double-counts states visited by
        several workers (and bugs re-found across shards); the merged
        context holds the true union, which this method installs so a
        parallel run's snapshot equals a serial run's.
        """
        self.states_by_bound = dict(states_by_bound)
        self.counters["distinct_states"] = sum(states_by_bound.values())
        self.counters["bugs_found"] = bugs

    # -- freezing ----------------------------------------------------------

    def snapshot(self, profile: Optional[Profiler] = None) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            executions_by_bound=dict(self.executions_by_bound),
            states_by_bound=dict(self.states_by_bound),
            histograms={
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
            profile=profile.as_dict() if profile is not None else {},
            elapsed=time.perf_counter() - self._started,
        )
