"""Unified instrumentation: events, metrics, progress and profiling.

Every search run can be turned into an analyzable artifact.  One
:class:`Instrumentation` object is threaded through every layer that
does work -- the search context, the strategies, the stateless and
explicit-state spaces, the parallel coordinator and workers -- and
fans observations out three ways:

* a typed **event stream** (:mod:`repro.obs.events`) consumed by
  pluggable sinks (:mod:`repro.obs.sinks`): a versioned JSONL log, a
  live terminal progress line, and a final Figure-2-style report;
* **metrics** (:mod:`repro.obs.metrics`): counters, gauges, per-bound
  breakdowns and sampled latency histograms, frozen into a picklable
  :class:`MetricsSnapshot` that merges across parallel workers exactly
  like ``SearchResult.merge``;
* **phase profiling** (:mod:`repro.obs.profile`): wall time
  partitioned into schedule / execute / fingerprint / race-detect /
  cache-lookup, so benchmarks report *where* time goes.

The whole subsystem is zero-dependency and costs ~nothing when unused:
uninstrumented runs carry ``obs=None`` and pay a single attribute test
per hook site.  See ``docs/observability.md``.
"""

from .events import (
    EVENT_TYPES,
    AnalysisCompleted,
    BoundCompleted,
    BoundStarted,
    BugFound,
    Event,
    EventBus,
    ExecutionFinished,
    ExecutionStarted,
    ObsFormatError,
    RaceChecked,
    SearchFinished,
    SearchStarted,
    Sink,
    StateVisited,
    WorkerHeartbeat,
    event_from_dict,
)
from .history import CoverageRecorder
from .instrument import Instrumentation
from .metrics import Histogram, MetricsRegistry, MetricsSnapshot
from .profile import PHASES, Profiler
from .sinks import (
    FinalReportSink,
    JsonlEventSink,
    LiveProgressSink,
    render_event_summary,
    validate_event_log,
)

__all__ = [
    "EVENT_TYPES",
    "AnalysisCompleted",
    "BoundCompleted",
    "BoundStarted",
    "BugFound",
    "CoverageRecorder",
    "Event",
    "EventBus",
    "ExecutionFinished",
    "ExecutionStarted",
    "FinalReportSink",
    "Histogram",
    "Instrumentation",
    "JsonlEventSink",
    "LiveProgressSink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsFormatError",
    "PHASES",
    "Profiler",
    "RaceChecked",
    "SearchFinished",
    "SearchStarted",
    "Sink",
    "StateVisited",
    "WorkerHeartbeat",
    "event_from_dict",
    "render_event_summary",
    "validate_event_log",
]
