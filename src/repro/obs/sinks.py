"""Event-stream consumers: JSONL log, live progress, final report.

``JsonlEventSink`` persists the stream with the same rigor as the
trace format (``trace/format.py``): a versioned header line followed
by one self-describing JSON object per event, and a strict validator
(:func:`validate_event_log`) that rebuilds typed events or raises
:class:`~repro.obs.events.ObsFormatError` naming the offending line
and key -- never a bare ``KeyError`` from a consumer.

``LiveProgressSink`` keeps a terminal appraised of a running search
(current bound, executions, distinct states, throughput, ETA from the
run's budget), throttled by wall time so it costs nothing measurable.

``FinalReportSink`` renders the Figure-2-style executions-vs-states
curve from the event stream itself -- the replacement for plotting
``SearchContext.history``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from .events import (
    Event,
    ObsFormatError,
    Sink,
    event_from_dict,
)

#: Header of a ``*.events.jsonl`` file; version bumps on breaks.
EVENTS_FORMAT = "repro-events"
EVENTS_VERSION = 1


class JsonlEventSink(Sink):
    """Append every event to a JSONL file (versioned, validated)."""

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        include: Optional[List[str]] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.include = frozenset(include) if include is not None else None
        self.events_written = 0
        self._fh: Optional[TextIO] = open(self.path, "w", encoding="utf-8")
        self._fh.write(
            json.dumps({"format": EVENTS_FORMAT, "version": EVENTS_VERSION}) + "\n"
        )

    def handle(self, event: Event) -> None:
        if self._fh is None:
            return
        if self.include is not None and event.kind not in self.include:
            return
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def validate_event_log(path: Union[str, pathlib.Path]) -> List[Event]:
    """Load an event log, validating every line against the schema.

    Returns the typed events (header excluded).  Any malformed line --
    bad JSON, unknown kind, missing/extra/mistyped field -- raises
    :class:`ObsFormatError` with the file and line number.
    """
    path = pathlib.Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ObsFormatError(f"cannot read event log {path}: {exc}") from exc
    if not lines:
        raise ObsFormatError(f"{path}: empty event log (missing header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ObsFormatError(f"{path}:1: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != EVENTS_FORMAT:
        raise ObsFormatError(f"{path}:1: not a {EVENTS_FORMAT} log")
    if header.get("version") != EVENTS_VERSION:
        raise ObsFormatError(
            f"{path}:1: unsupported event-log version {header.get('version')!r}"
        )
    events: List[Event] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        where = f"{path}:{number}"
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsFormatError(f"{where}: not JSON: {exc}") from exc
        events.append(event_from_dict(data, where=where))
    return events


class LiveProgressSink(Sink):
    """Throttled one-line progress rendering for the terminal.

    With a TTY the line redraws in place (carriage return); otherwise
    one line per refresh is printed, which keeps CI logs readable.
    ETA comes from the run's :class:`~repro.search.strategy.SearchLimits`
    when an execution or wall-clock budget is set.
    """

    #: Event kinds that may trigger a refresh.
    _REFRESH_ON = frozenset(
        {
            "execution_finished",
            "bound_started",
            "bug_found",
            "worker_heartbeat",
            "search_finished",
        }
    )

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval: float = 0.5,
        limits: Optional[Any] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.limits = limits
        self._last_render = 0.0
        self._rendered = False
        self._bound: Optional[int] = None
        self._executions = 0
        self._states = 0
        self._bugs = 0
        self._worker_totals: Dict[int, Tuple[int, int]] = {}

    # -- event folding -----------------------------------------------------

    def handle(self, event: Event) -> None:
        kind = event.kind
        if kind == "execution_finished":
            self._executions = max(self._executions, event.index)
            self._states = max(self._states, event.states)
        elif kind == "state_visited":
            self._states = max(self._states, event.states)
        elif kind == "bound_started":
            self._bound = event.bound
        elif kind == "bug_found":
            if event.new:
                self._bugs += 1
        elif kind == "worker_heartbeat":
            self._worker_totals[event.worker] = (event.executions, event.transitions)
            pooled = sum(e for e, _ in self._worker_totals.values())
            self._executions = max(self._executions, pooled)
        elif kind == "bound_completed":
            self._executions = max(self._executions, event.executions)
            self._states = max(self._states, event.states)
        if kind in self._REFRESH_ON:
            final = kind == "search_finished"
            now = time.monotonic()
            if final or now - self._last_render >= self.interval:
                self._last_render = now
                self._render(event.t, final)

    # -- rendering ---------------------------------------------------------

    def _eta(self, elapsed: float) -> Optional[float]:
        limits = self.limits
        if limits is None or elapsed <= 0:
            return None
        candidates = []
        max_seconds = getattr(limits, "max_seconds", None)
        if max_seconds is not None:
            candidates.append(max_seconds - elapsed)
        max_executions = getattr(limits, "max_executions", None)
        if max_executions is not None and self._executions:
            rate = self._executions / elapsed
            candidates.append((max_executions - self._executions) / rate)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _render(self, elapsed: float, final: bool) -> None:
        parts = []
        if self._bound is not None:
            parts.append(f"bound {self._bound}")
        parts.append(f"{self._executions} exec")
        parts.append(f"{self._states} states")
        if self._bugs:
            parts.append(f"{self._bugs} bug(s)")
        if self._worker_totals:
            parts.append(f"{len(self._worker_totals)} workers")
        if elapsed > 0:
            parts.append(f"{self._executions / elapsed:,.0f} exec/s")
        eta = self._eta(elapsed)
        if eta is not None and not final:
            parts.append(f"ETA {eta:.0f}s")
        line = " | ".join(parts)
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r" + line.ljust(79))
            if final:
                self.stream.write("\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._rendered = True

    def close(self) -> None:
        if self._rendered and getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\n")
            self.stream.flush()


class FinalReportSink(Sink):
    """Accumulates the coverage curve and renders it once, at close.

    The curve is built purely from ``execution_finished`` events, so
    the same rendering works live (subscribed to a run) and offline
    (replayed over a JSONL log by ``repro stats``).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        width: int = 70,
        height: int = 16,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.width = width
        self.height = height
        self.points: List[Tuple[float, float]] = []
        self.final: Optional[Event] = None
        self._closed = False

    def handle(self, event: Event) -> None:
        if event.kind == "execution_finished":
            self.points.append((float(event.index), float(event.states)))
        elif event.kind == "search_finished":
            self.final = event

    def render(self) -> str:
        from ..experiments.reporting import render_curves

        label = getattr(self.final, "strategy", None) or "search"
        # Decimate for rendering; the chart cannot show more columns
        # than its width anyway.
        points = self.points
        if len(points) > 4 * self.width:
            stride = len(points) // (2 * self.width)
            points = points[::stride] + [points[-1]]
        lines = []
        if points:
            lines.append(
                render_curves(
                    {label: points},
                    width=self.width,
                    height=self.height,
                    log_y=True,
                    title="coverage: distinct states vs executions",
                    x_label="executions",
                    y_label="states",
                )
            )
        final = self.final
        if final is not None:
            status = "complete" if final.completed else f"stopped ({final.stop_reason})"
            lines.append(
                f"{final.strategy}: {final.executions} executions, "
                f"{final.transitions} transitions, {final.states} states, "
                f"{final.bugs} bug(s), {status}"
            )
        return "\n".join(lines) if lines else "(no executions observed)"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stream.write(self.render() + "\n")
        self.stream.flush()


def render_event_summary(events: List[Event]) -> str:
    """Summarize a validated event list (``repro stats`` on a JSONL).

    Replays the stream through a :class:`FinalReportSink` for the
    coverage curve and adds per-kind counts and bound milestones.
    """
    report = FinalReportSink(stream=None)
    kinds: Dict[str, int] = {}
    bounds: List[Event] = []
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        report.handle(event)
        if event.kind == "bound_completed":
            bounds.append(event)
    lines = [f"{len(events)} events"]
    for kind in sorted(kinds):
        lines.append(f"  {kind}: {kinds[kind]}")
    for event in bounds:
        lines.append(
            f"bound {event.bound} completed at {event.executions} executions, "
            f"{event.states} states (t={event.t:.2f}s)"
        )
    lines.append(report.render())
    return "\n".join(lines)
